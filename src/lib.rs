//! # realistic-sched
//!
//! Umbrella crate for the Rust reproduction of *"Efficient Multi-Processor
//! Scheduling in Increasingly Realistic Models"* (Papp, Anegg, Karanasiou,
//! Yzelman — SPAA 2024).
//!
//! The workspace implements the paper's full scheduling framework:
//!
//! * [`model`] — computational DAGs, the BSP + NUMA machine model, BSP schedules
//!   (`π`, `τ`, `Γ`), the cost function, and validity checking.
//! * [`gen`] — the computational-DAG database substrate: fine-grained generators
//!   (`spmv`, `exp`, `CG`, `kNN`), coarse-grained GraphBLAS-style DAGs, the
//!   hyperDAG text format, and seeded datasets.
//! * [`ilp`] — a small from-scratch LP/ILP solver (simplex + branch & bound),
//!   the stand-in for the CBC solver used in the paper.
//! * [`sched`] — the scheduling algorithms: baselines (`Cilk`, `BL-EST`, `ETF`,
//!   `HDagg`), initialization heuristics (`BSPg`, `Source`, `ILPinit`), hill
//!   climbing (`HC`, `HCcs`), ILP formulations (`ILPfull`, `ILPpart`, `ILPcs`),
//!   the multilevel scheduler, and the combined pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use realistic_sched::model::{Machine};
//! use realistic_sched::gen::fine::{spmv, SpmvConfig};
//! use realistic_sched::sched::pipeline::{Pipeline, PipelineConfig};
//!
//! // A fine-grained sparse matrix-vector multiplication DAG.
//! let dag = spmv(&SpmvConfig { n: 24, density: 0.2, seed: 7 });
//! // 4 processors, g = 3, l = 5, uniform communication.
//! let machine = Machine::uniform(4, 3, 5);
//! let schedule = Pipeline::new(PipelineConfig::fast()).run(&dag, &machine);
//! assert!(schedule.validate(&dag, &machine).is_ok());
//! ```

pub use bsp_model as model;
pub use bsp_sched as sched;
pub use dag_gen as gen;
pub use micro_ilp as ilp;

/// Convenience prelude re-exporting the most commonly used types.
pub mod prelude {
    pub use bsp_model::{
        BspSchedule, CommSchedule, CommStep, CostBreakdown, Dag, DagBuilder, Machine, NodeId,
    };
    pub use bsp_sched::pipeline::{Pipeline, PipelineConfig};
    pub use bsp_sched::Scheduler;
    pub use dag_gen::dataset::{Dataset, DatasetKind};
}
