//! Coarse-grained computational DAGs (Appendix B.1 of the paper).
//!
//! In the coarse-grained representation every node is (the output of) a whole
//! matrix or vector operation of a GraphBLAS program.  The paper extracts these
//! DAGs by instrumenting a C++ GraphBLAS implementation; we synthesize the same
//! DAGs directly from the data flow of the algorithms (the substitution is
//! documented in `DESIGN.md`): conjugate gradient, a BiCGStab-like solver,
//! PageRank, label propagation and `k`-NN reachability, each run for a given
//! number of iterations.
//!
//! Weights follow the paper's extraction rule: `w(v) = indeg(v) − 1` clamped to
//! ≥ 1 (sources get 1, representing the cost of loading the container) and
//! `c(v) = 1` for every node.

use bsp_model::{Dag, NodeId};

/// Which GraphBLAS-style algorithm to generate a coarse-grained DAG for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoarseAlgorithm {
    /// Conjugate gradient for positive-definite systems.
    ConjugateGradient,
    /// A BiCGStab-like solver for general systems (two matrix products per iteration).
    BiCgStab,
    /// The PageRank power iteration.
    PageRank,
    /// Label propagation (one matrix product plus element-wise ops per iteration).
    LabelPropagation,
    /// `k`-hop reachability (sparse vector times matrix per iteration).
    KNearestNeighbours,
}

impl CoarseAlgorithm {
    /// All supported algorithms, in a fixed order.
    pub const ALL: [CoarseAlgorithm; 5] = [
        CoarseAlgorithm::ConjugateGradient,
        CoarseAlgorithm::BiCgStab,
        CoarseAlgorithm::PageRank,
        CoarseAlgorithm::LabelPropagation,
        CoarseAlgorithm::KNearestNeighbours,
    ];

    /// A short human-readable name used in dataset instance labels.
    pub fn name(&self) -> &'static str {
        match self {
            CoarseAlgorithm::ConjugateGradient => "cg",
            CoarseAlgorithm::BiCgStab => "bicgstab",
            CoarseAlgorithm::PageRank => "pagerank",
            CoarseAlgorithm::LabelPropagation => "labelprop",
            CoarseAlgorithm::KNearestNeighbours => "knn",
        }
    }
}

/// Parameters of the coarse-grained generator.
#[derive(Debug, Clone, Copy)]
pub struct CoarseConfig {
    pub algorithm: CoarseAlgorithm,
    /// Number of iterations of the iterative method.
    pub iterations: usize,
}

struct Assembler {
    edges: Vec<(NodeId, NodeId)>,
    next: NodeId,
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            edges: Vec::new(),
            next: 0,
        }
    }
    fn node(&mut self, preds: &[NodeId]) -> NodeId {
        let id = self.next;
        self.next += 1;
        // The same operand may appear twice (e.g. a dot product of a vector
        // with itself); the dependency edge exists only once.  Duplicates can
        // only come from this call's own operand list (the target id is
        // fresh), so only the edges appended here need checking — the
        // generator stays linear in the iteration count.
        let start = self.edges.len();
        for &p in preds {
            if !self.edges[start..].contains(&(p, id)) {
                self.edges.push((p, id));
            }
        }
        id
    }
    fn finish(self) -> Dag {
        let n = self.next;
        let mut indeg = vec![0u64; n];
        for &(_, v) in &self.edges {
            indeg[v] += 1;
        }
        let work: Vec<u64> = indeg
            .iter()
            .map(|&d| if d <= 1 { 1 } else { d - 1 })
            .collect();
        let comm = vec![1; n];
        Dag::from_edges(n, &self.edges, work, comm).expect("coarse generator produced a cycle")
    }
}

/// Generates the coarse-grained computational DAG of the configured algorithm.
pub fn coarse(config: &CoarseConfig) -> Dag {
    match config.algorithm {
        CoarseAlgorithm::ConjugateGradient => coarse_cg(config.iterations),
        CoarseAlgorithm::BiCgStab => coarse_bicgstab(config.iterations),
        CoarseAlgorithm::PageRank => coarse_pagerank(config.iterations),
        CoarseAlgorithm::LabelPropagation => coarse_labelprop(config.iterations),
        CoarseAlgorithm::KNearestNeighbours => coarse_knn(config.iterations),
    }
}

fn coarse_cg(iterations: usize) -> Dag {
    let mut asm = Assembler::new();
    let a = asm.node(&[]); // matrix A
    let b = asm.node(&[]); // right-hand side
    let mut x = asm.node(&[]); // initial guess
    let ax0 = asm.node(&[a, x]);
    let mut r = asm.node(&[b, ax0]); // r = b - A x
    let mut p = asm.node(&[r]); // p = r
    let mut rr = asm.node(&[r, r]); // ρ = r·r
    for _ in 0..iterations {
        let q = asm.node(&[a, p]); // q = A p
        let pq = asm.node(&[p, q]); // p·q
        let alpha = asm.node(&[rr, pq]);
        x = asm.node(&[x, p, alpha]);
        r = asm.node(&[r, q, alpha]);
        let rr_new = asm.node(&[r, r]);
        let beta = asm.node(&[rr_new, rr]);
        p = asm.node(&[r, p, beta]);
        rr = rr_new;
    }
    asm.finish()
}

fn coarse_bicgstab(iterations: usize) -> Dag {
    let mut asm = Assembler::new();
    let a = asm.node(&[]);
    let b = asm.node(&[]);
    let mut x = asm.node(&[]);
    let ax0 = asm.node(&[a, x]);
    let mut r = asm.node(&[b, ax0]);
    let r0 = asm.node(&[r]); // shadow residual
    let mut p = asm.node(&[r]);
    let mut rho = asm.node(&[r0, r]);
    for _ in 0..iterations {
        let v = asm.node(&[a, p]);
        let r0v = asm.node(&[r0, v]);
        let alpha = asm.node(&[rho, r0v]);
        let s = asm.node(&[r, v, alpha]);
        let t = asm.node(&[a, s]);
        let ts = asm.node(&[t, s]);
        let tt = asm.node(&[t, t]);
        let omega = asm.node(&[ts, tt]);
        x = asm.node(&[x, p, s, alpha, omega]);
        r = asm.node(&[s, t, omega]);
        let rho_new = asm.node(&[r0, r]);
        let beta = asm.node(&[rho_new, rho, alpha, omega]);
        p = asm.node(&[r, p, v, beta, omega]);
        rho = rho_new;
    }
    asm.finish()
}

fn coarse_pagerank(iterations: usize) -> Dag {
    let mut asm = Assembler::new();
    let a = asm.node(&[]); // column-stochastic link matrix
    let teleport = asm.node(&[]); // teleport vector
    let mut rank = asm.node(&[]); // initial rank vector
    for _ in 0..iterations {
        let spread = asm.node(&[a, rank]); // A·rank
        let damped = asm.node(&[spread]); // d · (A·rank)
        let new_rank = asm.node(&[damped, teleport]); // + (1-d)/n
        let norm = asm.node(&[new_rank]); // ‖rank‖₁
        let scaled = asm.node(&[new_rank, norm]);
        let _diff = asm.node(&[scaled, rank]); // convergence check
        rank = scaled;
    }
    asm.finish()
}

fn coarse_labelprop(iterations: usize) -> Dag {
    let mut asm = Assembler::new();
    let a = asm.node(&[]); // adjacency matrix
    let mut labels = asm.node(&[]); // initial labels
    for _ in 0..iterations {
        let votes = asm.node(&[a, labels]); // neighbour votes
        let argmax = asm.node(&[votes]); // per-vertex majority label
        let changed = asm.node(&[argmax, labels]); // convergence check
        let merged = asm.node(&[argmax, changed]);
        labels = merged;
    }
    asm.finish()
}

fn coarse_knn(iterations: usize) -> Dag {
    let mut asm = Assembler::new();
    let a = asm.node(&[]);
    let mut frontier = asm.node(&[]); // e_s
    let mut visited = asm.node(&[frontier]);
    for _ in 0..iterations {
        let next = asm.node(&[a, frontier]); // A·frontier
        let pruned = asm.node(&[next, visited]); // mask out already-visited
        visited = asm.node(&[visited, pruned]);
        frontier = pruned;
    }
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_produce_valid_dags() {
        for alg in CoarseAlgorithm::ALL {
            let dag = coarse(&CoarseConfig {
                algorithm: alg,
                iterations: 3,
            });
            assert!(dag.topological_order().is_some(), "{alg:?}");
            assert!(dag.n() >= 10, "{alg:?} produced only {} nodes", dag.n());
            for v in 0..dag.n() {
                assert_eq!(dag.comm(v), 1);
                assert!(dag.work(v) >= 1);
            }
        }
    }

    #[test]
    fn node_count_scales_linearly_with_iterations() {
        let small = coarse(&CoarseConfig {
            algorithm: CoarseAlgorithm::ConjugateGradient,
            iterations: 3,
        });
        let big = coarse(&CoarseConfig {
            algorithm: CoarseAlgorithm::ConjugateGradient,
            iterations: 13,
        });
        // 8 nodes per CG iteration.
        assert_eq!(big.n() - small.n(), 10 * 8);
    }

    #[test]
    fn cg_iteration_structure_is_connected() {
        let dag = coarse(&CoarseConfig {
            algorithm: CoarseAlgorithm::ConjugateGradient,
            iterations: 5,
        });
        assert_eq!(dag.largest_weakly_connected_component().len(), dag.n());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CoarseAlgorithm::PageRank.name(), "pagerank");
        assert_eq!(CoarseAlgorithm::ALL.len(), 5);
    }
}
