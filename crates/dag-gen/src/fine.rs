//! Fine-grained computational DAG generators (Appendix B.2 of the paper).
//!
//! Each generator synthesizes the computational DAG of a concrete algebraic
//! kernel driven by a random sparse matrix pattern: every node is a scalar
//! operation (a multiplication or a reduction of a few scalars).  Following
//! the paper, work weights are `w(v) = indeg(v) − 1` (clamped to at least 1,
//! with sources at 1) and communication weights are `c(v) = 1`.
//!
//! * [`spmv`] — one sparse matrix–vector multiplication `y = A·u` (depth 3).
//! * [`exp`] — the iterated product `A^k · u` (k chained spmv's).
//! * [`cg`] — `k` iterations of the conjugate-gradient method.
//! * [`knn`] — `k`-hop reachability from a single source (`A^k · e_s` with a
//!   sparse frontier).

use crate::sparse::SparsePattern;
use bsp_model::{Dag, NodeId};

/// Parameters of the [`spmv`] generator.
#[derive(Debug, Clone, Copy)]
pub struct SpmvConfig {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Probability that an entry of `A` is nonzero.
    pub density: f64,
    /// RNG seed for the matrix pattern.
    pub seed: u64,
}

/// Parameters of the iterative generators ([`exp`], [`cg`], [`knn`]).
#[derive(Debug, Clone, Copy)]
pub struct IterConfig {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Probability that an entry of `A` is nonzero.
    pub density: f64,
    /// Number of iterations `k`.
    pub iterations: usize,
    /// RNG seed for the matrix pattern.
    pub seed: u64,
}

/// Assigns the GraphBLAS-style weights of the paper: `w(v) = indeg(v) − 1`
/// (clamped to ≥ 1, so sources get 1) and `c(v) = 1` for every node.
fn graphblas_weights(n: usize, edges: &[(NodeId, NodeId)]) -> (Vec<u64>, Vec<u64>) {
    let mut indeg = vec![0u64; n];
    for &(_, v) in edges {
        indeg[v] += 1;
    }
    let work = indeg
        .iter()
        .map(|&d| if d <= 1 { 1 } else { d - 1 })
        .collect();
    (work, vec![1; n])
}

fn build(n: usize, edges: Vec<(NodeId, NodeId)>) -> Dag {
    let (work, comm) = graphblas_weights(n, &edges);
    Dag::from_edges(n, &edges, work, comm).expect("generator produced an invalid DAG")
}

/// Internal helper for assembling generator DAGs node-by-node.
struct Assembler {
    edges: Vec<(NodeId, NodeId)>,
    next: NodeId,
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            edges: Vec::new(),
            next: 0,
        }
    }

    fn node(&mut self) -> NodeId {
        let id = self.next;
        self.next += 1;
        id
    }

    fn node_with_preds(&mut self, preds: &[NodeId]) -> NodeId {
        let id = self.node();
        for &p in preds {
            self.edges.push((p, id));
        }
        id
    }

    fn finish(self) -> Dag {
        build(self.next, self.edges)
    }
}

/// One sparse matrix–vector multiplication `y = A·u`.
///
/// Level 0: one node per vector entry `u[j]` and one per nonzero `A[i,j]`;
/// level 1: one product node per nonzero; level 2: one reduction node per row
/// with at least one nonzero.  The longest path therefore always has exactly
/// three nodes, making these the "shallow" DAGs of the paper's training set.
pub fn spmv(config: &SpmvConfig) -> Dag {
    let pattern = SparsePattern::random_with_diagonal(config.n, config.density, config.seed);
    let mut asm = Assembler::new();
    let u: Vec<NodeId> = (0..config.n).map(|_| asm.node()).collect();
    let mut a = vec![Vec::new(); config.n];
    for i in 0..config.n {
        for &j in pattern.row(i) {
            a[i].push((j, asm.node()));
        }
    }
    for i in 0..config.n {
        let mut products = Vec::new();
        for &(j, a_node) in &a[i] {
            products.push(asm.node_with_preds(&[a_node, u[j]]));
        }
        if !products.is_empty() {
            asm.node_with_preds(&products);
        }
    }
    asm.finish()
}

/// The iterated sparse matrix–vector product `A^k · u` ("exp" in the paper):
/// `k` chained spmv operations sharing the same matrix-entry source nodes.
pub fn exp(config: &IterConfig) -> Dag {
    let pattern = SparsePattern::random_with_diagonal(config.n, config.density, config.seed);
    let mut asm = Assembler::new();
    let mut current: Vec<NodeId> = (0..config.n).map(|_| asm.node()).collect();
    let mut a = vec![Vec::new(); config.n];
    for i in 0..config.n {
        for &j in pattern.row(i) {
            a[i].push((j, asm.node()));
        }
    }
    for _ in 0..config.iterations {
        let mut next = Vec::with_capacity(config.n);
        for i in 0..config.n {
            let mut products = Vec::new();
            for &(j, a_node) in &a[i] {
                products.push(asm.node_with_preds(&[a_node, current[j]]));
            }
            // `random_with_diagonal` guarantees at least one nonzero per row.
            next.push(asm.node_with_preds(&products));
        }
        current = next;
    }
    asm.finish()
}

/// `k` iterations of the conjugate-gradient method on an `N × N` system.
///
/// Each iteration contains a fine-grained spmv (`q = A·p`), two dot products,
/// the scalar `α`, the vector updates of `x` and `r`, the dot product of the
/// new residual, the scalar `β`, and the update of the search direction `p` —
/// exactly the data flow of the textbook algorithm at scalar granularity.
pub fn cg(config: &IterConfig) -> Dag {
    let n = config.n;
    let pattern = SparsePattern::random_with_diagonal(n, config.density, config.seed);
    let mut asm = Assembler::new();
    let mut x: Vec<NodeId> = (0..n).map(|_| asm.node()).collect();
    let mut r: Vec<NodeId> = (0..n).map(|_| asm.node()).collect();
    let mut p: Vec<NodeId> = (0..n).map(|_| asm.node()).collect();
    let mut a = vec![Vec::new(); n];
    for i in 0..n {
        for &j in pattern.row(i) {
            a[i].push((j, asm.node()));
        }
    }
    // r·r of the initial residual.
    let mut rr = asm.node_with_preds(&r);
    for _ in 0..config.iterations {
        // q = A p (fine-grained spmv).
        let mut q = Vec::with_capacity(n);
        for i in 0..n {
            let mut products = Vec::new();
            for &(j, a_node) in &a[i] {
                products.push(asm.node_with_preds(&[a_node, p[j]]));
            }
            q.push(asm.node_with_preds(&products));
        }
        // p·q and α = rr / p·q.
        let pq_preds: Vec<NodeId> = p.iter().chain(q.iter()).copied().collect();
        let pq = asm.node_with_preds(&pq_preds);
        let alpha = asm.node_with_preds(&[rr, pq]);
        // x ← x + α p,  r ← r − α q.
        let mut x_new = Vec::with_capacity(n);
        let mut r_new = Vec::with_capacity(n);
        for i in 0..n {
            x_new.push(asm.node_with_preds(&[x[i], p[i], alpha]));
            r_new.push(asm.node_with_preds(&[r[i], q[i], alpha]));
        }
        // β = (r'·r') / (r·r), p ← r' + β p.
        let rr_new = asm.node_with_preds(&r_new);
        let beta = asm.node_with_preds(&[rr_new, rr]);
        let mut p_new = Vec::with_capacity(n);
        for i in 0..n {
            p_new.push(asm.node_with_preds(&[r_new[i], p[i], beta]));
        }
        x = x_new;
        r = r_new;
        p = p_new;
        rr = rr_new;
    }
    // The solution vector depends on everything relevant; no extra sink needed.
    let _ = (x, r, p);
    asm.finish()
}

/// `k`-hop reachability from a single source node (`kNN` in GraphBLAS
/// terminology): the multiplication of `A` with a vector that has a single
/// nonzero entry, iterated `k` times.  Only the nonzero frontier produces
/// computation, so these DAGs start narrow and widen with each iteration.
pub fn knn(config: &IterConfig) -> Dag {
    let n = config.n;
    let pattern = SparsePattern::random_with_diagonal(n, config.density, config.seed);
    let mut asm = Assembler::new();
    // Current frontier values: index -> node id of the current value of u[j].
    let source_index = (config.seed as usize) % n;
    let mut current: Vec<Option<NodeId>> = vec![None; n];
    current[source_index] = Some(asm.node());
    // Matrix entry source nodes, created lazily when first used.
    let mut a_nodes: Vec<Vec<Option<NodeId>>> =
        (0..n).map(|i| vec![None; pattern.row(i).len()]).collect();
    for _ in 0..config.iterations {
        let mut next: Vec<Option<NodeId>> = vec![None; n];
        for i in 0..n {
            let mut products = Vec::new();
            for (idx, &j) in pattern.row(i).iter().enumerate() {
                if let Some(u_node) = current[j] {
                    let a_node = *a_nodes[i][idx].get_or_insert_with(|| {
                        let id = asm.next;
                        asm.next += 1;
                        id
                    });
                    products.push(asm.node_with_preds(&[a_node, u_node]));
                }
            }
            if !products.is_empty() {
                next[i] = Some(asm.node_with_preds(&products));
            }
        }
        current = next;
    }
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_depth_is_three() {
        let dag = spmv(&SpmvConfig {
            n: 10,
            density: 0.3,
            seed: 1,
        });
        let depth = dag.levels().into_iter().max().unwrap() + 1;
        assert_eq!(depth, 3);
        assert!(dag.n() > 10);
        assert!(dag.topological_order().is_some());
    }

    #[test]
    fn spmv_weights_follow_graphblas_rule() {
        let dag = spmv(&SpmvConfig {
            n: 6,
            density: 0.4,
            seed: 2,
        });
        for v in 0..dag.n() {
            assert_eq!(dag.comm(v), 1);
            let indeg = dag.in_degree(v) as u64;
            if indeg <= 1 {
                assert_eq!(dag.work(v), 1);
            } else {
                assert_eq!(dag.work(v), indeg - 1);
            }
        }
    }

    #[test]
    fn exp_depth_grows_with_iterations() {
        let d1 = exp(&IterConfig {
            n: 8,
            density: 0.25,
            iterations: 1,
            seed: 3,
        });
        let d3 = exp(&IterConfig {
            n: 8,
            density: 0.25,
            iterations: 3,
            seed: 3,
        });
        let depth = |d: &Dag| d.levels().into_iter().max().unwrap() + 1;
        assert!(depth(&d3) > depth(&d1));
        assert!(d3.n() > d1.n());
    }

    #[test]
    fn cg_produces_connected_iterative_structure() {
        let dag = cg(&IterConfig {
            n: 6,
            density: 0.3,
            iterations: 2,
            seed: 4,
        });
        assert!(dag.n() > 50);
        assert!(dag.topological_order().is_some());
        // The largest weakly connected component should cover essentially the
        // whole DAG (all vectors feed into the dot products).
        let comp = dag.largest_weakly_connected_component();
        assert_eq!(comp.len(), dag.n());
    }

    #[test]
    fn knn_frontier_widens() {
        let dag = knn(&IterConfig {
            n: 30,
            density: 0.15,
            iterations: 4,
            seed: 5,
        });
        assert!(dag.n() > 5);
        assert!(dag.topological_order().is_some());
        // Source count: matrix entries plus the single starting vector entry.
        let sources = dag.sources();
        assert!(!sources.is_empty());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = cg(&IterConfig {
            n: 5,
            density: 0.3,
            iterations: 2,
            seed: 9,
        });
        let b = cg(&IterConfig {
            n: 5,
            density: 0.3,
            iterations: 2,
            seed: 9,
        });
        assert_eq!(a, b);
    }
}
