//! # dag-gen
//!
//! The computational-DAG database substrate of the paper: generators for
//! fine-grained and coarse-grained computational DAGs, the hyperDAG text
//! format, and the seeded experiment datasets.
//!
//! * [`sparse`] — random sparse matrix patterns driving the fine-grained
//!   generators.
//! * [`fine`] — fine-grained DAGs (`spmv`, `exp`, `cg`, `knn`), one node per
//!   scalar operation.
//! * [`coarse`] — coarse-grained GraphBLAS-style DAGs, one node per
//!   matrix/vector operation.
//! * [`hyperdag`] — the hypergraph text format used by the paper's database.
//! * [`dataset`] — the training / tiny / small / medium / large / huge
//!   datasets used in the experiments.

pub mod coarse;
pub mod dataset;
pub mod fine;
pub mod hyperdag;
pub mod sparse;

pub use coarse::{coarse as coarse_dag, CoarseAlgorithm, CoarseConfig};
pub use dataset::{Dataset, DatasetKind, NamedDag};
pub use fine::{cg, exp, knn, spmv, IterConfig, SpmvConfig};
pub use hyperdag::{read_hyperdag, write_hyperdag, HyperDagError};
pub use sparse::SparsePattern;
