//! The hyperDAG text format of the paper's computational DAG database.
//!
//! The database stores DAGs as hypergraphs: every non-sink node `v` induces a
//! hyperedge containing `v` and all of its direct successors (the consumers of
//! its output value).  This emphasises that a value only has to be sent once
//! per target processor.  For scheduling, the hyperDAG is converted back into
//! an ordinary DAG — the formats are informationally equivalent.
//!
//! Text layout (lines starting with `%` are comments):
//!
//! ```text
//! % optional comments
//! <num_hyperedges> <num_nodes> <num_pins>
//! <hyperedge_index> <node_index>        (one line per pin)
//! ...
//! <node_index> <work_weight> <comm_weight>   (one line per node)
//! ```
//!
//! Hyperedge `h` is rooted at a node; by convention its first listed pin is
//! the source node whose value the hyperedge represents.

use bsp_model::{Dag, DagError, NodeId};
use std::fmt::Write as _;
use std::num::ParseIntError;

/// Errors when parsing the hyperDAG text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HyperDagError {
    /// The header or a data line had the wrong number of fields.
    Malformed { line: usize, reason: String },
    /// A numeric field failed to parse.
    Number { line: usize },
    /// The resulting graph is not a DAG.
    Dag(DagError),
}

impl std::fmt::Display for HyperDagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HyperDagError::Malformed { line, reason } => {
                write!(f, "malformed hyperDAG file at line {line}: {reason}")
            }
            HyperDagError::Number { line } => write!(f, "invalid number at line {line}"),
            HyperDagError::Dag(e) => write!(f, "hyperDAG does not describe a DAG: {e}"),
        }
    }
}

impl std::error::Error for HyperDagError {}

impl From<DagError> for HyperDagError {
    fn from(e: DagError) -> Self {
        HyperDagError::Dag(e)
    }
}

fn parse_num(tok: &str, line: usize) -> Result<u64, HyperDagError> {
    tok.parse()
        .map_err(|_: ParseIntError| HyperDagError::Number { line })
}

/// Serializes a DAG into the hyperDAG text format.
pub fn write_hyperdag(dag: &Dag) -> String {
    let n = dag.n();
    let hyperedges: Vec<NodeId> = (0..n).filter(|&v| dag.out_degree(v) > 0).collect();
    let num_pins: usize = hyperedges.iter().map(|&v| 1 + dag.out_degree(v)).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "% hyperDAG export: {} nodes, {} hyperedges",
        n,
        hyperedges.len()
    );
    let _ = writeln!(out, "{} {} {}", hyperedges.len(), n, num_pins);
    for (h, &v) in hyperedges.iter().enumerate() {
        let _ = writeln!(out, "{h} {v}");
        for &w in dag.successors(v) {
            let _ = writeln!(out, "{h} {w}");
        }
    }
    for v in 0..n {
        let _ = writeln!(out, "{v} {} {}", dag.work(v), dag.comm(v));
    }
    out
}

/// Parses the hyperDAG text format back into a DAG.
///
/// The parser never panics and never trusts the header: declared hyperedge,
/// node and pin counts are checked against the amount of data actually
/// present *before* any allocation is sized from them, so a malformed (or
/// hostile) header is reported as [`HyperDagError::Malformed`] instead of
/// attempting a multi-gigabyte allocation.  This is the function the
/// `bsp_serve` service boundary parses untrusted request payloads with.
pub fn read_hyperdag(text: &str) -> Result<Dag, HyperDagError> {
    let is_data = |l: &str| !l.is_empty() && !l.starts_with('%');
    let data_line_count = text.lines().map(str::trim).filter(|l| is_data(l)).count();
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| is_data(l));

    let (header_line, header) = lines.next().ok_or(HyperDagError::Malformed {
        line: 0,
        reason: "empty file".into(),
    })?;
    let mut it = header.split_whitespace();
    let (he, nodes, pins) = match (it.next(), it.next(), it.next(), it.next()) {
        (Some(a), Some(b), Some(c), None) => (
            parse_num(a, header_line)? as usize,
            parse_num(b, header_line)? as usize,
            parse_num(c, header_line)? as usize,
        ),
        _ => {
            return Err(HyperDagError::Malformed {
                line: header_line,
                reason: "header must be `<hyperedges> <nodes> <pins>`".into(),
            })
        }
    };

    // Sanity-check the declared counts against the data that is actually
    // there: one line per pin plus one line per node must fit in the input,
    // and every hyperedge needs at least one pin.  These bounds make the
    // allocations below proportional to the input size, whatever the header
    // claims.
    let body_lines = data_line_count - 1;
    if pins.saturating_add(nodes) > body_lines {
        return Err(HyperDagError::Malformed {
            line: header_line,
            reason: format!(
                "header declares {pins} pins + {nodes} nodes but only {body_lines} data lines follow"
            ),
        });
    }
    if he > pins {
        return Err(HyperDagError::Malformed {
            line: header_line,
            reason: format!("header declares {he} hyperedges but only {pins} pins"),
        });
    }

    // Pins.
    let mut hyperedge_pins: Vec<Vec<NodeId>> = vec![Vec::new(); he];
    for _ in 0..pins {
        let (line_no, line) = lines.next().ok_or(HyperDagError::Malformed {
            line: header_line,
            reason: "fewer pin lines than declared".into(),
        })?;
        let mut it = line.split_whitespace();
        let (h, v) = match (it.next(), it.next(), it.next()) {
            (Some(a), Some(b), None) => (
                parse_num(a, line_no)? as usize,
                parse_num(b, line_no)? as usize,
            ),
            _ => {
                return Err(HyperDagError::Malformed {
                    line: line_no,
                    reason: "pin line must be `<hyperedge> <node>`".into(),
                })
            }
        };
        if h >= he || v >= nodes {
            return Err(HyperDagError::Malformed {
                line: line_no,
                reason: format!("pin ({h}, {v}) out of range"),
            });
        }
        hyperedge_pins[h].push(v);
    }

    // Node weights.
    let mut work = vec![1u64; nodes];
    let mut comm = vec![1u64; nodes];
    for _ in 0..nodes {
        let (line_no, line) = lines.next().ok_or(HyperDagError::Malformed {
            line: header_line,
            reason: "fewer node lines than declared".into(),
        })?;
        let mut it = line.split_whitespace();
        match (it.next(), it.next(), it.next(), it.next()) {
            (Some(a), Some(b), Some(c), None) => {
                let v = parse_num(a, line_no)? as usize;
                if v >= nodes {
                    return Err(HyperDagError::Malformed {
                        line: line_no,
                        reason: format!("node {v} out of range"),
                    });
                }
                work[v] = parse_num(b, line_no)?;
                comm[v] = parse_num(c, line_no)?;
            }
            _ => {
                return Err(HyperDagError::Malformed {
                    line: line_no,
                    reason: "node line must be `<node> <work> <comm>`".into(),
                })
            }
        }
    }

    // Hyperedges back to edges: the first pin of a hyperedge is the source.
    let mut edges = Vec::new();
    for pins in &hyperedge_pins {
        if let Some((&src, rest)) = pins.split_first() {
            for &dst in rest {
                if src != dst {
                    edges.push((src, dst));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Ok(Dag::from_edges(nodes, &edges, work, comm)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fine::{spmv, SpmvConfig};

    #[test]
    fn roundtrip_preserves_structure_and_weights() {
        let dag = spmv(&SpmvConfig {
            n: 12,
            density: 0.25,
            seed: 11,
        });
        let text = write_hyperdag(&dag);
        let back = read_hyperdag(&text).unwrap();
        // The format groups edges by source, so adjacency-list order may
        // differ; compare the canonical structure instead of `Dag` equality.
        assert_eq!(back.n(), dag.n());
        assert_eq!(back.work_weights(), dag.work_weights());
        assert_eq!(back.comm_weights(), dag.comm_weights());
        let canon = |d: &Dag| {
            let mut e: Vec<_> = d.edges().collect();
            e.sort_unstable();
            e
        };
        assert_eq!(canon(&back), canon(&dag));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "% comment\n\n1 2 2\n% another\n0 0\n0 1\n0 3 4\n1 5 6\n";
        let dag = read_hyperdag(text).unwrap();
        assert_eq!(dag.n(), 2);
        assert_eq!(dag.num_edges(), 1);
        assert_eq!(dag.work(0), 3);
        assert_eq!(dag.comm(1), 6);
    }

    #[test]
    fn malformed_header_is_rejected() {
        assert!(matches!(
            read_hyperdag("1 2\n"),
            Err(HyperDagError::Malformed { .. })
        ));
    }

    #[test]
    fn out_of_range_pin_is_rejected() {
        let text = "1 2 2\n0 0\n0 7\n0 1 1\n1 1 1\n";
        assert!(matches!(
            read_hyperdag(text),
            Err(HyperDagError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_header_counts_are_rejected_before_allocation() {
        // Declares ~10^18 hyperedges/nodes/pins with a four-line body; the
        // parser must reject the header instead of sizing buffers from it.
        let huge = u64::MAX / 4;
        let text = format!("{huge} {huge} {huge}\n0 0\n0 1\n0 1 1\n1 1 1\n");
        assert!(matches!(
            read_hyperdag(&text),
            Err(HyperDagError::Malformed { .. })
        ));
        // More hyperedges than pins is equally malformed (a hyperedge needs a
        // source pin), even when the counts are small.
        assert!(matches!(
            read_hyperdag("3 2 2\n0 0\n0 1\n0 1 1\n1 1 1\n"),
            Err(HyperDagError::Malformed { .. })
        ));
    }

    #[test]
    fn cyclic_hyperdag_is_rejected() {
        // Two hyperedges creating 0 -> 1 and 1 -> 0.
        let text = "2 2 4\n0 0\n0 1\n1 1\n1 0\n0 1 1\n1 1 1\n";
        assert!(matches!(read_hyperdag(text), Err(HyperDagError::Dag(_))));
    }
}
