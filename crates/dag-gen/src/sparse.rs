//! Sparse matrix *patterns* (positions of nonzeros, no numerical values).
//!
//! The fine-grained DAG generators of the paper (Appendix B.2) are driven by a
//! square matrix `A` defined by its size `N` and a density parameter `q`: each
//! entry is nonzero independently with probability `q`.  Only the pattern
//! matters for the structure of the computational DAG.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The nonzero pattern of a square sparse matrix, stored row-wise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparsePattern {
    n: usize,
    /// `rows[i]` = sorted column indices of the nonzeros of row `i`.
    rows: Vec<Vec<usize>>,
}

impl SparsePattern {
    /// Builds a pattern from explicit (row, column) coordinates.  Duplicates
    /// are removed; out-of-range coordinates panic.
    pub fn from_coordinates(n: usize, coords: &[(usize, usize)]) -> Self {
        let mut rows = vec![Vec::new(); n];
        for &(i, j) in coords {
            assert!(
                i < n && j < n,
                "coordinate ({i},{j}) out of range for N={n}"
            );
            rows[i].push(j);
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        SparsePattern { n, rows }
    }

    /// An Erdős–Rényi random pattern: every entry is nonzero independently
    /// with probability `density`.  Deterministic in `seed`.
    pub fn random(n: usize, density: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = vec![Vec::new(); n];
        for row in rows.iter_mut() {
            for j in 0..n {
                if rng.gen::<f64>() < density {
                    row.push(j);
                }
            }
        }
        SparsePattern { n, rows }
    }

    /// Like [`SparsePattern::random`] but guarantees a nonzero in every row and
    /// every column (so iterative kernels never degenerate to empty work), and
    /// a nonzero main diagonal (so the matrix can play the role of a
    /// triangular-solve / CG system matrix).
    pub fn random_with_diagonal(n: usize, density: f64, seed: u64) -> Self {
        let mut p = Self::random(n, density, seed);
        for i in 0..n {
            if !p.rows[i].contains(&i) {
                p.rows[i].push(i);
                p.rows[i].sort_unstable();
            }
        }
        p
    }

    /// A banded pattern with the given half-bandwidth (useful for "deep"
    /// structured DAG shapes in tests and examples).
    pub fn banded(n: usize, half_bandwidth: usize) -> Self {
        let mut rows = vec![Vec::new(); n];
        for (i, row) in rows.iter_mut().enumerate() {
            let lo = i.saturating_sub(half_bandwidth);
            let hi = (i + half_bandwidth).min(n - 1);
            for j in lo..=hi {
                row.push(j);
            }
        }
        SparsePattern { n, rows }
    }

    /// Matrix dimension `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Column indices of the nonzeros of row `i`.
    pub fn row(&self, i: usize) -> &[usize] {
        &self.rows[i]
    }

    /// Iterator over all nonzero coordinates `(row, col)`.
    pub fn coordinates(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, cols)| cols.iter().map(move |&j| (i, j)))
    }

    /// `true` if entry `(i, j)` is nonzero.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.rows[i].binary_search(&j).is_ok()
    }

    /// Actual density `nnz / N²`.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n * self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coordinates_sorts_and_dedups() {
        let p = SparsePattern::from_coordinates(3, &[(0, 2), (0, 1), (0, 2), (2, 0)]);
        assert_eq!(p.row(0), &[1, 2]);
        assert_eq!(p.row(2), &[0]);
        assert_eq!(p.nnz(), 3);
        assert!(p.contains(0, 2));
        assert!(!p.contains(1, 1));
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = SparsePattern::random(20, 0.3, 42);
        let b = SparsePattern::random(20, 0.3, 42);
        let c = SparsePattern::random(20, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_density_is_roughly_respected() {
        let p = SparsePattern::random(100, 0.2, 1);
        let d = p.density();
        assert!(d > 0.1 && d < 0.3, "density {d} too far from 0.2");
    }

    #[test]
    fn diagonal_variant_has_full_diagonal() {
        let p = SparsePattern::random_with_diagonal(50, 0.05, 7);
        for i in 0..50 {
            assert!(p.contains(i, i));
        }
    }

    #[test]
    fn banded_pattern_shape() {
        let p = SparsePattern::banded(5, 1);
        assert_eq!(p.row(0), &[0, 1]);
        assert_eq!(p.row(2), &[1, 2, 3]);
        assert_eq!(p.row(4), &[3, 4]);
    }
}
