//! Experiment datasets (Appendix B.3 of the paper).
//!
//! The paper builds a *training* set plus five test sets named by DAG size:
//!
//! | dataset  | n range           | composition (paper)                       |
//! |----------|-------------------|-------------------------------------------|
//! | training | 15 – 2 000        | 10 fine-grained instances                 |
//! | tiny     | 40 – 80           | 12 fine-grained + 4 coarse-grained        |
//! | small    | 250 – 500         | 21 fine-grained + 3 coarse-grained        |
//! | medium   | 1 000 – 2 000     | 21 fine-grained                           |
//! | large    | 5 000 – 10 000    | 21 fine-grained                           |
//! | huge     | 50 000 – 100 000  | 7 fine-grained + 3 coarse-grained         |
//!
//! Instances are regenerated deterministically from a seed (the paper ships
//! concrete instance files; see the substitution notes in `DESIGN.md`).  The
//! [`Dataset::reduced`] view keeps roughly a third of the instances and is
//! what the quick experiment harness uses by default.

use crate::coarse::{coarse, CoarseAlgorithm, CoarseConfig};
use crate::fine::{cg, exp, knn, spmv, IterConfig, SpmvConfig};
use bsp_model::Dag;

/// A generated problem instance with a descriptive name.
#[derive(Debug, Clone)]
pub struct NamedDag {
    pub name: String,
    pub dag: Dag,
}

/// Which of the paper's datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    Training,
    Tiny,
    Small,
    Medium,
    Large,
    Huge,
}

impl DatasetKind {
    /// The inclusive node-count interval targeted by this dataset.
    pub fn node_range(&self) -> (usize, usize) {
        match self {
            DatasetKind::Training => (15, 2000),
            DatasetKind::Tiny => (40, 80),
            DatasetKind::Small => (250, 500),
            DatasetKind::Medium => (1000, 2000),
            DatasetKind::Large => (5000, 10000),
            DatasetKind::Huge => (50_000, 100_000),
        }
    }

    /// Dataset name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Training => "training",
            DatasetKind::Tiny => "tiny",
            DatasetKind::Small => "small",
            DatasetKind::Medium => "medium",
            DatasetKind::Large => "large",
            DatasetKind::Huge => "huge",
        }
    }

    /// The four test datasets used in the main experiments (Tables 1 and 6).
    pub const MAIN: [DatasetKind; 4] = [
        DatasetKind::Tiny,
        DatasetKind::Small,
        DatasetKind::Medium,
        DatasetKind::Large,
    ];
}

/// A collection of named instances.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub kind: DatasetKind,
    pub instances: Vec<NamedDag>,
}

/// The four fine-grained generator families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FineMethod {
    Spmv,
    Exp,
    Cg,
    Knn,
}

impl FineMethod {
    fn name(&self) -> &'static str {
        match self {
            FineMethod::Spmv => "spmv",
            FineMethod::Exp => "exp",
            FineMethod::Cg => "cg",
            FineMethod::Knn => "knn",
        }
    }
}

/// Generates a fine-grained instance whose node count lands (approximately)
/// at `target_n`, by binary-searching the matrix dimension `N`.
fn fine_instance(method: FineMethod, target_n: usize, deep: bool, seed: u64) -> Dag {
    let iterations = match (method, deep) {
        (FineMethod::Spmv, _) => 1,
        (FineMethod::Knn, true) => 8,
        (FineMethod::Knn, false) => 4,
        (_, true) => 6,
        (_, false) => 2,
    };
    // A single seed can produce a pathological instance for the frontier-based
    // kNN generator (the frontier dies out and the DAG stays tiny no matter
    // how large the matrix is), so retry with a few derived seeds and keep the
    // candidate closest to the target size.
    let mut best: Option<Dag> = None;
    for round in 0u64..4 {
        let seed = seed.wrapping_add(round.wrapping_mul(7919));
        let build = |matrix_n: usize| -> Dag {
            let matrix_n = matrix_n.max(3);
            // Constant average row degree for larger matrices keeps the DAG
            // sparse and its size roughly linear in N.
            let density = (4.0 / matrix_n as f64).min(0.35);
            match method {
                FineMethod::Spmv => spmv(&SpmvConfig {
                    n: matrix_n,
                    density,
                    seed,
                }),
                FineMethod::Exp => exp(&IterConfig {
                    n: matrix_n,
                    density,
                    iterations,
                    seed,
                }),
                FineMethod::Cg => cg(&IterConfig {
                    n: matrix_n,
                    density,
                    iterations,
                    seed,
                }),
                FineMethod::Knn => knn(&IterConfig {
                    n: matrix_n,
                    density,
                    iterations,
                    seed,
                }),
            }
        };
        // Binary search for the matrix dimension producing ~target_n DAG nodes.
        let (mut lo, mut hi) = (3usize, 8 * target_n + 16);
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if build(mid).n() < target_n {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let cand_lo = build(lo);
        let cand_hi = build(hi);
        let cand = if cand_hi.n().abs_diff(target_n) < cand_lo.n().abs_diff(target_n) {
            cand_hi
        } else {
            cand_lo
        };
        let improves = best
            .as_ref()
            .is_none_or(|b| cand.n().abs_diff(target_n) < b.n().abs_diff(target_n));
        if improves {
            best = Some(cand);
        }
        let n = best.as_ref().expect("just set").n();
        if n >= target_n / 2 && n <= target_n * 2 {
            break;
        }
    }
    best.expect("at least one attempt ran")
}

/// Generates a coarse-grained instance close to `target_n` nodes by choosing
/// the iteration count.
fn coarse_instance(algorithm: CoarseAlgorithm, target_n: usize) -> Dag {
    let probe = |iters: usize| {
        coarse(&CoarseConfig {
            algorithm,
            iterations: iters.max(1),
        })
        .n()
    };
    let base = probe(1);
    let per_iter = probe(2).saturating_sub(base).max(1);
    let iterations = ((target_n.saturating_sub(base)) / per_iter).max(1);
    coarse(&CoarseConfig {
        algorithm,
        iterations,
    })
}

impl Dataset {
    /// Generates the full (paper-sized) dataset of the given kind.
    pub fn generate(kind: DatasetKind, seed: u64) -> Dataset {
        let (lo, hi) = kind.node_range();
        let positions = [lo, (lo + hi) / 2, hi];
        let mut instances = Vec::new();
        let mut inst_seed = seed;
        let mut push_fine =
            |instances: &mut Vec<NamedDag>, method: FineMethod, target: usize, deep: bool| {
                inst_seed = inst_seed.wrapping_add(1);
                let dag = fine_instance(method, target, deep, inst_seed);
                let shape = if deep { "deep" } else { "wide" };
                instances.push(NamedDag {
                    name: format!("{}-{}-{}-n{}", kind.name(), method.name(), shape, dag.n()),
                    dag,
                });
            };

        match kind {
            DatasetKind::Training => {
                // 10 fine-grained instances spanning 15..~2000 nodes.
                let targets = [15, 40, 90, 180, 350, 600, 900, 1200, 1600, 1950];
                let methods = [
                    FineMethod::Spmv,
                    FineMethod::Exp,
                    FineMethod::Cg,
                    FineMethod::Knn,
                ];
                for (i, &t) in targets.iter().enumerate() {
                    let method = methods[i % methods.len()];
                    push_fine(&mut instances, method, t, i % 2 == 0);
                }
            }
            DatasetKind::Tiny => {
                // 4 methods × 3 positions = 12 fine instances, plus 4 coarse.
                for method in [
                    FineMethod::Spmv,
                    FineMethod::Exp,
                    FineMethod::Cg,
                    FineMethod::Knn,
                ] {
                    for &t in &positions {
                        push_fine(&mut instances, method, t, false);
                    }
                }
                for algorithm in [
                    CoarseAlgorithm::ConjugateGradient,
                    CoarseAlgorithm::PageRank,
                    CoarseAlgorithm::LabelPropagation,
                    CoarseAlgorithm::KNearestNeighbours,
                ] {
                    let dag = coarse_instance(algorithm, (lo + hi) / 2);
                    instances.push(NamedDag {
                        name: format!("{}-coarse-{}-n{}", kind.name(), algorithm.name(), dag.n()),
                        dag,
                    });
                }
            }
            DatasetKind::Small | DatasetKind::Medium | DatasetKind::Large => {
                // spmv × 3 positions, the iterative methods × 3 positions ×
                // {deep, wide} = 21 fine instances.
                for &t in &positions {
                    push_fine(&mut instances, FineMethod::Spmv, t, false);
                }
                for method in [FineMethod::Exp, FineMethod::Cg, FineMethod::Knn] {
                    for &t in &positions {
                        push_fine(&mut instances, method, t, true);
                        push_fine(&mut instances, method, t, false);
                    }
                }
                if kind == DatasetKind::Small {
                    for algorithm in [
                        CoarseAlgorithm::ConjugateGradient,
                        CoarseAlgorithm::BiCgStab,
                        CoarseAlgorithm::PageRank,
                    ] {
                        let dag = coarse_instance(algorithm, (lo + hi) / 2);
                        instances.push(NamedDag {
                            name: format!(
                                "{}-coarse-{}-n{}",
                                kind.name(),
                                algorithm.name(),
                                dag.n()
                            ),
                            dag,
                        });
                    }
                }
            }
            DatasetKind::Huge => {
                // 1 spmv + 2 of each iterative method = 7 fine, plus 3 coarse.
                push_fine(&mut instances, FineMethod::Spmv, (lo + hi) / 2, false);
                for method in [FineMethod::Exp, FineMethod::Cg, FineMethod::Knn] {
                    push_fine(&mut instances, method, lo, true);
                    push_fine(&mut instances, method, hi, false);
                }
                for algorithm in [
                    CoarseAlgorithm::ConjugateGradient,
                    CoarseAlgorithm::BiCgStab,
                    CoarseAlgorithm::PageRank,
                ] {
                    let dag = coarse_instance(algorithm, lo);
                    instances.push(NamedDag {
                        name: format!("{}-coarse-{}-n{}", kind.name(), algorithm.name(), dag.n()),
                        dag,
                    });
                }
            }
        }
        Dataset { kind, instances }
    }

    /// A reduced view keeping roughly every third instance (always at least
    /// two); used by the quick experiment harness.
    pub fn reduced(&self) -> Dataset {
        let step = 3;
        let instances: Vec<NamedDag> = self.instances.iter().step_by(step).cloned().collect();
        let instances = if instances.len() < 2 && self.instances.len() >= 2 {
            self.instances[..2].to_vec()
        } else {
            instances
        };
        Dataset {
            kind: self.kind,
            instances,
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_has_paper_composition() {
        let d = Dataset::generate(DatasetKind::Tiny, 1);
        assert_eq!(d.len(), 16); // 12 fine + 4 coarse
        let (lo, hi) = DatasetKind::Tiny.node_range();
        for inst in &d.instances {
            let n = inst.dag.n();
            assert!(
                n >= lo / 2 && n <= hi * 2,
                "{} has {} nodes, far outside [{lo},{hi}]",
                inst.name,
                n
            );
        }
    }

    #[test]
    fn small_dataset_has_paper_composition() {
        let d = Dataset::generate(DatasetKind::Small, 2);
        assert_eq!(d.len(), 24); // 21 fine + 3 coarse
        let (lo, hi) = DatasetKind::Small.node_range();
        let in_range = d
            .instances
            .iter()
            .filter(|i| i.dag.n() >= lo * 7 / 10 && i.dag.n() <= hi * 13 / 10)
            .count();
        assert!(in_range * 10 >= d.len() * 8, "too many instances off-range");
    }

    #[test]
    fn training_dataset_spans_sizes() {
        let d = Dataset::generate(DatasetKind::Training, 3);
        assert_eq!(d.len(), 10);
        let min = d.instances.iter().map(|i| i.dag.n()).min().unwrap();
        let max = d.instances.iter().map(|i| i.dag.n()).max().unwrap();
        assert!(min < 120, "smallest training instance too big: {min}");
        assert!(max > 800, "largest training instance too small: {max}");
    }

    #[test]
    fn reduced_view_is_smaller_but_nonempty() {
        let d = Dataset::generate(DatasetKind::Tiny, 4);
        let r = d.reduced();
        assert!(r.len() >= 2);
        assert!(r.len() < d.len());
        assert_eq!(r.kind, DatasetKind::Tiny);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Tiny, 7);
        let b = Dataset::generate(DatasetKind::Tiny, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.dag, y.dag);
        }
    }

    #[test]
    fn medium_instances_land_near_range() {
        let d = Dataset::generate(DatasetKind::Medium, 5);
        assert_eq!(d.len(), 21);
        let (lo, hi) = DatasetKind::Medium.node_range();
        for inst in &d.instances {
            let n = inst.dag.n();
            assert!(
                n >= lo / 2 && n <= hi * 2,
                "{} has {n} nodes, far outside [{lo},{hi}]",
                inst.name
            );
        }
    }
}
