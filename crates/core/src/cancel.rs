//! Cooperative cancellation for the anytime search loops.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that every long-running
//! stage of the scheduling pipeline polls: the `HC` work-list loop, the
//! `HCcs` loop, the multilevel refinement phases, and the ILP branch-&-bound
//! (between branch nodes).  All of those stages are *anytime* — they hold a
//! valid schedule at every step and only ever replace it with a cheaper one —
//! so cancellation is safe at any poll point: the caller always gets back its
//! best-so-far **valid** schedule.
//!
//! A token can fire two ways:
//!
//! * explicitly, via [`CancelToken::cancel`] (e.g. the serving layer's
//!   graceful shutdown), and
//! * implicitly, once a wall-clock **deadline** passes — the mechanism behind
//!   the deadline-aware requests of `bsp_serve`.
//!
//! The default token is *inert*: it never fires and polling it is one branch
//! on a `None`, so code paths that do not use cancellation pay nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cooperative-cancellation handle (see the module docs).
///
/// Clones share the underlying flag: cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// An inert token that never fires (the default).
    pub fn inert() -> Self {
        CancelToken::default()
    }

    /// A token that fires when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// A token that fires at `deadline` (and on [`CancelToken::cancel`]).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: Some(deadline),
        }
    }

    /// A token that fires `budget` from now (and on [`CancelToken::cancel`]).
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Returns this token with its deadline tightened to `deadline` (keeps
    /// the earlier of the two if one is already set).  Shares the flag with
    /// `self`, so an explicit [`CancelToken::cancel`] still fires both.
    pub fn tightened(&self, deadline: Instant) -> Self {
        CancelToken {
            flag: self.flag.clone(),
            deadline: Some(self.deadline.map_or(deadline, |d| d.min(deadline))),
        }
    }

    /// Fires the token: every clone's [`CancelToken::is_cancelled`] returns
    /// `true` from now on.  No-op on an inert token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// `true` once the token has fired (explicitly or by deadline).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.flag {
            None => self.deadline.is_some_and(|d| Instant::now() >= d),
            Some(flag) => {
                flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The deadline this token fires at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Wall-clock left until the deadline (`None` when no deadline is set,
    /// zero when it has already passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The shared flag, for handing down to [`micro_ilp::MipConfig::cancel`].
    /// `None` for inert tokens.  Note the flag alone does not see the
    /// deadline; callers that pass it down must bound the callee by wall
    /// clock separately (the ILP wrappers clip their time limits).
    pub fn shared_flag(&self) -> Option<Arc<AtomicBool>> {
        self.flag.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::inert();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn explicit_cancel_fires_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn past_deadline_fires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let u = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!u.is_cancelled());
        assert!(u.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn tightened_keeps_the_earlier_deadline_and_the_flag() {
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() - Duration::from_millis(1);
        let t = CancelToken::with_deadline(far);
        assert!(t.tightened(near).is_cancelled());
        assert!(!t.tightened(far).is_cancelled());
        // Tightening an already-near deadline with a far one keeps the near one.
        let n = CancelToken::with_deadline(near);
        assert!(n.tightened(far).is_cancelled());
        // The flag is shared through tightening.
        let child = t.tightened(far);
        t.cancel();
        assert!(child.is_cancelled());
    }
}
