//! The combined scheduling framework of Figure 3 of the paper.
//!
//! The pipeline runs every enabled initialization heuristic (`BSPg`, `Source`
//! and — on machines with few processors — `ILPinit`), improves each candidate
//! independently with the `HC` + `HCcs` local searches, keeps the cheapest
//! schedule found this way, and finally hands it to the ILP stage:
//! `ILPfull` when the full formulation is small enough, otherwise the
//! window-based `ILPpart`, followed in either case by the
//! communication-schedule ILP `ILPcs`.
//!
//! [`Pipeline::run_report`] additionally returns the intermediate costs used
//! by the paper's Figures 5–7 (the `Init`, `HCcs` and `ILP` bars).

use crate::baselines::TrivialScheduler;
use crate::cancel::CancelToken;
use crate::hill_climb::{hc_improve, hccs_improve, HillClimbConfig};
use crate::ilp::{
    ilp_cs_improve, ilp_full_schedule, ilp_part_improve, IlpConfig, IlpInitScheduler,
};
use crate::init::{BspgScheduler, SourceScheduler};
use crate::Scheduler;
use bsp_model::{BspSchedule, Dag, Machine};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Configuration of the combined pipeline (Figure 3).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Time/step limits of the `HC` + `HCcs` local searches (run once per
    /// initialization branch).
    pub hill_climb: HillClimbConfig,
    /// Configuration of the ILP stage (`ILPfull` / `ILPpart` / `ILPcs` and
    /// `ILPinit`).
    pub ilp: IlpConfig,
    /// Whether the ILP stage runs at all.  The huge-dataset experiments of
    /// §7.1 disable it and use only the heuristics plus local search.
    pub use_ilp: bool,
    /// Whether the communication-schedule ILP (`ILPcs`) runs at the end of the
    /// ILP stage.  The multilevel framework (Figure 4) disables it here and
    /// runs it separately after uncoarsening.
    pub use_ilp_cs: bool,
    /// `ILPinit` is only attempted when `P` is at most this value (the paper
    /// settles on 4 after the training-set experiments of Appendix C.1).
    /// Set to 0 to disable `ILPinit` entirely.
    pub ilp_init_max_procs: usize,
    /// `ILPinit` is only attempted when the DAG has at most this many nodes;
    /// with the `micro-ilp` solver its batch-by-batch ILPs become too slow on
    /// larger DAGs (the paper faces the same trade-off with CBC and therefore
    /// also restricts where `ILPinit` runs).
    pub ilp_init_max_nodes: usize,
    /// Overall wall-clock budget for the ILP improvement stage
    /// (`ILPpart` windows stop once it is exhausted).
    pub ilp_stage_budget: Duration,
    /// Run the initialization branches on the rayon thread pool instead of
    /// sequentially.
    pub parallel_branches: bool,
    /// Thread budget of one pipeline run.  `1` (the default) keeps the local
    /// searches serial and leaves the historical branch fan-out untouched;
    /// any other value is a **hard budget**: branches fan out only when the
    /// budget covers one thread per branch (each searching with
    /// `budget / #branches` lanes), and otherwise run sequentially with the
    /// whole budget each, so peak concurrency never exceeds the budget.
    /// `0` budgets one thread per available core.  Serving workers set this
    /// from the server-wide budget so `workers × solve-threads` never
    /// oversubscribes the host.
    pub solve_threads: usize,
    /// Collect a per-phase wall-clock breakdown ([`PipelineReport::phases`])
    /// during the run.  `false` (the default) is zero-cost: no clock is read
    /// and nothing is allocated for phase accounting.  The serving layer
    /// enables this per traced request.
    pub collect_phases: bool,
    /// Absolute wall-clock deadline for the whole run.  The pipeline is
    /// *anytime*: it clips every stage budget to the remaining time, skips
    /// stages whose budget is exhausted, and always returns the best valid
    /// schedule found so far (at minimum the raw initializer schedules, which
    /// are not deadline-gated).  `None` disables deadline awareness.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation threaded through every stage (`HC`, `HCcs`,
    /// the multilevel refinement phases, and the ILP branch-&-bound).  The
    /// effective token of a run is this one tightened to [`Self::deadline`].
    pub cancel: CancelToken,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            hill_climb: HillClimbConfig::default(),
            ilp: IlpConfig::default(),
            use_ilp: true,
            use_ilp_cs: true,
            ilp_init_max_procs: 4,
            ilp_init_max_nodes: 400,
            ilp_stage_budget: Duration::from_secs(20),
            parallel_branches: true,
            solve_threads: 1,
            collect_phases: false,
            deadline: None,
            cancel: CancelToken::inert(),
        }
    }
}

impl PipelineConfig {
    /// A small configuration suitable for unit tests, doc tests and quick
    /// experiments: sub-second local search, tiny ILP budgets.
    pub fn fast() -> Self {
        PipelineConfig {
            hill_climb: HillClimbConfig::with_time_limit(Duration::from_millis(200)),
            ilp: IlpConfig::fast(),
            use_ilp: true,
            use_ilp_cs: true,
            ilp_init_max_procs: 4,
            ilp_init_max_nodes: 150,
            ilp_stage_budget: Duration::from_secs(2),
            parallel_branches: true,
            solve_threads: 1,
            collect_phases: false,
            deadline: None,
            cancel: CancelToken::inert(),
        }
    }

    /// A heuristics-only configuration (`BSPg`/`Source` + `HC`/`HCcs`), as used
    /// on the paper's *huge* dataset where the ILP methods are too expensive.
    pub fn heuristics_only() -> Self {
        PipelineConfig {
            use_ilp: false,
            ilp_init_max_procs: 0,
            ..Default::default()
        }
    }

    /// Sets the local-search time limit and returns the configuration.
    pub fn with_hill_climb_time(mut self, time_limit: Duration) -> Self {
        self.hill_climb.time_limit = time_limit;
        self
    }

    /// Enables or disables the ILP stage and returns the configuration.
    pub fn with_ilp(mut self, use_ilp: bool) -> Self {
        self.use_ilp = use_ilp;
        self
    }

    /// Sets the wall-clock deadline and returns the configuration.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the cancellation token and returns the configuration.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The token a run under this configuration polls: the configured cancel
    /// token tightened to the configured deadline.
    pub fn effective_cancel(&self) -> CancelToken {
        match self.deadline {
            Some(d) => self.cancel.tightened(d),
            None => self.cancel.clone(),
        }
    }

    /// Constrains the whole run — branch fan-out *and* intra-search lanes —
    /// to at most `budget` threads: sets [`Self::solve_threads`] and turns
    /// the branch fan-out off entirely when the budget is a single thread.
    /// This is the knob serving workers derive from the server-wide budget.
    pub fn with_thread_budget(mut self, budget: usize) -> Self {
        self.solve_threads = budget;
        if budget == 1 {
            self.parallel_branches = false;
        }
        self
    }

    /// The concrete solve-thread budget: `solve_threads`, or one per
    /// available core when `0`.
    pub fn effective_solve_threads(&self) -> usize {
        crate::resolve_threads(self.solve_threads)
    }
}

/// Clips `budget` to the time left on `cancel`'s deadline (unchanged when the
/// token carries no deadline).
fn clip_budget(budget: Duration, cancel: &CancelToken) -> Duration {
    match cancel.remaining() {
        Some(remaining) => budget.min(remaining),
        None => budget,
    }
}

/// One timed solver phase, as a microsecond offset + duration relative to
/// the start of the run.  Only collected when
/// [`PipelineConfig::collect_phases`] is set; names are `&'static` so the
/// serving layer can copy samples into its allocation-free span sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSample {
    /// Static phase name (an initializer name, `"hc"`, `"ilp_stage"`, …).
    pub name: &'static str,
    /// Nesting depth below the solve (0 = direct child).
    pub depth: u8,
    /// Microseconds from the start of the run to phase start.
    pub start_us: u64,
    /// Phase duration in microseconds.
    pub dur_us: u64,
}

/// Cost of one initialization branch before and after local search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchReport {
    /// Name of the initialization heuristic (`"BSPg"`, `"Source"`, `"ILPinit"`).
    pub init_name: String,
    /// Cost of the raw initial schedule.
    pub init_cost: u64,
    /// Cost after `HC` + `HCcs`.
    pub local_search_cost: u64,
}

/// The result of a full pipeline run, including the intermediate costs that
/// the paper's figures report.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Per-initializer costs (raw and after local search).
    pub branches: Vec<BranchReport>,
    /// Cost of the best *raw* initial schedule — the `Init` bars of Figures 5–7.
    pub init_cost: u64,
    /// Cost of the best schedule after `HC` + `HCcs` — the `HCcs` bars.
    pub local_search_cost: u64,
    /// Cost after `ILPfull` / `ILPpart` but before `ILPcs` (the `ILPpart`
    /// column of the paper's Table 7).  Equal to `local_search_cost` when the
    /// ILP stage is disabled.
    pub ilp_part_cost: u64,
    /// Final cost after the ILP stage — the `ILP` bars.  Equal to
    /// `local_search_cost` when the ILP stage is disabled.
    pub final_cost: u64,
    /// Name of the initializer whose branch produced the selected schedule.
    pub selected_init: String,
    /// `true` if `ILPfull` was attempted (i.e. its estimated variable count
    /// fit the configured budget).
    pub used_ilp_full: bool,
    /// Number of `ILPpart` windows whose reassignment was adopted.
    pub ilp_part_windows_improved: usize,
    /// `true` if `ILPcs` improved the communication schedule.
    pub ilp_cs_improved: bool,
    /// Per-phase wall-clock breakdown (empty unless
    /// [`PipelineConfig::collect_phases`] is set).  Branches that ran in
    /// parallel have overlapping spans.
    pub phases: Vec<PhaseSample>,
    /// The final schedule.
    pub schedule: BspSchedule,
}

/// The combined scheduling framework of Figure 3.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration this pipeline runs with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the pipeline and returns the final schedule.
    pub fn run(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        self.run_report(dag, machine).schedule
    }

    /// Runs the pipeline and returns the final schedule together with the
    /// intermediate stage costs (Figures 5–7).
    pub fn run_report(&self, dag: &Dag, machine: &Machine) -> PipelineReport {
        if dag.n() == 0 {
            let schedule = TrivialScheduler.schedule(dag, machine);
            let cost = schedule.cost(dag, machine);
            return PipelineReport {
                branches: Vec::new(),
                init_cost: cost,
                local_search_cost: cost,
                ilp_part_cost: cost,
                final_cost: cost,
                selected_init: "trivial".to_string(),
                used_ilp_full: false,
                ilp_part_windows_improved: 0,
                ilp_cs_improved: false,
                phases: Vec::new(),
                schedule,
            };
        }

        // The phase clock only exists when the caller opted in; `None` keeps
        // the default path free of any `Instant::now` calls.
        let origin = if self.config.collect_phases {
            Some(Instant::now())
        } else {
            None
        };
        let cancel = self.config.effective_cancel();
        let initializers = self.initializers(dag, machine);
        // Split the solve-thread budget across the branch fan-out so the run
        // as a whole never exceeds it.  `solve_threads == 1` is the legacy
        // default — serial searches, historical branch fan-out untouched;
        // any other value is a hard budget: branches fan out only when the
        // budget covers one thread per branch (each then searching with its
        // share), and otherwise run sequentially with the whole budget each,
        // so peak concurrency never exceeds the budget.
        let budget = self.config.effective_solve_threads();
        let fan_out = self.config.parallel_branches
            && (self.config.solve_threads == 1 || budget >= initializers.len());
        // Shares below the parallel driver's break-even fall back to serial
        // searches (the budget is a cap, not a target).
        let branch_threads = if fan_out {
            crate::parallel_budget(budget / initializers.len().max(1))
        } else {
            crate::parallel_budget(budget)
        };
        type BranchResult = (BranchReport, BspSchedule, Vec<PhaseSample>);
        let branch_results: Vec<BranchResult> = if fan_out {
            initializers
                .par_iter()
                .map(|init| {
                    self.run_branch(dag, machine, init.as_ref(), &cancel, branch_threads, origin)
                })
                .collect()
        } else {
            initializers
                .iter()
                .map(|init| {
                    self.run_branch(dag, machine, init.as_ref(), &cancel, branch_threads, origin)
                })
                .collect()
        };

        let init_cost = branch_results
            .iter()
            .map(|(b, _, _)| b.init_cost)
            .min()
            .expect("at least one initializer is always enabled");
        let (best_idx, _) = branch_results
            .iter()
            .enumerate()
            .min_by_key(|(_, (b, _, _))| b.local_search_cost)
            .expect("at least one initializer is always enabled");
        let selected_init = branch_results[best_idx].0.init_name.clone();
        let local_search_cost = branch_results[best_idx].0.local_search_cost;
        let mut schedule = branch_results[best_idx].1.clone();
        let mut phases: Vec<PhaseSample> = Vec::new();
        let branches = branch_results
            .into_iter()
            .map(|(b, _, p)| {
                phases.extend(p);
                b
            })
            .collect();

        let mut used_ilp_full = false;
        let mut ilp_part_windows_improved = 0;
        let mut ilp_cs_improved = false;
        let mut ilp_part_cost = local_search_cost;
        let ilp_started = origin.map(|o| o.elapsed());
        if self.config.use_ilp && !cancel.is_cancelled() {
            let stage_budget = clip_budget(self.config.ilp_stage_budget, &cancel);
            let deadline = Instant::now() + stage_budget;
            let ilp_config = IlpConfig {
                cancel: cancel.tightened(deadline),
                ..self.config.ilp.clone()
            };
            // ILPfull first, warm-started from the incumbent; it internally
            // bails out when the variable estimate exceeds the budget.
            let s_max = schedule.assignment.num_supersteps();
            if let Some(full) = ilp_full_schedule(dag, machine, s_max, &ilp_config, Some(&schedule))
            {
                used_ilp_full = true;
                if full.cost(dag, machine) < schedule.cost(dag, machine) {
                    schedule = full;
                }
            } else {
                ilp_part_windows_improved =
                    ilp_part_improve(dag, machine, &mut schedule, &ilp_config, Some(deadline));
            }
            ilp_part_cost = schedule.cost(dag, machine);
            if self.config.use_ilp_cs {
                ilp_cs_improved = ilp_cs_improve(dag, machine, &mut schedule, &ilp_config);
            }
            if let (Some(o), Some(started)) = (origin, ilp_started) {
                phases.push(PhaseSample {
                    name: "ilp_stage",
                    depth: 0,
                    start_us: started.as_micros() as u64,
                    dur_us: o.elapsed().saturating_sub(started).as_micros() as u64,
                });
            }
        }

        schedule.normalize(dag);
        let final_cost = schedule.cost(dag, machine);
        debug_assert!(schedule.validate(dag, machine).is_ok());

        PipelineReport {
            branches,
            init_cost,
            local_search_cost,
            ilp_part_cost,
            final_cost,
            selected_init,
            used_ilp_full,
            ilp_part_windows_improved,
            ilp_cs_improved,
            phases,
            schedule,
        }
    }

    /// The initialization heuristics enabled under the current configuration
    /// for the given DAG and machine.
    fn initializers(&self, dag: &Dag, machine: &Machine) -> Vec<Box<dyn Scheduler + Send + Sync>> {
        let mut inits: Vec<Box<dyn Scheduler + Send + Sync>> =
            vec![Box::new(BspgScheduler), Box::new(SourceScheduler)];
        if self.config.use_ilp
            && machine.p() <= self.config.ilp_init_max_procs
            && dag.n() <= self.config.ilp_init_max_nodes
        {
            inits.push(Box::new(IlpInitScheduler::new(IlpConfig {
                cancel: self.config.effective_cancel(),
                ..self.config.ilp.clone()
            })));
        }
        inits
    }

    /// Runs one initialization branch: initializer, then `HC`, then `HCcs`,
    /// searching with `threads` intra-search lanes (this branch's share of
    /// the solve budget).  When `origin` is set the branch reports its phase
    /// breakdown relative to that clock.
    fn run_branch(
        &self,
        dag: &Dag,
        machine: &Machine,
        init: &dyn Scheduler,
        cancel: &CancelToken,
        threads: usize,
        origin: Option<Instant>,
    ) -> (BranchReport, BspSchedule, Vec<PhaseSample>) {
        let branch_start = origin.map(|o| o.elapsed());
        let mut schedule = init.schedule(dag, machine);
        schedule.normalize(dag);
        let init_done = origin.map(|o| o.elapsed());
        let init_cost = schedule.cost(dag, machine);
        // The paper gives 90% of the local-search budget to HC, 10% to HCcs;
        // under a deadline both are additionally clipped to the remaining
        // wall clock and poll the cancel token.
        let hc_budget = clip_budget(self.config.hill_climb.time_limit.mul_f64(0.9), cancel);
        let hccs_budget = clip_budget(self.config.hill_climb.time_limit.mul_f64(0.1), cancel);
        let hc_cfg = HillClimbConfig {
            time_limit: hc_budget,
            cancel: cancel.clone(),
            threads,
            ..self.config.hill_climb.clone()
        };
        let hccs_cfg = HillClimbConfig {
            time_limit: hccs_budget,
            cancel: cancel.clone(),
            threads,
            ..self.config.hill_climb.clone()
        };
        hc_improve(dag, machine, &mut schedule, &hc_cfg);
        let hc_done = origin.map(|o| o.elapsed());
        hccs_improve(dag, machine, &mut schedule, &hccs_cfg);
        let local_search_cost = schedule.cost(dag, machine);
        let mut phases = Vec::new();
        if let (Some(o), Some(start), Some(init_done), Some(hc_done)) =
            (origin, branch_start, init_done, hc_done)
        {
            let end = o.elapsed();
            let us = |d: Duration| d.as_micros() as u64;
            phases.push(PhaseSample {
                name: init.name(),
                depth: 0,
                start_us: us(start),
                dur_us: us(end.saturating_sub(start)),
            });
            phases.push(PhaseSample {
                name: "init_schedule",
                depth: 1,
                start_us: us(start),
                dur_us: us(init_done.saturating_sub(start)),
            });
            phases.push(PhaseSample {
                name: "hc",
                depth: 1,
                start_us: us(init_done),
                dur_us: us(hc_done.saturating_sub(init_done)),
            });
            phases.push(PhaseSample {
                name: "hccs",
                depth: 1,
                start_us: us(hc_done),
                dur_us: us(end.saturating_sub(hc_done)),
            });
        }
        (
            BranchReport {
                init_name: init.name().to_string(),
                init_cost,
                local_search_cost,
            },
            schedule,
            phases,
        )
    }
}

impl Scheduler for Pipeline {
    fn name(&self) -> &'static str {
        "Pipeline"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        self.run(dag, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{CilkScheduler, HDaggScheduler};
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    fn fast_pipeline() -> Pipeline {
        Pipeline::new(PipelineConfig::fast())
    }

    #[test]
    fn pipeline_returns_valid_schedules() {
        let dag = spmv(&SpmvConfig {
            n: 20,
            density: 0.2,
            seed: 11,
        });
        for machine in [
            Machine::uniform(4, 3, 5),
            Machine::uniform(8, 1, 5),
            Machine::numa_binary_tree(8, 1, 5, 3),
        ] {
            let report = fast_pipeline().run_report(&dag, &machine);
            assert!(report.schedule.validate(&dag, &machine).is_ok());
            assert_eq!(report.final_cost, report.schedule.cost(&dag, &machine));
        }
    }

    #[test]
    fn pipeline_stage_costs_are_monotone() {
        let dag = cg(&IterConfig {
            n: 10,
            density: 0.3,
            iterations: 2,
            seed: 4,
        });
        let machine = Machine::uniform(4, 3, 5);
        let report = fast_pipeline().run_report(&dag, &machine);
        assert!(report.local_search_cost <= report.init_cost);
        assert!(report.ilp_part_cost <= report.local_search_cost);
        assert!(report.final_cost <= report.ilp_part_cost);
        for branch in &report.branches {
            assert!(branch.local_search_cost <= branch.init_cost);
        }
    }

    #[test]
    fn pipeline_beats_or_matches_the_baselines_on_small_instances() {
        let dag = spmv(&SpmvConfig {
            n: 24,
            density: 0.25,
            seed: 9,
        });
        let machine = Machine::uniform(4, 5, 5);
        let ours = fast_pipeline().run(&dag, &machine).cost(&dag, &machine);
        let cilk = CilkScheduler::default()
            .schedule(&dag, &machine)
            .cost(&dag, &machine);
        let hdagg = HDaggScheduler::default()
            .schedule(&dag, &machine)
            .cost(&dag, &machine);
        assert!(ours <= cilk, "pipeline {ours} worse than Cilk {cilk}");
        assert!(ours <= hdagg, "pipeline {ours} worse than HDagg {hdagg}");
    }

    #[test]
    fn ilp_init_branch_only_runs_on_few_processors() {
        let dag = spmv(&SpmvConfig {
            n: 10,
            density: 0.3,
            seed: 2,
        });
        let p4 = fast_pipeline().run_report(&dag, &Machine::uniform(4, 1, 5));
        assert!(p4.branches.iter().any(|b| b.init_name == "ILPinit"));
        let p8 = fast_pipeline().run_report(&dag, &Machine::uniform(8, 1, 5));
        assert!(!p8.branches.iter().any(|b| b.init_name == "ILPinit"));
    }

    #[test]
    fn heuristics_only_configuration_skips_the_ilp_stage() {
        let dag = cg(&IterConfig {
            n: 8,
            density: 0.3,
            iterations: 1,
            seed: 6,
        });
        let machine = Machine::uniform(4, 1, 5);
        let mut config = PipelineConfig::heuristics_only();
        config.hill_climb.time_limit = Duration::from_millis(100);
        let report = Pipeline::new(config).run_report(&dag, &machine);
        assert!(!report.used_ilp_full);
        assert_eq!(report.ilp_part_windows_improved, 0);
        assert!(!report.ilp_cs_improved);
        assert_eq!(report.final_cost, report.local_search_cost);
    }

    #[test]
    fn empty_dag_yields_the_trivial_schedule() {
        let dag = Dag::from_edge_list_unit_weights(0, &[]).unwrap();
        let machine = Machine::uniform(4, 1, 5);
        let report = fast_pipeline().run_report(&dag, &machine);
        assert_eq!(report.selected_init, "trivial");
        assert!(report.schedule.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn phase_collection_is_opt_in_and_covers_the_run() {
        let dag = spmv(&SpmvConfig {
            n: 16,
            density: 0.25,
            seed: 7,
        });
        let machine = Machine::uniform(4, 3, 5);
        // Off by default: no samples.
        let silent = fast_pipeline().run_report(&dag, &machine);
        assert!(silent.phases.is_empty());
        // On: every branch reports its initializer span plus the three
        // depth-1 children, and child durations tile the branch span.
        let mut config = PipelineConfig::fast();
        config.collect_phases = true;
        config.parallel_branches = false;
        let report = Pipeline::new(config).run_report(&dag, &machine);
        assert!(!report.phases.is_empty());
        for branch in &report.branches {
            let top = report
                .phases
                .iter()
                .find(|p| p.name == branch.init_name && p.depth == 0)
                .expect("branch has a top-level span");
            let children: u64 = report
                .phases
                .iter()
                .filter(|p| p.depth == 1 && p.start_us >= top.start_us)
                .filter(|p| p.start_us < top.start_us + top.dur_us.max(1))
                .map(|p| p.dur_us)
                .sum();
            assert!(
                children <= top.dur_us + 3,
                "children {children} exceed branch span {}",
                top.dur_us
            );
        }
        assert!(report.phases.iter().any(|p| p.name == "hc"));
        assert!(report.phases.iter().any(|p| p.name == "ilp_stage"));
    }

    #[test]
    fn sequential_and_parallel_branch_execution_agree() {
        let dag = spmv(&SpmvConfig {
            n: 14,
            density: 0.25,
            seed: 13,
        });
        let machine = Machine::uniform(4, 3, 5);
        let mut cfg = PipelineConfig::fast();
        // Remove the time dependence so both runs are deterministic.
        cfg.hill_climb = HillClimbConfig {
            time_limit: Duration::from_secs(3600),
            max_steps: 200,
            ..Default::default()
        };
        cfg.use_ilp = false;
        let par = Pipeline::new(PipelineConfig {
            parallel_branches: true,
            ..cfg.clone()
        })
        .run_report(&dag, &machine);
        let seq = Pipeline::new(PipelineConfig {
            parallel_branches: false,
            ..cfg
        })
        .run_report(&dag, &machine);
        assert_eq!(par.final_cost, seq.final_cost);
        assert_eq!(par.selected_init, seq.selected_init);
    }
}
