//! ILP-based scheduling methods (§4.4 of the paper).
//!
//! The BSP scheduling problem (or a sub-problem of it) is expressed as a 0/1
//! integer linear program and handed to the [`micro_ilp`] branch-&-bound
//! solver — the stand-in for the CBC solver used in the paper:
//!
//! * [`full`] — `ILPfull`: the complete scheduling problem as one ILP
//!   (the "FS" formulation of arXiv:2303.05989), viable only for very small
//!   DAGs.
//! * [`partial`] — `ILPpart`: reorganizes the nodes of a window of consecutive
//!   supersteps of an existing schedule, keeping the rest fixed; applied
//!   repeatedly over disjoint windows.
//! * [`comm`] — `ILPcs`: optimizes the communication schedule `Γ` alone.
//! * [`init`] — `ILPinit`: builds an initial schedule by processing batches of
//!   nodes in topological order, each batch solved as a small ILP.
//!
//! All methods are *anytime*: they are warm-started from the current schedule
//! and only ever replace it when the full schedule cost improves.

pub mod comm;
pub mod full;
pub mod init;
pub mod partial;

use crate::cancel::CancelToken;
use micro_ilp::MipConfig;
use std::time::Duration;

/// Configuration of the ILP-based methods.
///
/// The paper's variable-count thresholds (20 000 for `ILPfull`, 4 000 per
/// `ILPpart` window) assume CBC; the defaults here are lower because
/// `micro-ilp` is a much simpler solver (see `DESIGN.md`).
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Time limit per individual ILP solve.
    pub time_limit: Duration,
    /// `ILPfull` is only attempted when its estimated variable count is below
    /// this threshold (paper: 20 000).
    pub full_max_variables: usize,
    /// Target variable count of a single `ILPpart` window (paper: 4 000).
    pub window_variable_budget: usize,
    /// Target variable count of an `ILPinit` batch (paper: 2 000).
    pub init_variable_budget: usize,
    /// Cooperative cancellation: checked between batches/windows and between
    /// branch-&-bound nodes inside each solve.  Every ILP method is anytime
    /// (it only replaces the schedule when the cost improves), so a cancelled
    /// stage leaves the incumbent schedule untouched.  Inert by default.
    pub cancel: CancelToken,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            time_limit: Duration::from_secs(5),
            full_max_variables: 2_000,
            window_variable_budget: 600,
            init_variable_budget: 400,
            cancel: CancelToken::inert(),
        }
    }
}

impl IlpConfig {
    /// A configuration with the given per-solve time limit.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        IlpConfig {
            time_limit,
            ..Default::default()
        }
    }

    /// A very small configuration for unit tests and quick experiments.
    pub fn fast() -> Self {
        IlpConfig {
            time_limit: Duration::from_millis(250),
            full_max_variables: 600,
            window_variable_budget: 250,
            init_variable_budget: 200,
            cancel: CancelToken::inert(),
        }
    }

    /// The `micro_ilp` solver configuration for one solve under this config:
    /// the per-solve time limit clipped to whatever wall clock remains before
    /// the cancel token's deadline, with the token's shared flag threaded
    /// through so an explicit cancellation also stops mid-solve.
    pub(crate) fn mip_config(&self) -> MipConfig {
        let time_limit = match self.cancel.remaining() {
            Some(remaining) => self.time_limit.min(remaining),
            None => self.time_limit,
        };
        MipConfig {
            time_limit,
            cancel: self.cancel.shared_flag(),
            ..MipConfig::default()
        }
    }
}

pub use comm::ilp_cs_improve;
pub use full::{estimate_full_variables, ilp_full_schedule};
pub use init::IlpInitScheduler;
pub use partial::ilp_part_improve;
