//! `ILPfull`: the complete BSP + NUMA scheduling problem as one ILP
//! (the "FS" formulation of arXiv:2303.05989, extended with NUMA weights).
//!
//! Variables (all binary unless noted):
//!
//! * `comp[v][p][s]` — node `v` is computed on processor `p` in superstep `s`;
//! * `comm[v][p1][p2][s]` — the value of `v` is sent `p1 → p2` in the
//!   communication phase of superstep `s` (`p1 ≠ p2`);
//! * `used[s]` — superstep `s` exists (monotone: a used superstep cannot
//!   follow an unused one);
//! * `W[s]`, `H[s]` — continuous per-superstep work / `h`-relation costs.
//!
//! Objective: `Σ_s W[s] + g·H[s] + ℓ·used[s]`.

use super::IlpConfig;
use bsp_model::{Assignment, BspSchedule, CommSchedule, CommStep, Dag, Machine};
use micro_ilp::{Model, VarId};

/// Estimated number of ILP variables of the full formulation with `s_max`
/// supersteps (the paper uses this estimate to decide whether `ILPfull` is
/// worth attempting at all).
pub fn estimate_full_variables(dag: &Dag, machine: &Machine, s_max: usize) -> usize {
    let n = dag.n();
    let p = machine.p();
    n * p * s_max + n * p * p * s_max + 3 * s_max
}

struct FullVars {
    comp: Vec<Vec<Vec<VarId>>>,              // [v][p][s]
    comm: Vec<Vec<Vec<Vec<Option<VarId>>>>>, // [v][p1][p2][s], None on the diagonal
    used: Vec<VarId>,                        // [s]
}

fn build_model(dag: &Dag, machine: &Machine, s_max: usize) -> (Model, FullVars) {
    let n = dag.n();
    let p = machine.p();
    let g = machine.g() as f64;
    let l = machine.latency() as f64;
    let mut model = Model::new();

    let comp: Vec<Vec<Vec<VarId>>> = (0..n)
        .map(|v| {
            (0..p)
                .map(|q| {
                    (0..s_max)
                        .map(|s| model.add_binary(format!("comp_{v}_{q}_{s}"), 0.0))
                        .collect()
                })
                .collect()
        })
        .collect();
    let comm: Vec<Vec<Vec<Vec<Option<VarId>>>>> = (0..n)
        .map(|v| {
            (0..p)
                .map(|p1| {
                    (0..p)
                        .map(|p2| {
                            (0..s_max)
                                .map(|s| {
                                    if p1 == p2 {
                                        None
                                    } else {
                                        Some(
                                            model
                                                .add_binary(format!("comm_{v}_{p1}_{p2}_{s}"), 0.0),
                                        )
                                    }
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let work_cost: Vec<VarId> = (0..s_max)
        .map(|s| model.add_continuous(format!("W_{s}"), 0.0, f64::INFINITY, 1.0))
        .collect();
    let h_cost: Vec<VarId> = (0..s_max)
        .map(|s| model.add_continuous(format!("H_{s}"), 0.0, f64::INFINITY, g))
        .collect();
    let used: Vec<VarId> = (0..s_max)
        .map(|s| model.add_binary(format!("used_{s}"), l))
        .collect();

    // Each node computed exactly once.
    for v in 0..n {
        let terms: Vec<(VarId, f64)> = (0..p)
            .flat_map(|q| (0..s_max).map(move |s| (q, s)))
            .map(|(q, s)| (comp[v][q][s], 1.0))
            .collect();
        model.add_eq(format!("once_{v}"), terms, 1.0);
    }

    // Precedence: comp[v][q][s] <= availability of u on q by superstep s.
    for v in 0..n {
        for &u in dag.predecessors(v) {
            for q in 0..p {
                for s in 0..s_max {
                    let mut terms = vec![(comp[v][q][s], 1.0)];
                    for s2 in 0..=s {
                        terms.push((comp[u][q][s2], -1.0));
                    }
                    for s2 in 0..s {
                        for p1 in 0..p {
                            if let Some(var) = comm[u][p1][q][s2] {
                                terms.push((var, -1.0));
                            }
                        }
                    }
                    model.add_le(format!("prec_{u}_{v}_{q}_{s}"), terms, 0.0);
                }
            }
        }
    }

    // A value can only be sent from a processor where it is present.
    for v in 0..n {
        for p1 in 0..p {
            for p2 in 0..p {
                if p1 == p2 {
                    continue;
                }
                for s in 0..s_max {
                    let var = comm[v][p1][p2][s].expect("off-diagonal");
                    let mut terms = vec![(var, 1.0)];
                    for s2 in 0..=s {
                        terms.push((comp[v][p1][s2], -1.0));
                    }
                    for s2 in 0..s {
                        for p0 in 0..p {
                            if let Some(prev) = comm[v][p0][p1][s2] {
                                terms.push((prev, -1.0));
                            }
                        }
                    }
                    model.add_le(format!("src_{v}_{p1}_{p2}_{s}"), terms, 0.0);
                }
            }
        }
    }

    // Work cost per superstep and processor.
    for s in 0..s_max {
        for q in 0..p {
            let mut terms = vec![(work_cost[s], 1.0)];
            for v in 0..n {
                terms.push((comp[v][q][s], -(dag.work(v) as f64)));
            }
            model.add_ge(format!("work_{q}_{s}"), terms, 0.0);
        }
    }

    // h-relation per superstep: send and receive of every processor.
    for s in 0..s_max {
        for q in 0..p {
            let mut send_terms = vec![(h_cost[s], 1.0)];
            let mut recv_terms = vec![(h_cost[s], 1.0)];
            for v in 0..n {
                for other in 0..p {
                    if other == q {
                        continue;
                    }
                    if let Some(var) = comm[v][q][other][s] {
                        let w = (dag.comm(v) * machine.lambda(q, other)) as f64;
                        send_terms.push((var, -w));
                    }
                    if let Some(var) = comm[v][other][q][s] {
                        let w = (dag.comm(v) * machine.lambda(other, q)) as f64;
                        recv_terms.push((var, -w));
                    }
                }
            }
            model.add_ge(format!("send_{q}_{s}"), send_terms, 0.0);
            model.add_ge(format!("recv_{q}_{s}"), recv_terms, 0.0);
        }
    }

    // Superstep usage: computation or communication in superstep s forces used[s];
    // usage is monotone (used supersteps form a prefix) to cut symmetry.
    let big = (dag.n() * machine.p()) as f64 + 1.0;
    for s in 0..s_max {
        let mut terms = vec![(used[s], big)];
        for v in 0..n {
            for q in 0..p {
                terms.push((comp[v][q][s], -1.0));
                for other in 0..p {
                    if let Some(var) = comm[v][q][other][s] {
                        terms.push((var, -1.0 / (dag.n() as f64 + 1.0)));
                    }
                }
            }
        }
        model.add_ge(format!("used_{s}"), terms, 0.0);
        if s + 1 < s_max {
            model.add_ge(
                format!("used_mono_{s}"),
                vec![(used[s], 1.0), (used[s + 1], -1.0)],
                0.0,
            );
        }
    }

    (model, FullVars { comp, comm, used })
}

/// Builds a warm-start vector for the full model from an existing schedule.
fn warm_start_vector(
    model: &Model,
    vars: &FullVars,
    dag: &Dag,
    machine: &Machine,
    s_max: usize,
    schedule: &BspSchedule,
) -> Option<Vec<f64>> {
    if schedule.num_supersteps() > s_max {
        return None;
    }
    let mut values = vec![0.0; model.num_vars()];
    for v in 0..dag.n() {
        values[vars.comp[v][schedule.proc(v)][schedule.superstep(v)].index()] = 1.0;
    }
    for cs in schedule.comm.steps() {
        let var = vars.comm[cs.node][cs.from][cs.to][cs.step]?;
        values[var.index()] = 1.0;
    }
    // Work/communication cost and usage variables: set them to values
    // consistent with the schedule (the model's variable layout is
    // [comp][comm][W][H][used], in that order).
    let breakdown = schedule.cost_breakdown(dag, machine);
    let n = dag.n();
    let p = machine.p();
    let comp_count = n * p * s_max;
    let comm_count = n * p * (p - 1) * s_max;
    let w_base = comp_count + comm_count;
    let h_base = w_base + s_max;
    for s in 0..s_max {
        let (w, h) = if s < breakdown.supersteps.len() {
            (
                breakdown.supersteps[s].work as f64,
                breakdown.supersteps[s].comm as f64,
            )
        } else {
            (0.0, 0.0)
        };
        values[w_base + s] = w;
        values[h_base + s] = h;
        values[vars.used[s].index()] = if s < schedule.num_supersteps() {
            1.0
        } else {
            0.0
        };
    }
    Some(values)
}

/// Extracts a BSP schedule from a solved model.
fn extract_schedule(
    vars: &FullVars,
    dag: &Dag,
    machine: &Machine,
    s_max: usize,
    values: &[f64],
) -> BspSchedule {
    let n = dag.n();
    let p = machine.p();
    let mut proc = vec![0usize; n];
    let mut superstep = vec![0usize; n];
    for v in 0..n {
        'search: for q in 0..p {
            for s in 0..s_max {
                if values[vars.comp[v][q][s].index()] > 0.5 {
                    proc[v] = q;
                    superstep[v] = s;
                    break 'search;
                }
            }
        }
    }
    let mut steps = Vec::new();
    for v in 0..n {
        for p1 in 0..p {
            for p2 in 0..p {
                if p1 == p2 {
                    continue;
                }
                for s in 0..s_max {
                    if let Some(var) = vars.comm[v][p1][p2][s] {
                        if values[var.index()] > 0.5 {
                            steps.push(CommStep {
                                node: v,
                                from: p1,
                                to: p2,
                                step: s,
                            });
                        }
                    }
                }
            }
        }
    }
    let mut sched = BspSchedule {
        assignment: Assignment { proc, superstep },
        comm: CommSchedule::from_steps(steps),
    };
    // Drop redundant communication the ILP may have left in (it never helps
    // the cost to keep it, but the extraction is simpler this way).
    if sched.validate(dag, machine).is_err() {
        sched.relax_to_lazy(dag);
    }
    sched.normalize(dag);
    sched
}

/// Attempts to solve the whole scheduling problem as a single ILP, warm-started
/// from `warm_start`.  Returns a schedule only if it is valid and at least as
/// good as the warm start (or if no warm start was given).
pub fn ilp_full_schedule(
    dag: &Dag,
    machine: &Machine,
    max_supersteps: usize,
    config: &IlpConfig,
    warm_start: Option<&BspSchedule>,
) -> Option<BspSchedule> {
    let s_max = max_supersteps
        .max(warm_start.map_or(1, |w| w.num_supersteps()))
        .max(1);
    if estimate_full_variables(dag, machine, s_max) > config.full_max_variables {
        return None;
    }
    let (model, vars) = build_model(dag, machine, s_max);
    let ws_vec = warm_start.and_then(|w| warm_start_vector(&model, &vars, dag, machine, s_max, w));
    let result = micro_ilp::solve_mip(&model, &config.mip_config(), ws_vec.as_deref());
    if !result.has_solution() {
        return None;
    }
    let sched = extract_schedule(&vars, dag, machine, s_max, &result.values);
    if sched.validate(dag, machine).is_err() {
        return None;
    }
    if let Some(ws) = warm_start {
        if sched.cost(dag, machine) > ws.cost(dag, machine) {
            return Some(ws.clone());
        }
    }
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::TrivialScheduler;
    use crate::Scheduler;

    #[test]
    fn variable_estimate_matches_formula() {
        let dag = Dag::from_edge_list_unit_weights(3, &[(0, 1), (1, 2)]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        assert_eq!(
            estimate_full_variables(&dag, &machine, 3),
            3 * 2 * 3 + 3 * 4 * 3 + 9
        );
    }

    #[test]
    fn warm_start_vector_is_feasible_for_the_model() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)], vec![2, 3, 4], vec![1, 1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 2);
        let ws = TrivialScheduler.schedule(&dag, &machine);
        let (model, vars) = build_model(&dag, &machine, 2);
        let vec = warm_start_vector(&model, &vars, &dag, &machine, 2, &ws).unwrap();
        assert!(model.is_feasible(&vec, 1e-6), "warm start not feasible");
        // Its model objective equals the schedule cost.
        assert!((model.objective_value(&vec) - ws.cost(&dag, &machine) as f64).abs() < 1e-6);
    }

    #[test]
    fn finds_the_obvious_parallel_schedule_for_independent_nodes() {
        // Two independent heavy nodes, two processors, no communication needed:
        // optimal cost is w + l = 10 + 1.
        let dag = Dag::from_edges(2, &[], vec![10, 10], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let config = IlpConfig {
            time_limit: std::time::Duration::from_secs(5),
            ..IlpConfig::fast()
        };
        let trivial = TrivialScheduler.schedule(&dag, &machine);
        let sched = ilp_full_schedule(&dag, &machine, 1, &config, Some(&trivial)).unwrap();
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(sched.cost(&dag, &machine), 11);
    }

    #[test]
    fn never_returns_something_worse_than_the_warm_start() {
        let dag = Dag::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![1, 5, 5, 1],
            vec![2, 2, 2, 2],
        )
        .unwrap();
        let machine = Machine::uniform(2, 2, 3);
        let ws = TrivialScheduler.schedule(&dag, &machine);
        let config = IlpConfig::fast();
        if let Some(sched) = ilp_full_schedule(&dag, &machine, 3, &config, Some(&ws)) {
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(sched.cost(&dag, &machine) <= ws.cost(&dag, &machine));
        }
    }

    #[test]
    fn refuses_oversized_instances() {
        let dag = Dag::from_edge_list_unit_weights(200, &[]).unwrap();
        let machine = Machine::uniform(8, 1, 1);
        assert!(ilp_full_schedule(&dag, &machine, 10, &IlpConfig::fast(), None).is_none());
    }
}
