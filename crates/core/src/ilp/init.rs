//! `ILPinit`: ILP-based construction of an initial schedule (§4.2 / A.4).
//!
//! Nodes are processed in topological order in batches whose size is chosen so
//! that the batch ILP stays within the configured variable budget (which, as
//! in the paper, scales with `P²`).  Each batch starts out as one superstep on
//! processor 0 and is then reorganized by the window ILP of
//! [`crate::ilp::partial`], with all earlier batches fixed.
//!
//! Deviation from the paper (documented in `DESIGN.md`): the original
//! `ILPinit` lets every batch spread over the next three supersteps; this
//! implementation gives each batch a single superstep and lets the subsequent
//! pipeline stages (`HC`, `ILPpart`) split or merge supersteps.  The batch
//! size rule and the role in the pipeline (only attempted for small `P`) are
//! unchanged.

use super::partial::improve_window;
use super::IlpConfig;
use crate::Scheduler;
use bsp_model::{Assignment, BspSchedule, Dag, Machine};

/// The `ILPinit` initialization scheduler.
#[derive(Debug, Clone, Default)]
pub struct IlpInitScheduler {
    pub config: IlpConfig,
}

impl IlpInitScheduler {
    /// Creates an `ILPinit` scheduler with the given ILP configuration.
    pub fn new(config: IlpConfig) -> Self {
        IlpInitScheduler { config }
    }

    /// Splits the nodes into topological batches within the variable budget.
    fn batches(&self, dag: &Dag, machine: &Machine) -> Vec<Vec<usize>> {
        let p2 = machine.p() * machine.p();
        let max_batch = (self.config.init_variable_budget / p2.max(1)).max(1);
        let order = dag
            .topological_order()
            .expect("Dag invariant: always acyclic");
        order
            .chunks(max_batch)
            .map(|chunk| chunk.to_vec())
            .collect()
    }
}

impl Scheduler for IlpInitScheduler {
    fn name(&self) -> &'static str {
        "ILPinit"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        let batches = self.batches(dag, machine);
        // Seed schedule: batch k lives in superstep k on processor 0.  This is
        // valid because batches follow a topological order.
        let mut proc = vec![0usize; dag.n()];
        let mut superstep = vec![0usize; dag.n()];
        for (k, batch) in batches.iter().enumerate() {
            for &v in batch {
                proc[v] = 0;
                superstep[v] = k;
            }
        }
        let mut sched = BspSchedule::from_assignment_lazy(dag, Assignment { proc, superstep });
        debug_assert!(sched.validate(dag, machine).is_ok());

        // Reorganize each batch with the window ILP, front to back.  Because
        // earlier improvements may merge supersteps, track the superstep of the
        // batch's first node rather than the original index.
        for batch in &batches {
            if self.config.cancel.is_cancelled() {
                break; // the seed schedule (plus whatever improved) is valid
            }
            let anchor = batch[0];
            let s = sched.superstep(anchor);
            improve_window(dag, machine, &mut sched, s, s, &self.config);
        }
        sched.normalize(dag);
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dag_gen::fine::{spmv, SpmvConfig};

    #[test]
    fn produces_valid_schedules() {
        let dag = spmv(&SpmvConfig {
            n: 8,
            density: 0.3,
            seed: 6,
        });
        let machine = Machine::uniform(2, 1, 3);
        let sched = IlpInitScheduler::new(IlpConfig::fast()).schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn distributes_independent_work_across_processors() {
        // Eight independent unit-work nodes: the per-batch ILP should spread
        // them instead of leaving everything on processor 0.
        let dag = Dag::from_edges(8, &[], vec![4; 8], vec![1; 8]).unwrap();
        let machine = Machine::uniform(4, 1, 1);
        let config = IlpConfig {
            time_limit: std::time::Duration::from_secs(5),
            ..IlpConfig::fast()
        };
        let sched = IlpInitScheduler::new(config).schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        let used: std::collections::HashSet<usize> =
            sched.assignment.proc.iter().copied().collect();
        assert!(used.len() >= 2, "ILPinit left everything on one processor");
    }

    #[test]
    fn batch_sizes_scale_with_processor_count() {
        let dag = spmv(&SpmvConfig {
            n: 12,
            density: 0.25,
            seed: 7,
        });
        let small = IlpInitScheduler::new(IlpConfig::fast());
        let few = small.batches(&dag, &Machine::uniform(2, 1, 1));
        let many = small.batches(&dag, &Machine::uniform(8, 1, 1));
        assert!(few.len() <= many.len());
        assert_eq!(few.iter().map(Vec::len).sum::<usize>(), dag.n());
        assert_eq!(many.iter().map(Vec::len).sum::<usize>(), dag.n());
    }

    #[test]
    fn handles_chains_without_panicking() {
        let dag = Dag::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            vec![1; 6],
            vec![2; 6],
        )
        .unwrap();
        let machine = Machine::uniform(4, 2, 2);
        let sched = IlpInitScheduler::new(IlpConfig::fast()).schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
    }
}
