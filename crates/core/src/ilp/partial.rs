//! `ILPpart`: iterative improvement of a schedule through partial ILPs over
//! windows of consecutive supersteps (§4.4 and Appendix A.4).
//!
//! The supersteps of the current schedule are split, from back to front, into
//! disjoint windows `[s1, s2]`; each window is grown until the estimated
//! variable count `|V0| · |S0| · P²` exceeds the configured budget.  The nodes
//! currently assigned to a window may be reassigned to any processor and any
//! superstep inside the window; everything outside the window stays fixed.
//! Values crossing the window boundary are handled as in the paper:
//!
//! * predecessors computed before the window are available on the processors
//!   that already hold them; sending them to additional processors is allowed
//!   through extra binaries charged to the communication phase right before
//!   the window;
//! * values needed after the window must be present on the target processor by
//!   the end of the window;
//! * unrelated transfers that merely pass through the window contribute
//!   constant send/receive load.
//!
//! The candidate reassignment is adopted only when the *full* recomputed
//! schedule cost improves, so `ILPpart` is monotone regardless of how coarse
//! the window objective is.

use super::IlpConfig;
use bsp_model::{BspSchedule, Dag, Machine};
use micro_ilp::{Model, VarId};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Splits the supersteps of `schedule` into windows (back to front) whose
/// estimated variable count stays within `budget`.
fn build_windows(
    dag: &Dag,
    machine: &Machine,
    schedule: &BspSchedule,
    budget: usize,
) -> Vec<(usize, usize)> {
    let num_steps = schedule.assignment.num_supersteps();
    if num_steps == 0 {
        return Vec::new();
    }
    let mut nodes_per_step = vec![0usize; num_steps];
    for v in 0..dag.n() {
        nodes_per_step[schedule.superstep(v)] += 1;
    }
    let p2 = machine.p() * machine.p();
    let mut windows = Vec::new();
    let mut s2 = num_steps as isize - 1;
    while s2 >= 0 {
        let mut s1 = s2;
        let mut nodes = nodes_per_step[s2 as usize];
        while s1 > 0 {
            let extra = nodes_per_step[(s1 - 1) as usize];
            let span = (s2 - s1 + 2) as usize;
            if (nodes + extra) * span * p2 > budget {
                break;
            }
            s1 -= 1;
            nodes += extra;
        }
        windows.push((s1 as usize, s2 as usize));
        s2 = s1 - 1;
    }
    windows
}

/// Tries to improve the nodes of the superstep window `[s1, s2]`; returns
/// `true` if `schedule` was replaced by a strictly better one.
pub fn improve_window(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    s1: usize,
    s2: usize,
    config: &IlpConfig,
) -> bool {
    let p = machine.p();
    let g = machine.g() as f64;
    let l = machine.latency() as f64;
    let window: Vec<usize> = (s1..=s2).collect();
    let v0: Vec<usize> = (0..dag.n())
        .filter(|&v| (s1..=s2).contains(&schedule.superstep(v)))
        .collect();
    if v0.is_empty() {
        return false;
    }
    let in_v0: HashSet<usize> = v0.iter().copied().collect();
    let index_of: HashMap<usize, usize> = v0.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Availability of outside predecessors: proc -> already holds the value.
    let mut available: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut outside_preds: HashSet<usize> = HashSet::new();
    for &v in &v0 {
        for &u in dag.predecessors(v) {
            if !in_v0.contains(&u) {
                outside_preds.insert(u);
            }
        }
    }
    for &u in &outside_preds {
        let mut set = HashSet::new();
        set.insert(schedule.proc(u));
        for cs in schedule.comm.steps() {
            if cs.node == u && cs.step < s1 {
                set.insert(cs.to);
            }
        }
        available.insert(u, set);
    }

    // Constant communication load per (superstep, processor) from transfers
    // whose source node is outside V0 and which still serve someone outside
    // the window (they stay where they are).
    let pre_phase = s1.checked_sub(1);
    let mut const_send = vec![vec![0u64; p]; s2 + 1];
    let mut const_recv = vec![vec![0u64; p]; s2 + 1];
    for cs in schedule.comm.steps() {
        if in_v0.contains(&cs.node) {
            continue;
        }
        let lo = pre_phase.unwrap_or(s1);
        if cs.step < lo || cs.step > s2 {
            continue;
        }
        let serves_outside = dag.successors(cs.node).iter().any(|&w| {
            !in_v0.contains(&w) && schedule.proc(w) == cs.to && schedule.superstep(w) > cs.step
        });
        if serves_outside {
            let w = dag.comm(cs.node) * machine.lambda(cs.from, cs.to);
            const_send[cs.step][cs.from] += w;
            const_recv[cs.step][cs.to] += w;
        }
    }

    // ---- Model construction ----------------------------------------------
    let mut model = Model::new();
    let comp: Vec<Vec<Vec<VarId>>> = v0
        .iter()
        .map(|&v| {
            (0..p)
                .map(|q| {
                    window
                        .iter()
                        .map(|&s| model.add_binary(format!("comp_{v}_{q}_{s}"), 0.0))
                        .collect()
                })
                .collect()
        })
        .collect();
    // Window communication variables for V0 values.
    let comm: Vec<Vec<Vec<Vec<Option<VarId>>>>> = v0
        .iter()
        .map(|&v| {
            (0..p)
                .map(|p1| {
                    (0..p)
                        .map(|p2| {
                            window
                                .iter()
                                .map(|&s| {
                                    if p1 == p2 {
                                        None
                                    } else {
                                        Some(
                                            model
                                                .add_binary(format!("comm_{v}_{p1}_{p2}_{s}"), 0.0),
                                        )
                                    }
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    // Pre-window transfers for outside predecessors: (pred, target proc) -> var.
    let mut commpre: HashMap<(usize, usize), VarId> = HashMap::new();
    if pre_phase.is_some() {
        for &u in &outside_preds {
            for q in 0..p {
                if !available[&u].contains(&q) {
                    commpre.insert((u, q), model.add_binary(format!("pre_{u}_{q}"), 0.0));
                }
            }
        }
    }
    let work_cost: Vec<VarId> = window
        .iter()
        .map(|&s| model.add_continuous(format!("W_{s}"), 0.0, f64::INFINITY, 1.0))
        .collect();
    // h-relation variables for the window phases and (if present) the phase
    // right before the window.
    let mut h_cost: HashMap<usize, VarId> = HashMap::new();
    for &s in &window {
        h_cost.insert(
            s,
            model.add_continuous(format!("H_{s}"), 0.0, f64::INFINITY, g),
        );
    }
    if let Some(pre) = pre_phase {
        h_cost.insert(
            pre,
            model.add_continuous(format!("H_{pre}"), 0.0, f64::INFINITY, g),
        );
    }
    let used: Vec<VarId> = window
        .iter()
        .map(|&s| model.add_binary(format!("used_{s}"), l))
        .collect();

    let widx = |s: usize| s - s1;

    // Each window node computed exactly once.
    for (i, &v) in v0.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = (0..p)
            .flat_map(|q| window.iter().map(move |&s| (q, s)))
            .map(|(q, s)| (comp[i][q][widx(s)], 1.0))
            .collect();
        model.add_eq(format!("once_{v}"), terms, 1.0);
    }

    // Precedence among window nodes.
    for (i, &v) in v0.iter().enumerate() {
        for &u in dag.predecessors(v) {
            let Some(&j) = index_of.get(&u) else { continue };
            for q in 0..p {
                for &s in &window {
                    let mut terms = vec![(comp[i][q][widx(s)], 1.0)];
                    for &s2x in window.iter().filter(|&&x| x <= s) {
                        terms.push((comp[j][q][widx(s2x)], -1.0));
                    }
                    for &s2x in window.iter().filter(|&&x| x < s) {
                        for p1 in 0..p {
                            if let Some(var) = comm[j][p1][q][widx(s2x)] {
                                terms.push((var, -1.0));
                            }
                        }
                    }
                    model.add_le(format!("prec_{u}_{v}_{q}_{s}"), terms, 0.0);
                }
            }
        }
    }

    // Precedence towards outside predecessors: v may sit on processor q only
    // if the value of u is already there or is brought there by a pre-window
    // transfer.
    for (i, &v) in v0.iter().enumerate() {
        for &u in dag.predecessors(v) {
            if in_v0.contains(&u) {
                continue;
            }
            for q in 0..p {
                if available[&u].contains(&q) {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> =
                    window.iter().map(|&s| (comp[i][q][widx(s)], 1.0)).collect();
                match commpre.get(&(u, q)) {
                    Some(&var) => {
                        terms.push((var, -1.0));
                        model.add_le(format!("ext_{u}_{v}_{q}"), terms, 0.0);
                    }
                    None => {
                        // No pre-phase exists (window starts at superstep 0):
                        // the placement is simply forbidden.
                        model.add_le(format!("ext_{u}_{v}_{q}"), terms, 0.0);
                    }
                }
            }
        }
    }

    // Window communication source availability.
    for (i, &v) in v0.iter().enumerate() {
        for p1 in 0..p {
            for p2 in 0..p {
                if p1 == p2 {
                    continue;
                }
                for &s in &window {
                    let var = comm[i][p1][p2][widx(s)].expect("off-diagonal");
                    let mut terms = vec![(var, 1.0)];
                    for &s2x in window.iter().filter(|&&x| x <= s) {
                        terms.push((comp[i][p1][widx(s2x)], -1.0));
                    }
                    for &s2x in window.iter().filter(|&&x| x < s) {
                        for p0 in 0..p {
                            if let Some(prev) = comm[i][p0][p1][widx(s2x)] {
                                terms.push((prev, -1.0));
                            }
                        }
                    }
                    model.add_le(format!("src_{v}_{p1}_{p2}_{s}"), terms, 0.0);
                }
            }
        }
    }

    // Values needed after the window must be present on the consumer's
    // processor by the end of the window.
    for (i, &v) in v0.iter().enumerate() {
        let mut targets: HashSet<usize> = HashSet::new();
        for &w in dag.successors(v) {
            if !in_v0.contains(&w) {
                targets.insert(schedule.proc(w));
            }
        }
        for q in targets {
            let mut terms: Vec<(VarId, f64)> =
                window.iter().map(|&s| (comp[i][q][widx(s)], 1.0)).collect();
            for &s in &window {
                for p1 in 0..p {
                    if let Some(var) = comm[i][p1][q][widx(s)] {
                        terms.push((var, 1.0));
                    }
                }
            }
            model.add_ge(format!("after_{v}_{q}"), terms, 1.0);
        }
    }

    // Work cost.
    for &s in &window {
        for q in 0..p {
            let mut terms = vec![(work_cost[widx(s)], 1.0)];
            for (i, &v) in v0.iter().enumerate() {
                terms.push((comp[i][q][widx(s)], -(dag.work(v) as f64)));
            }
            model.add_ge(format!("work_{q}_{s}"), terms, 0.0);
        }
    }

    // Communication cost (window phases).
    for &s in &window {
        for q in 0..p {
            let mut send_terms = vec![(h_cost[&s], 1.0)];
            let mut recv_terms = vec![(h_cost[&s], 1.0)];
            for (i, &v) in v0.iter().enumerate() {
                for other in 0..p {
                    if other == q {
                        continue;
                    }
                    if let Some(var) = comm[i][q][other][widx(s)] {
                        send_terms.push((var, -((dag.comm(v) * machine.lambda(q, other)) as f64)));
                    }
                    if let Some(var) = comm[i][other][q][widx(s)] {
                        recv_terms.push((var, -((dag.comm(v) * machine.lambda(other, q)) as f64)));
                    }
                }
            }
            model.add_ge(format!("send_{q}_{s}"), send_terms, const_send[s][q] as f64);
            model.add_ge(format!("recv_{q}_{s}"), recv_terms, const_recv[s][q] as f64);
        }
    }
    // Communication cost of the phase right before the window (pre-window
    // transfers plus its constant load).
    if let Some(pre) = pre_phase {
        for q in 0..p {
            let mut send_terms = vec![(h_cost[&pre], 1.0)];
            let mut recv_terms = vec![(h_cost[&pre], 1.0)];
            for (&(u, target), &var) in &commpre {
                let w = (dag.comm(u) * machine.lambda(schedule.proc(u), target)) as f64;
                if schedule.proc(u) == q {
                    send_terms.push((var, -w));
                }
                if target == q {
                    recv_terms.push((var, -w));
                }
            }
            // Constant load of the pre-phase: every existing transfer scheduled
            // there (none of them involve V0 reassignments' sources).
            let mut cs_send = 0u64;
            let mut cs_recv = 0u64;
            for cs in schedule.comm.steps() {
                if cs.step == pre && !in_v0.contains(&cs.node) {
                    let w = dag.comm(cs.node) * machine.lambda(cs.from, cs.to);
                    if cs.from == q {
                        cs_send += w;
                    }
                    if cs.to == q {
                        cs_recv += w;
                    }
                }
            }
            model.add_ge(format!("presend_{q}"), send_terms, cs_send as f64);
            model.add_ge(format!("prerecv_{q}"), recv_terms, cs_recv as f64);
        }
    }

    // Superstep usage (latency) within the window.
    let big = (v0.len() + 1) as f64;
    for &s in &window {
        let mut terms = vec![(used[widx(s)], big)];
        for (i, _) in v0.iter().enumerate() {
            for q in 0..p {
                terms.push((comp[i][q][widx(s)], -1.0));
            }
        }
        model.add_ge(format!("used_{s}"), terms, 0.0);
        // A superstep carrying constant communication load cannot be removed.
        if (0..p).any(|q| const_send[s][q] > 0 || const_recv[s][q] > 0) {
            model.add_ge(format!("used_forced_{s}"), vec![(used[widx(s)], 1.0)], 1.0);
        }
    }

    // ---- Warm start ---------------------------------------------------------
    let mut warm = vec![0.0; model.num_vars()];
    for (i, &v) in v0.iter().enumerate() {
        warm[comp[i][schedule.proc(v)][widx(schedule.superstep(v))].index()] = 1.0;
    }
    // Window transfers of V0 values: place each required transfer at the last
    // phase before its first (current) consumer, clamped into the window.
    for (i, &v) in v0.iter().enumerate() {
        let pv = schedule.proc(v);
        let mut needs: HashMap<usize, usize> = HashMap::new();
        for &w in dag.successors(v) {
            let q = schedule.proc(w);
            if q != pv {
                let due = if in_v0.contains(&w) {
                    schedule.superstep(w).saturating_sub(1)
                } else {
                    s2
                };
                needs
                    .entry(q)
                    .and_modify(|x| *x = (*x).min(due))
                    .or_insert(due);
            }
        }
        for (q, due) in needs {
            let phase = due.clamp(s1, s2);
            if let Some(var) = comm[i][pv][q][widx(phase)] {
                warm[var.index()] = 1.0;
            }
        }
    }
    // Pre-window transfers needed by the warm start.
    for &v in &v0 {
        for &u in dag.predecessors(v) {
            if in_v0.contains(&u) {
                continue;
            }
            let q = schedule.proc(v);
            if !available[&u].contains(&q) {
                if let Some(&var) = commpre.get(&(u, q)) {
                    warm[var.index()] = 1.0;
                }
            }
        }
    }
    // Derive consistent W / H / used values for the warm start by evaluating
    // the constraint left-hand sides.
    {
        let mut work_acc = vec![vec![0u64; p]; s2 + 1];
        for (i, &v) in v0.iter().enumerate() {
            let _ = i;
            work_acc[schedule.superstep(v)][schedule.proc(v)] += dag.work(v);
        }
        for &s in &window {
            warm[work_cost[widx(s)].index()] =
                work_acc[s].iter().copied().max().unwrap_or(0) as f64;
            warm[used[widx(s)].index()] = 1.0;
        }
        let lo = pre_phase.unwrap_or(s1);
        let mut send_acc = vec![vec![0f64; p]; s2 + 1];
        let mut recv_acc = vec![vec![0f64; p]; s2 + 1];
        for s in lo..=s2 {
            for q in 0..p {
                send_acc[s][q] = const_send.get(s).map_or(0, |r| r[q]) as f64;
                recv_acc[s][q] = const_recv.get(s).map_or(0, |r| r[q]) as f64;
            }
        }
        if let Some(pre) = pre_phase {
            for cs in schedule.comm.steps() {
                if cs.step == pre && !in_v0.contains(&cs.node) {
                    let w = (dag.comm(cs.node) * machine.lambda(cs.from, cs.to)) as f64;
                    send_acc[pre][cs.from] += w;
                    recv_acc[pre][cs.to] += w;
                }
            }
            for (&(u, target), &var) in &commpre {
                if warm[var.index()] > 0.5 {
                    let w = (dag.comm(u) * machine.lambda(schedule.proc(u), target)) as f64;
                    send_acc[pre][schedule.proc(u)] += w;
                    recv_acc[pre][target] += w;
                }
            }
        }
        for (i, &v) in v0.iter().enumerate() {
            for p1 in 0..p {
                for p2x in 0..p {
                    if p1 == p2x {
                        continue;
                    }
                    for &s in &window {
                        if let Some(var) = comm[i][p1][p2x][widx(s)] {
                            if warm[var.index()] > 0.5 {
                                let w = (dag.comm(v) * machine.lambda(p1, p2x)) as f64;
                                send_acc[s][p1] += w;
                                recv_acc[s][p2x] += w;
                            }
                        }
                    }
                }
            }
        }
        for (&s, &hvar) in &h_cost {
            let hmax = (0..p)
                .map(|q| send_acc[s][q].max(recv_acc[s][q]))
                .fold(0.0f64, f64::max);
            warm[hvar.index()] = hmax;
        }
    }
    let warm = if model.is_feasible(&warm, 1e-5) {
        Some(warm)
    } else {
        None
    };

    // A window is normally sized by `window_variable_budget`, but a single
    // superstep with many nodes can still exceed it; the dense simplex cannot
    // take such models, so skip the window rather than blow up memory.
    if model.num_vars()
        > config
            .full_max_variables
            .max(4 * config.window_variable_budget)
    {
        return false;
    }

    // ---- Solve and adopt if the real cost improves --------------------------
    let result = micro_ilp::solve_mip(&model, &config.mip_config(), warm.as_deref());
    if !result.has_solution() {
        return false;
    }
    let mut candidate = schedule.clone();
    for (i, &v) in v0.iter().enumerate() {
        'hunt: for q in 0..p {
            for &s in &window {
                if result.values[comp[i][q][widx(s)].index()] > 0.5 {
                    candidate.assignment.proc[v] = q;
                    candidate.assignment.superstep[v] = s;
                    break 'hunt;
                }
            }
        }
    }
    candidate.relax_to_lazy(dag);
    candidate.normalize(dag);
    if candidate.validate(dag, machine).is_err() {
        return false;
    }
    if candidate.cost(dag, machine) < schedule.cost(dag, machine) {
        *schedule = candidate;
        true
    } else {
        false
    }
}

/// Runs `ILPpart` over all windows of the current schedule (back to front).
/// Returns the number of windows whose reassignment was adopted.
pub fn ilp_part_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &IlpConfig,
    deadline: Option<Instant>,
) -> usize {
    let windows = build_windows(dag, machine, schedule, config.window_variable_budget);
    let mut improved = 0usize;
    for (s1, s2) in windows {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        if config.cancel.is_cancelled() {
            break;
        }
        // The schedule may have been normalized (fewer supersteps) by a
        // previous window; skip windows that fell off the end.
        let current_steps = schedule.assignment.num_supersteps();
        if s1 >= current_steps {
            continue;
        }
        let s2 = s2.min(current_steps - 1);
        if improve_window(dag, machine, schedule, s1, s2, config) {
            improved += 1;
        }
    }
    improved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SourceScheduler;
    use crate::Scheduler;
    use bsp_model::Assignment;
    use dag_gen::fine::{spmv, SpmvConfig};

    #[test]
    fn windows_cover_all_supersteps_without_overlap() {
        let dag = spmv(&SpmvConfig {
            n: 12,
            density: 0.25,
            seed: 2,
        });
        let machine = Machine::uniform(4, 1, 5);
        let sched = SourceScheduler.schedule(&dag, &machine);
        let windows = build_windows(&dag, &machine, &sched, 400);
        let mut covered = vec![false; sched.assignment.num_supersteps()];
        for (s1, s2) in &windows {
            for s in *s1..=*s2 {
                assert!(!covered[s], "superstep {s} covered twice");
                covered[s] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn partial_ilp_never_worsens_the_schedule() {
        let dag = spmv(&SpmvConfig {
            n: 10,
            density: 0.3,
            seed: 4,
        });
        let machine = Machine::uniform(2, 3, 5);
        let mut sched = SourceScheduler.schedule(&dag, &machine);
        let before = sched.cost(&dag, &machine);
        ilp_part_improve(&dag, &machine, &mut sched, &IlpConfig::fast(), None);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(sched.cost(&dag, &machine) <= before);
    }

    #[test]
    fn window_ilp_fixes_an_unbalanced_superstep() {
        // Two independent heavy nodes crammed onto one processor in one
        // superstep; the window ILP should spread them over both processors.
        let dag = Dag::from_edges(2, &[], vec![10, 10], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let assignment = Assignment {
            proc: vec![0, 0],
            superstep: vec![0, 0],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let improved = improve_window(
            &dag,
            &machine,
            &mut sched,
            0,
            0,
            &IlpConfig {
                time_limit: std::time::Duration::from_secs(5),
                ..IlpConfig::fast()
            },
        );
        assert!(improved);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(sched.cost(&dag, &machine), 10 + 1);
        assert_ne!(sched.proc(0), sched.proc(1));
    }

    #[test]
    fn respects_cross_window_dependencies() {
        // A chain spanning three supersteps across two processors; improving
        // the middle window must not break validity.
        let dag =
            Dag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], vec![2; 5], vec![3; 5]).unwrap();
        let machine = Machine::uniform(2, 2, 4);
        let assignment = Assignment {
            proc: vec![0, 1, 0, 1, 0],
            superstep: vec![0, 1, 2, 3, 4],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        improve_window(&dag, &machine, &mut sched, 1, 3, &IlpConfig::fast());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(sched.cost(&dag, &machine) <= before);
    }
}
