//! `ILPcs`: the communication-scheduling sub-problem as an ILP (§4.4).
//!
//! The assignment `(π, τ)` is fixed; each required transfer (the value of `v`
//! from `π(v)` to a processor `q` that uses it) gets one binary variable per
//! admissible communication phase, and the per-superstep `h`-relation costs
//! are minimized globally.  Because the degrees of freedom are small, this ILP
//! is applicable to much larger DAGs than `ILPfull`/`ILPpart`.

use super::IlpConfig;
use bsp_model::{BspSchedule, CommSchedule, CommStep, Dag, Machine};
use micro_ilp::{Model, VarId};

/// Optimizes the communication schedule of `schedule` with an ILP; keeps the
/// original schedule whenever the ILP does not find something strictly better.
/// Returns `true` if the schedule was improved.
pub fn ilp_cs_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &IlpConfig,
) -> bool {
    if config.cancel.is_cancelled() {
        return false;
    }
    let requirements = CommSchedule::requirements(dag, &schedule.assignment);
    if requirements.is_empty() {
        return false;
    }
    let num_steps = schedule.num_supersteps().max(1);
    let p = machine.p();
    let g = machine.g() as f64;

    // The dense-tableau simplex of `micro-ilp` needs O((vars + constraints)^2)
    // memory, so unlike CBC it cannot take the communication-scheduling ILP of
    // arbitrarily large instances.  Skip the ILP when the model would exceed
    // the same variable budget that gates `ILPfull`.
    let estimated_vars: usize = requirements
        .iter()
        .map(|r| r.latest_step() - r.earliest_step() + 1)
        .sum::<usize>()
        + num_steps;
    if estimated_vars > config.full_max_variables {
        return false;
    }

    let mut model = Model::new();
    // x[r][s - earliest] = transfer r happens in phase s.
    let mut choice: Vec<Vec<VarId>> = Vec::with_capacity(requirements.len());
    for (i, r) in requirements.iter().enumerate() {
        let vars: Vec<VarId> = (r.earliest_step()..=r.latest_step())
            .map(|s| model.add_binary(format!("x_{i}_{s}"), 0.0))
            .collect();
        model.add_eq(
            format!("place_{i}"),
            vars.iter().map(|&v| (v, 1.0)).collect(),
            1.0,
        );
        choice.push(vars);
    }
    let h: Vec<VarId> = (0..num_steps)
        .map(|s| model.add_continuous(format!("H_{s}"), 0.0, f64::INFINITY, g))
        .collect();
    for s in 0..num_steps {
        for q in 0..p {
            let mut send_terms = vec![(h[s], 1.0)];
            let mut recv_terms = vec![(h[s], 1.0)];
            for (i, r) in requirements.iter().enumerate() {
                if s < r.earliest_step() || s > r.latest_step() {
                    continue;
                }
                let var = choice[i][s - r.earliest_step()];
                let w = (dag.comm(r.node) * machine.lambda(r.source, r.target)) as f64;
                if r.source == q {
                    send_terms.push((var, -w));
                }
                if r.target == q {
                    recv_terms.push((var, -w));
                }
            }
            if send_terms.len() > 1 {
                model.add_ge(format!("send_{q}_{s}"), send_terms, 0.0);
            }
            if recv_terms.len() > 1 {
                model.add_ge(format!("recv_{q}_{s}"), recv_terms, 0.0);
            }
        }
    }

    // Warm start from the existing communication schedule (or its lazy default).
    let existing: std::collections::HashMap<(usize, usize, usize), usize> = schedule
        .comm
        .steps()
        .iter()
        .map(|cs| ((cs.node, cs.from, cs.to), cs.step))
        .collect();
    let mut warm = vec![0.0; model.num_vars()];
    for (i, r) in requirements.iter().enumerate() {
        let s = existing
            .get(&(r.node, r.source, r.target))
            .copied()
            .filter(|&s| s >= r.earliest_step() && s <= r.latest_step())
            .unwrap_or_else(|| r.latest_step());
        warm[choice[i][s - r.earliest_step()].index()] = 1.0;
    }
    // Per-superstep h-relation of the warm start.
    let mut send = vec![vec![0u64; p]; num_steps];
    let mut recv = vec![vec![0u64; p]; num_steps];
    for (i, r) in requirements.iter().enumerate() {
        let s = (0..choice[i].len())
            .find(|&k| warm[choice[i][k].index()] > 0.5)
            .map(|k| k + r.earliest_step())
            .expect("warm start places every transfer");
        let w = dag.comm(r.node) * machine.lambda(r.source, r.target);
        send[s][r.source] += w;
        recv[s][r.target] += w;
    }
    for s in 0..num_steps {
        let hmax = (0..p)
            .map(|q| send[s][q].max(recv[s][q]))
            .max()
            .unwrap_or(0);
        warm[h[s].index()] = hmax as f64;
    }

    let result = micro_ilp::solve_mip(&model, &config.mip_config(), Some(&warm));
    if !result.has_solution() {
        return false;
    }
    // Build the candidate communication schedule.
    let steps: Vec<CommStep> = requirements
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let k = (0..choice[i].len())
                .find(|&k| result.values[choice[i][k].index()] > 0.5)
                .unwrap_or(choice[i].len() - 1);
            CommStep {
                node: r.node,
                from: r.source,
                to: r.target,
                step: r.earliest_step() + k,
            }
        })
        .collect();
    let mut candidate = schedule.clone();
    candidate.comm = CommSchedule::from_steps(steps);
    if candidate.validate(dag, machine).is_err() {
        return false;
    }
    if candidate.cost(dag, machine) < schedule.cost(dag, machine) {
        *schedule = candidate;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::Assignment;

    #[test]
    fn overlaps_opposite_transfers_like_hccs_but_globally() {
        // Processor 0 sends the value of node 0 to processor 1 in phase 0;
        // processor 1 must send the value of node 1 to processor 0 before
        // superstep 2.  The lazy schedule uses phase 1 for the second transfer
        // and pays two h-relations; the ILP moves it into phase 0 where it
        // overlaps with the opposite-direction transfer.
        let dag = Dag::from_edges(4, &[(0, 2), (1, 3)], vec![1; 4], vec![10, 10, 1, 1]).unwrap();
        let machine = Machine::uniform(2, 2, 1);
        let assignment = Assignment {
            proc: vec![0, 1, 1, 0],
            superstep: vec![0, 0, 1, 2],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        let improved = ilp_cs_improve(&dag, &machine, &mut sched, &IlpConfig::fast());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(
            improved,
            "ILPcs should overlap the two transfers in phase 0"
        );
        assert!(sched.cost(&dag, &machine) < before);
        assert!(sched.comm.steps().iter().all(|s| s.step == 0));
    }

    #[test]
    fn no_communication_means_no_change() {
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let mut sched = BspSchedule::trivial(&dag);
        assert!(!ilp_cs_improve(
            &dag,
            &machine,
            &mut sched,
            &IlpConfig::fast()
        ));
    }

    #[test]
    fn never_worsens_the_schedule() {
        let dag = Dag::from_edges(4, &[(0, 2), (1, 3)], vec![1; 4], vec![5, 5, 1, 1]).unwrap();
        let machine = Machine::numa_binary_tree(4, 3, 2, 2);
        let assignment = Assignment {
            proc: vec![0, 1, 2, 3],
            superstep: vec![0, 0, 2, 2],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        ilp_cs_improve(&dag, &machine, &mut sched, &IlpConfig::fast());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(sched.cost(&dag, &machine) <= before);
    }
}
