//! # bsp-sched
//!
//! The scheduling algorithms of the paper *"Efficient Multi-Processor
//! Scheduling in Increasingly Realistic Models"* (SPAA 2024), all operating on
//! the BSP + NUMA model of the [`bsp_model`] crate:
//!
//! * [`baselines`] — `Cilk` work stealing, the `BL-EST` and `ETF` list
//!   schedulers, the `HDagg` wavefront scheduler, and the trivial
//!   single-processor schedule.
//! * [`cancel`] — the cooperative [`CancelToken`] polled by every anytime
//!   search loop (deadline-aware requests and graceful shutdown in
//!   `bsp_serve` are built on it).
//! * [`init`] — the `BSPg` and `Source` initialization heuristics.
//! * [`hill_climb`] — the `HC` (node moves) and `HCcs` (communication
//!   schedule) hill-climbing local searches.
//! * [`ilp`] — the `ILPfull`, `ILPpart`, `ILPcs` and `ILPinit` formulations,
//!   solved with the [`micro_ilp`] branch-&-bound solver.
//! * [`multilevel`] — the coarsen–solve–refine multilevel scheduler.
//! * [`pipeline`] — the combined framework of Figure 3 (and the multilevel
//!   variant of Figure 4).

pub mod baselines;
pub mod cancel;
pub mod hill_climb;
pub mod ilp;
pub mod init;
pub mod multilevel;
pub mod pipeline;

use bsp_model::{BspSchedule, Dag, Machine};

/// A scheduling algorithm: consumes a DAG and a machine description and
/// produces a valid BSP schedule.
pub trait Scheduler {
    /// Short name used in experiment tables (e.g. `"Cilk"`, `"HDagg"`).
    fn name(&self) -> &'static str;

    /// Computes a schedule.  Implementations must return a schedule that
    /// passes [`BspSchedule::validate`] for the given inputs.
    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule;
}

/// Convenience: runs a scheduler and returns `(cost, schedule)`.
pub fn evaluate(scheduler: &dyn Scheduler, dag: &Dag, machine: &Machine) -> (u64, BspSchedule) {
    let sched = scheduler.schedule(dag, machine);
    let cost = sched.cost(dag, machine);
    (cost, sched)
}

/// Resolves a thread-budget knob to a concrete count: `0` means one thread
/// per available core, anything else passes through.  The single definition
/// every budget layer shares ([`hill_climb::HillClimbConfig::threads`],
/// [`multilevel::MultilevelConfig::threads`],
/// [`pipeline::PipelineConfig::solve_threads`], and `bsp_serve`'s derived
/// per-worker budget), so a future cap — an env var, cgroup-aware counting —
/// lands everywhere at once.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Measured break-even of the batch-speculative parallel `HC` driver: below
/// this many lanes the batching overhead loses to the serial driver.  Since
/// commits reuse the speculative evaluation, deferrals park instead of
/// re-examining, and the driver adaptively falls back to the serial search on
/// narrow batches, single-lane overhead is ≤2x (BENCH_hc.json
/// `speedup_parallel`) and two lanes already pay — down from ~4 before.
pub const MIN_PARALLEL_LANES: usize = 2;

/// Clamps a *derived* thread share to what is actually worth parallelizing:
/// shares below [`MIN_PARALLEL_LANES`] fall back to `1` (serial), larger
/// shares pass through.  Budget-splitting layers (multilevel's per-ratio
/// share, the pipeline's per-branch share, the server's per-worker
/// derivation) apply this so auto budgets on small hosts never dispatch the
/// parallel driver below its break-even — a budget is a cap, so using fewer
/// threads is always legal.  Explicitly requested lane counts are honored
/// verbatim and bypass this.
pub fn parallel_budget(share: usize) -> usize {
    if share >= MIN_PARALLEL_LANES {
        share
    } else {
        1
    }
}

pub use baselines::{
    BlEstScheduler, CilkScheduler, EtfScheduler, HDaggScheduler, TrivialScheduler,
};
pub use cancel::CancelToken;
pub use hill_climb::{hc_improve, hccs_improve, HillClimbConfig};
pub use init::{BspgScheduler, SourceScheduler};
pub use multilevel::{MultilevelConfig, MultilevelScheduler};
pub use pipeline::{PhaseSample, Pipeline, PipelineConfig};
