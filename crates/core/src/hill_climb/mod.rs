//! Hill-climbing local search (§4.3 of the paper).
//!
//! * [`hc_improve`] — the `HC` search over node moves: a node is moved to a
//!   different processor in the same superstep, or to any processor in the
//!   previous/next superstep, whenever that lowers the total cost.  It works
//!   on *lazy* communication schedules and keeps incremental per-superstep
//!   work/send/receive tallies so a candidate move is evaluated without
//!   touching unaffected supersteps.
//! * [`hccs_improve`] — the `HCcs` search over the communication schedule `Γ`
//!   alone (`π`, `τ` fixed): each required transfer may happen in any
//!   communication phase between the superstep where the value is computed and
//!   the superstep before it is first needed.
//!
//! Both searches use the greedy first-improvement rule the paper selected
//! after its preliminary experiments, and stop at a local minimum or when the
//! time limit expires.

mod hccs;
mod state;

pub use hccs::hccs_improve;
pub use state::HcState;

use bsp_model::{BspSchedule, Dag, Machine};
use std::time::{Duration, Instant};

/// Configuration shared by the `HC` and `HCcs` local searches.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbConfig {
    /// Wall-clock limit for the search.
    pub time_limit: Duration,
    /// Upper bound on the number of accepted improvement steps
    /// (`usize::MAX` = unlimited); the multilevel refinement phases use this.
    pub max_steps: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            time_limit: Duration::from_secs(5),
            max_steps: usize::MAX,
        }
    }
}

impl HillClimbConfig {
    /// A configuration with the given time limit.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        HillClimbConfig {
            time_limit,
            ..Default::default()
        }
    }

    /// A configuration limited to `max_steps` accepted improvements.
    pub fn with_max_steps(max_steps: usize) -> Self {
        HillClimbConfig {
            max_steps,
            ..Default::default()
        }
    }
}

/// Statistics returned by a hill-climbing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HillClimbOutcome {
    /// Number of accepted improvement steps.
    pub steps: usize,
    /// Cost before the search.
    pub initial_cost: u64,
    /// Cost after the search.
    pub final_cost: u64,
    /// `true` if the search stopped because it reached a local minimum (rather
    /// than the time or step limit).
    pub reached_local_minimum: bool,
}

/// Improves `schedule` in place with the `HC` node-move hill climbing.
///
/// The schedule's communication part is replaced by the lazy schedule of its
/// assignment (HC is defined on lazy schedules, Appendix A); run
/// [`hccs_improve`] afterwards to optimize the communication schedule.
pub fn hc_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &HillClimbConfig,
) -> HillClimbOutcome {
    schedule.relax_to_lazy(dag);
    let start = Instant::now();
    let mut state = HcState::new(dag, machine, schedule.assignment.clone());
    let initial_cost = state.total_cost();
    let mut steps = 0usize;
    let mut reached_local_minimum = false;

    'outer: loop {
        let mut improved_this_pass = false;
        for v in 0..dag.n() {
            if steps >= config.max_steps || start.elapsed() > config.time_limit {
                break 'outer;
            }
            let (p_old, s_old) = (state.proc_of(v), state.step_of(v));
            let s_candidates = [s_old.wrapping_sub(1), s_old, s_old + 1];
            for &s_new in &s_candidates {
                if s_new == usize::MAX {
                    continue; // wrapped below superstep 0
                }
                let mut accepted = false;
                for p_new in 0..machine.p() {
                    if p_new == p_old && s_new == s_old {
                        continue;
                    }
                    if !state.move_is_valid(v, p_new, s_new) {
                        continue;
                    }
                    let delta = state.apply_move(v, p_new, s_new);
                    if delta < 0 {
                        steps += 1;
                        improved_this_pass = true;
                        accepted = true;
                        break;
                    }
                    // Revert (the inverse move restores the previous state).
                    state.apply_move(v, p_old, s_old);
                }
                if accepted {
                    break;
                }
            }
        }
        if !improved_this_pass {
            reached_local_minimum = true;
            break;
        }
    }

    schedule.assignment = state.into_assignment();
    schedule.relax_to_lazy(dag);
    schedule.normalize(dag);
    let final_cost = schedule.cost(dag, machine);
    HillClimbOutcome {
        steps,
        initial_cost,
        final_cost,
        reached_local_minimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::CilkScheduler;
    use crate::init::{BspgScheduler, SourceScheduler};
    use crate::Scheduler;
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    #[test]
    fn hc_never_increases_cost_and_keeps_validity() {
        let dag = spmv(&SpmvConfig { n: 16, density: 0.25, seed: 3 });
        let machine = Machine::uniform(4, 3, 5);
        for scheduler in [
            &BspgScheduler as &dyn Scheduler,
            &SourceScheduler as &dyn Scheduler,
        ] {
            let mut sched = scheduler.schedule(&dag, &machine);
            let before = sched.cost(&dag, &machine);
            let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(outcome.final_cost <= before);
            assert_eq!(outcome.final_cost, sched.cost(&dag, &machine));
        }
    }

    #[test]
    fn hc_improves_a_deliberately_bad_schedule() {
        // Spread a chain across processors: HC should pull it back together.
        let dag = Dag::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            vec![1; 6],
            vec![20; 6],
        )
        .unwrap();
        let machine = Machine::uniform(3, 2, 3);
        let assignment = bsp_model::Assignment {
            proc: vec![0, 1, 2, 0, 1, 2],
            superstep: vec![0, 1, 2, 3, 4, 5],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(
            outcome.final_cost < before,
            "expected improvement from {before}, got {}",
            outcome.final_cost
        );
        assert!(outcome.steps > 0);
    }

    #[test]
    fn hc_respects_the_step_limit() {
        let dag = cg(&IterConfig { n: 8, density: 0.3, iterations: 1, seed: 1 });
        let machine = Machine::uniform(4, 5, 5);
        let mut sched = CilkScheduler::default().schedule(&dag, &machine);
        let outcome = hc_improve(
            &dag,
            &machine,
            &mut sched,
            &HillClimbConfig::with_max_steps(1),
        );
        assert!(outcome.steps <= 1);
        assert!(sched.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn hc_reaches_a_local_minimum_on_small_instances() {
        let dag = spmv(&SpmvConfig { n: 8, density: 0.3, seed: 5 });
        let machine = Machine::uniform(2, 1, 2);
        let mut sched = BspgScheduler.schedule(&dag, &machine);
        let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(outcome.reached_local_minimum);
    }

    #[test]
    fn hc_works_under_numa_machines() {
        let dag = cg(&IterConfig { n: 6, density: 0.3, iterations: 1, seed: 2 });
        let machine = Machine::numa_binary_tree(8, 1, 5, 3);
        let mut sched = CilkScheduler::default().schedule(&dag, &machine);
        let before = sched.cost(&dag, &machine);
        let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost <= before);
    }
}
