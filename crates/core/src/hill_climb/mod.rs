//! Hill-climbing local search (§4.3 of the paper).
//!
//! * [`hc_improve`] — the `HC` search over node moves: a node is moved to a
//!   different processor in the same superstep, or to any processor in the
//!   previous/next superstep, whenever that lowers the total cost.  It works
//!   on *lazy* communication schedules and keeps incremental per-superstep
//!   work/send/receive tallies so a candidate move is evaluated without
//!   touching unaffected supersteps.
//! * [`hccs_improve`] — the `HCcs` search over the communication schedule `Γ`
//!   alone (`π`, `τ` fixed): each required transfer may happen in any
//!   communication phase between the superstep where the value is computed and
//!   the superstep before it is first needed.
//!
//! Both searches use the greedy first-improvement rule the paper selected
//! after its preliminary experiments, and stop at a local minimum or when the
//! time limit expires.
//!
//! [`hc_improve`] is the cold-start entry point over a [`Dag`];
//! [`hc_search`] is the underlying work-list driver over any
//! [`bsp_model::DagView`] and an existing [`HcState`], which the incremental
//! multilevel engine warm-starts with externally seeded queues.
//!
//! ## Work-list driving
//!
//! A naive driver rescans all `n` nodes every pass even when a pass changed
//! almost nothing, so the tail of the search — many passes, few accepted
//! moves — costs `O(n · P)` per pass.  Both searches here instead keep an
//! FM-style dirty work-list: after an accepted move only the entities whose
//! best move can actually have changed are re-enqueued (for `HC`: the moved
//! node, its DAG neighbours, and the nodes of every superstep whose tallies
//! the move touched; for `HCcs`: the transfers whose placement window covers
//! a touched communication phase).  Because the dirty-set rule is a sound
//! over-approximation *per move* but the body-cost `max` can hide
//! second-order interactions, a full verification sweep runs whenever the
//! work-list drains; the search only reports a local minimum when that sweep
//! accepts nothing.

mod hccs;
mod parallel;
mod state;

pub use hccs::hccs_improve;
pub use parallel::{ParallelHc, ParallelStats};
pub use state::{EvalScratch, HcCore, HcState, MoveWindow};

use bsp_model::{BspSchedule, Dag, DagView, Machine};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Configuration shared by the `HC` and `HCcs` local searches.
#[derive(Debug, Clone)]
pub struct HillClimbConfig {
    /// Wall-clock limit for the search.
    pub time_limit: Duration,
    /// Upper bound on the number of accepted improvement steps
    /// (`usize::MAX` = unlimited); the multilevel refinement phases use this.
    pub max_steps: usize,
    /// Cooperative cancellation, polled at the same cadence as the clock.
    /// Both searches are anytime, so a cancelled run still returns a valid
    /// schedule no worse than its input.  Inert by default.
    pub cancel: crate::cancel::CancelToken,
    /// Evaluation threads *inside* one search.  `1` (the default) runs the
    /// classical serial work-list driver; `> 1` runs the batch-speculative
    /// parallel driver ([`ParallelHc`]) with that many lanes; `0` means one
    /// lane per available core.  The parallel driver is deterministic for a
    /// fixed input regardless of the lane count.
    pub threads: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            time_limit: Duration::from_secs(5),
            max_steps: usize::MAX,
            cancel: crate::cancel::CancelToken::inert(),
            threads: 1,
        }
    }
}

impl HillClimbConfig {
    /// A configuration with the given time limit.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        HillClimbConfig {
            time_limit,
            ..Default::default()
        }
    }

    /// A configuration limited to `max_steps` accepted improvements.
    pub fn with_max_steps(max_steps: usize) -> Self {
        HillClimbConfig {
            max_steps,
            ..Default::default()
        }
    }

    /// Sets the intra-search thread count (see [`HillClimbConfig::threads`])
    /// and returns the configuration.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The concrete lane count `threads` resolves to: itself when explicit,
    /// or — for `0` (auto) — one lane per available core when the host
    /// clears the parallel driver's break-even ([`crate::MIN_PARALLEL_LANES`])
    /// and the serial driver otherwise.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            crate::parallel_budget(crate::resolve_threads(0))
        } else {
            self.threads
        }
    }
}

/// Statistics returned by a hill-climbing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HillClimbOutcome {
    /// Number of accepted improvement steps.
    pub steps: usize,
    /// Cost before the search.
    pub initial_cost: u64,
    /// Cost after the search.
    pub final_cost: u64,
    /// `true` if the search stopped because it reached a local minimum (rather
    /// than the time or step limit).
    pub reached_local_minimum: bool,
}

/// Atomic instrumentation counters for perf work, compiled in only with the
/// `hc-debug-counters` feature: node visits, pruning-gate passes, and
/// candidate-move evaluations of the `HC` driver.
#[cfg(feature = "hc-debug-counters")]
pub mod debug_counters {
    use std::sync::atomic::AtomicU64;
    pub static VISITS: AtomicU64 = AtomicU64::new(0);
    pub static GATE_PASS: AtomicU64 = AtomicU64::new(0);
    pub static EVALS: AtomicU64 = AtomicU64::new(0);
}

/// Reusable work-list buffers for [`hc_search`].  Owning these outside the
/// search is what lets the multilevel engine run one refinement phase per
/// uncontraction batch without re-allocating the queue each time.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
}

impl SearchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffers for graphs of `n` nodes, so later enqueues never
    /// reallocate (the multilevel engine calls this once up front to keep its
    /// refinement phases allocation-free).
    pub fn reserve(&mut self, n: usize) {
        if self.in_queue.len() < n {
            self.in_queue.resize(n, false);
        }
        self.queue.reserve(n.saturating_sub(self.queue.len()));
    }

    /// Enqueues node `v` for the next [`hc_search`] call (deduplicated).
    pub fn enqueue(&mut self, v: usize) {
        if self.in_queue.len() <= v {
            self.in_queue.resize(v + 1, false);
        }
        if !self.in_queue[v] {
            self.in_queue[v] = true;
            self.queue.push_back(v);
        }
    }

    /// Enqueues every active node of `graph`.
    pub fn enqueue_all<G: DagView>(&mut self, graph: &G) {
        let n = graph.n();
        if self.in_queue.len() < n {
            self.in_queue.resize(n, false);
        }
        self.queue.reserve(n);
        for v in 0..n {
            if graph.is_active(v) {
                self.enqueue(v);
            }
        }
    }

    /// Number of nodes currently enqueued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Tries the candidate moves of node `v` in the canonical order (superstep
/// `s−1`, `s`, `s+1`; processors ascending) and applies the first improving
/// one.  Returns `true` if a move was accepted.
fn try_improve_node<G: DagView>(graph: &G, state: &mut HcState<'_>, v: usize, p: usize) -> bool {
    #[cfg(feature = "hc-debug-counters")]
    debug_counters::VISITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if !state.node_can_gain(graph, v) {
        return false;
    }
    #[cfg(feature = "hc-debug-counters")]
    debug_counters::GATE_PASS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let (p_old, s_old) = (state.proc_of(v), state.step_of(v));
    let window = state.move_window(graph, v);
    let s_candidates = [s_old.wrapping_sub(1), s_old, s_old + 1];
    for &s_new in &s_candidates {
        if s_new == usize::MAX {
            continue; // wrapped below superstep 0
        }
        for p_new in 0..p {
            if p_new == p_old && s_new == s_old {
                continue;
            }
            if !window.allows(p_new, s_new) {
                continue;
            }
            #[cfg(feature = "hc-debug-counters")]
            debug_counters::EVALS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if state.try_move(graph, v, p_new, s_new) < 0 {
                state.apply_move(graph, v, p_new, s_new);
                return true;
            }
        }
    }
    false
}

/// Re-enqueues everything whose best move can have changed after an accepted
/// move of `v`: the node itself, its DAG neighbours, and every node of the
/// supersteps whose tallies the move touched.
fn enqueue_dirty<G: DagView>(
    state: &HcState<'_>,
    graph: &G,
    v: usize,
    queue: &mut VecDeque<usize>,
    in_queue: &mut [bool],
) {
    let push = |x: usize, queue: &mut VecDeque<usize>, in_queue: &mut [bool]| {
        if !in_queue[x] {
            in_queue[x] = true;
            queue.push_back(x);
        }
    };
    push(v, queue, in_queue);
    for &u in graph.predecessors(v) {
        push(u, queue, in_queue);
    }
    for &w in graph.successors(v) {
        push(w, queue, in_queue);
    }
    for &s in state.last_affected_steps() {
        for &x in state.nodes_in_superstep(s) {
            push(x, queue, in_queue);
        }
    }
}

/// Improves `schedule` in place with the `HC` node-move hill climbing.
///
/// The schedule's communication part is replaced by the lazy schedule of its
/// assignment (HC is defined on lazy schedules, Appendix A); run
/// [`hccs_improve`] afterwards to optimize the communication schedule.
///
/// # Panics
///
/// Panics if the schedule's assignment violates a precedence constraint (the
/// underlying [`HcState::new`] reports the offending edge); schedules produced
/// by the crate's schedulers are always feasible.
pub fn hc_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &HillClimbConfig,
) -> HillClimbOutcome {
    schedule.relax_to_lazy(dag);
    let mut state = HcState::new(dag, machine, schedule.assignment.clone())
        .expect("hc_improve requires a precedence-feasible assignment");
    let mut scratch = SearchScratch::new();
    scratch.enqueue_all(dag);
    let threads = config.effective_threads();
    let mut outcome = if threads > 1 {
        ParallelHc::new(threads).search(dag, machine, &mut state, config, &mut scratch, true)
    } else {
        hc_search(dag, machine, &mut state, config, &mut scratch, true)
    };
    schedule.assignment = state.into_assignment();
    schedule.relax_to_lazy(dag);
    schedule.normalize(dag);
    outcome.final_cost = schedule.cost(dag, machine);
    outcome
}

/// The work-list `HC` search itself, operating on an existing [`HcState`]
/// over any [`DagView`].  This is the warm-start entry point the incremental
/// multilevel engine drives: the caller seeds `scratch` with the nodes whose
/// best move may have changed (or [`SearchScratch::enqueue_all`] for a cold
/// start) and the search examines only those plus whatever accepted moves
/// dirty.
///
/// With `full_sweep` set, a drained work-list triggers verification sweeps
/// over all active nodes until one accepts nothing, which certifies the local
/// minimum; without it the search stops as soon as the work-list drains
/// (`reached_local_minimum` is then always `false`), keeping the phase cost
/// proportional to the local change — what bounded refinement phases want.
pub fn hc_search<G: DagView>(
    graph: &G,
    machine: &Machine,
    state: &mut HcState<'_>,
    config: &HillClimbConfig,
    scratch: &mut SearchScratch,
    full_sweep: bool,
) -> HillClimbOutcome {
    let start = Instant::now();
    let initial_cost = state.total_cost();
    let n = graph.n();
    let p = machine.p();
    if scratch.in_queue.len() < n {
        scratch.in_queue.resize(n, false);
    }
    let SearchScratch { queue, in_queue } = scratch;
    let mut steps = 0usize;
    let mut reached_local_minimum = false;

    // Reading the clock (or the cancel token) per visit would dominate gated
    // visits; poll both every 64th visit instead (the step limit stays exact).
    let mut visit = 0u32;
    let over_limit = |visit: &mut u32, steps: usize| {
        *visit = visit.wrapping_add(1);
        steps >= config.max_steps
            || (*visit & 63 == 0
                && (start.elapsed() > config.time_limit || config.cancel.is_cancelled()))
    };

    'outer: loop {
        while let Some(v) = queue.pop_front() {
            in_queue[v] = false;
            if over_limit(&mut visit, steps) {
                break 'outer;
            }
            if try_improve_node(graph, state, v, p) {
                steps += 1;
                enqueue_dirty(state, graph, v, queue, in_queue);
            }
        }
        if !full_sweep {
            break;
        }
        let mut sweep_improved = false;
        for v in 0..n {
            if !graph.is_active(v) {
                continue;
            }
            if over_limit(&mut visit, steps) {
                break 'outer;
            }
            if try_improve_node(graph, state, v, p) {
                steps += 1;
                sweep_improved = true;
                enqueue_dirty(state, graph, v, queue, in_queue);
            }
        }
        if !sweep_improved {
            reached_local_minimum = true;
            break;
        }
    }
    // Leave the scratch clean for the next phase: whatever is still marked
    // enqueued (after a limit-triggered early exit) is drained here.
    while let Some(v) = queue.pop_front() {
        in_queue[v] = false;
    }
    #[cfg(feature = "hc-debug-counters")]
    if std::env::var_os("HC_DEBUG_TIMING").is_some() {
        use std::sync::atomic::Ordering::Relaxed;
        eprintln!("[hc] search done at {:?}, steps {steps}", start.elapsed());
        eprintln!(
            "[hc] visits {} gate-pass {} evals {}",
            debug_counters::VISITS.swap(0, Relaxed),
            debug_counters::GATE_PASS.swap(0, Relaxed),
            debug_counters::EVALS.swap(0, Relaxed),
        );
    }
    HillClimbOutcome {
        steps,
        initial_cost,
        final_cost: state.total_cost(),
        reached_local_minimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::CilkScheduler;
    use crate::init::{BspgScheduler, SourceScheduler};
    use crate::Scheduler;
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    #[test]
    fn hc_never_increases_cost_and_keeps_validity() {
        let dag = spmv(&SpmvConfig {
            n: 16,
            density: 0.25,
            seed: 3,
        });
        let machine = Machine::uniform(4, 3, 5);
        for scheduler in [
            &BspgScheduler as &dyn Scheduler,
            &SourceScheduler as &dyn Scheduler,
        ] {
            let mut sched = scheduler.schedule(&dag, &machine);
            let before = sched.cost(&dag, &machine);
            let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(outcome.final_cost <= before);
            assert_eq!(outcome.final_cost, sched.cost(&dag, &machine));
        }
    }

    #[test]
    fn hc_improves_a_deliberately_bad_schedule() {
        // Spread a chain across processors: HC should pull it back together.
        let dag = Dag::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            vec![1; 6],
            vec![20; 6],
        )
        .unwrap();
        let machine = Machine::uniform(3, 2, 3);
        let assignment = bsp_model::Assignment {
            proc: vec![0, 1, 2, 0, 1, 2],
            superstep: vec![0, 1, 2, 3, 4, 5],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(
            outcome.final_cost < before,
            "expected improvement from {before}, got {}",
            outcome.final_cost
        );
        assert!(outcome.steps > 0);
    }

    #[test]
    fn hc_respects_the_step_limit() {
        let dag = cg(&IterConfig {
            n: 8,
            density: 0.3,
            iterations: 1,
            seed: 1,
        });
        let machine = Machine::uniform(4, 5, 5);
        let mut sched = CilkScheduler::default().schedule(&dag, &machine);
        let outcome = hc_improve(
            &dag,
            &machine,
            &mut sched,
            &HillClimbConfig::with_max_steps(1),
        );
        assert!(outcome.steps <= 1);
        assert!(sched.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn hc_reaches_a_local_minimum_on_small_instances() {
        let dag = spmv(&SpmvConfig {
            n: 8,
            density: 0.3,
            seed: 5,
        });
        let machine = Machine::uniform(2, 1, 2);
        let mut sched = BspgScheduler.schedule(&dag, &machine);
        let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(outcome.reached_local_minimum);
    }

    #[test]
    fn parallel_hc_is_valid_and_deterministic_across_lane_counts() {
        let dag = cg(&IterConfig {
            n: 14,
            density: 0.3,
            iterations: 2,
            seed: 7,
        });
        let machine = Machine::numa_binary_tree(8, 2, 5, 3);
        let init = SourceScheduler.schedule(&dag, &machine);
        let before = init.cost(&dag, &machine);

        let run = |threads: usize| {
            let mut sched = init.clone();
            let config = HillClimbConfig::default().with_threads(threads);
            let outcome = hc_improve(&dag, &machine, &mut sched, &config);
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(outcome.final_cost <= before);
            assert!(outcome.reached_local_minimum);
            (outcome, sched)
        };
        let (out2, sched2) = run(2);
        let (out4, sched4) = run(4);
        // Batch composition, evaluation, and commit order are all independent
        // of the lane count, so any two parallel runs agree move for move.
        assert_eq!(out2, out4);
        assert_eq!(sched2.assignment, sched4.assignment);

        // And the parallel local minimum is certified: the serial driver
        // cannot improve on it.
        let (_, mut sched_par) = run(2);
        let serial_after = hc_improve(&dag, &machine, &mut sched_par, &HillClimbConfig::default());
        assert_eq!(serial_after.steps, 0, "parallel minimum was not minimal");
    }

    #[test]
    fn parallel_hc_respects_the_step_limit() {
        let dag = cg(&IterConfig {
            n: 10,
            density: 0.3,
            iterations: 2,
            seed: 3,
        });
        let machine = Machine::uniform(4, 3, 5);
        let mut sched = CilkScheduler::default().schedule(&dag, &machine);
        let config = HillClimbConfig::with_max_steps(3).with_threads(4);
        let outcome = hc_improve(&dag, &machine, &mut sched, &config);
        assert!(outcome.steps <= 3);
        assert!(sched.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn parallel_hccs_is_valid_improving_and_certified() {
        let dag = cg(&IterConfig {
            n: 12,
            density: 0.3,
            iterations: 2,
            seed: 9,
        });
        let machine = Machine::numa_binary_tree(4, 2, 5, 3);
        let init = BspgScheduler.schedule(&dag, &machine);
        let mut parallel = init.clone();
        let parallel_out = hccs_improve(
            &dag,
            &machine,
            &mut parallel,
            &HillClimbConfig::default().with_threads(4),
        );
        assert!(parallel.validate(&dag, &machine).is_ok());
        assert!(parallel_out.final_cost <= parallel_out.initial_cost);
        // The certification is real: the serial driver finds nothing left.
        // (Serial and parallel certify minima of the same first-improvement
        // landscape but visit in different orders, so their *final costs*
        // may legitimately differ — only certification is comparable.)
        assert!(parallel_out.reached_local_minimum);
        let serial_after = hccs_improve(&dag, &machine, &mut parallel, &HillClimbConfig::default());
        assert_eq!(serial_after.steps, 0, "parallel minimum was not minimal");
    }

    #[test]
    fn hc_works_under_numa_machines() {
        let dag = cg(&IterConfig {
            n: 6,
            density: 0.3,
            iterations: 1,
            seed: 2,
        });
        let machine = Machine::numa_binary_tree(8, 1, 5, 3);
        let mut sched = CilkScheduler::default().schedule(&dag, &machine);
        let before = sched.cost(&dag, &machine);
        let outcome = hc_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost <= before);
    }
}
