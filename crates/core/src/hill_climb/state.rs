//! Incremental schedule state for the `HC` hill climbing.
//!
//! The paper (§4.3, Appendix A.3) stresses that recomputing the full cost for
//! every candidate move would be far too slow; instead the search keeps
//! per-superstep, per-processor work / send / receive tallies under the lazy
//! communication schedule and updates only the supersteps a move actually
//! touches.
//!
//! This implementation goes one step further than "incremental": evaluating a
//! candidate move performs **zero heap allocation**.  All intermediate results
//! live in scratch buffers reused across moves:
//!
//! * the "earliest superstep each processor needs a value" map is a pair of
//!   generation-stamped arrays (`need_step` / `need_mark`) instead of a fresh
//!   `vec![usize::MAX; P]` per call;
//! * old/new lazy-communication contributions go into reusable scratch vecs;
//! * the set of supersteps a move touches is deduplicated with a second
//!   generation stamp (`step_mark`) instead of sort+dedup on a fresh vec;
//! * per-superstep body costs (work + `g`·h-relation) are cached and patched
//!   incrementally, so a move's delta only recomputes the few touched rows of
//!   the flat `[superstep × processor]` tally matrices.
//!
//! ## The snapshot/scratch split
//!
//! The state is split in two so one solve can use every core:
//!
//! * [`HcCore`] is the **shared snapshot**: the assignment, the superstep
//!   membership lists, the flat tally matrices with their row-max caches, and
//!   the persistent per-node consumer-summary caches — everything candidate
//!   evaluation *reads*.
//! * [`EvalScratch`] is the **per-thread work area**: the generation-stamped
//!   need maps, the contribution gather buffers, and the touched-superstep
//!   dedup marks — everything evaluation *writes*.
//!
//! Read-only gain evaluation is therefore `&HcCore + &mut EvalScratch`
//! ([`HcCore::speculate_move`], [`HcCore::can_gain`]) and safe to run from
//! many threads at once against one snapshot, which is what the
//! batch-speculative parallel driver ([`crate::hill_climb::ParallelHc`])
//! does.  The classical mutating path ([`HcState::try_move`] /
//! [`HcState::apply_move`]) still exists: it patches the tallies and rolls
//! them back (or commits), and remains the serial driver's work-horse and the
//! parallel driver's commit/re-validation step.  Both paths compute the exact
//! same delta — a property test pins them against each other.
//!
//! [`HcState`] owns one core plus one scratch and exposes the classical
//! single-threaded API unchanged.
//!
//! ## Graph-per-call and warm starts
//!
//! The state does **not** borrow the graph: every graph-touching method takes
//! a [`DagView`] argument instead.  This is what lets the incremental
//! multilevel engine interleave quotient-graph mutations with refinement — it
//! owns a mutable `QuotientDag` and an `HcState`, and after each
//! uncontraction patches the state with [`HcState::pre_split`] /
//! [`HcState::post_split`] (an `O(deg)` delta: one node is split into two at
//! the same processor and superstep, and only the touched communication
//! tallies are rewritten) instead of rebuilding it from scratch.  Callers must
//! pass a view consistent with the assignment the state currently tracks;
//! views may contain inactive nodes, which the state skips entirely.

use bsp_model::{Assignment, DagView, Machine, ValidityError};

/// One lazy-communication contribution: the value of some node is sent
/// `from -> to` in the communication phase of `step`, with NUMA-weighted
/// volume `weight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Contribution {
    step: usize,
    from: usize,
    to: usize,
    weight: u64,
}

/// Which communication tally a patch applies to.
#[derive(Debug, Clone, Copy)]
enum Side {
    Send,
    Recv,
}

/// Summary of one node's consumers on a single processor: the earliest
/// consuming superstep, how many consumers attain it, and the next distinct
/// consuming superstep.  Unlike a materialized [`Contribution`] this keeps
/// enough information to answer "what if one consumer moved away / arrived?"
/// in `O(1)`, which is what lets candidate evaluation transform cached
/// summaries instead of rescanning successor lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConsumerSummary {
    /// The consuming processor (may equal the producer's processor).
    to: usize,
    /// Earliest superstep a consumer on `to` runs in.
    min_step: usize,
    /// Number of consumers on `to` running in `min_step`.
    min_cnt: u32,
    /// Second-smallest distinct consuming superstep (`usize::MAX` if none).
    runner_up: usize,
}

/// Precomputed feasibility window for all candidate moves of one node: the
/// binding predecessor/successor superstep and, when every binding neighbour
/// sits on one processor, that processor (which then also admits the equal
/// superstep).  [`MoveWindow::allows`] answers validity in `O(1)`, replacing
/// the `O(deg)` scan of [`HcCore::move_is_valid`] in the driver's inner loop
/// over `3 · P` candidate destinations.
#[derive(Debug, Clone, Copy)]
pub struct MoveWindow {
    /// Latest predecessor superstep, if any predecessor exists.
    pred_step: Option<usize>,
    /// The single processor hosting *all* latest predecessors, if unique.
    pred_proc: Option<usize>,
    /// Earliest successor superstep, if any successor exists.
    succ_step: Option<usize>,
    /// The single processor hosting *all* earliest successors, if unique.
    succ_proc: Option<usize>,
}

impl MoveWindow {
    /// `true` if moving the node to `(p_new, s_new)` keeps the lazy schedule
    /// valid.  Equivalent to [`HcCore::move_is_valid`].
    #[inline]
    pub fn allows(&self, p_new: usize, s_new: usize) -> bool {
        if let Some(ps) = self.pred_step {
            if s_new < ps || (s_new == ps && self.pred_proc != Some(p_new)) {
                return false;
            }
        }
        if let Some(ss) = self.succ_step {
            if s_new > ss || (s_new == ss && self.succ_proc != Some(p_new)) {
                return false;
            }
        }
        true
    }
}

/// Per-thread work area of candidate-move evaluation: generation-stamped need
/// maps, contribution gather buffers, touched-superstep dedup marks, and the
/// speculative per-row delta accumulators.  One instance per evaluating
/// thread; the shared [`HcCore`] is never written during read-only
/// evaluation.
///
/// Buffers grow on demand ([`EvalScratch::fit`]) and are reused across moves,
/// so steady-state evaluation performs zero heap allocation.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Earliest consuming superstep per processor for the value currently
    /// being summarized; valid iff `need_mark[q] == need_stamp`.
    need_step: Vec<usize>,
    /// Consumers attaining `need_step[q]`.
    need_cnt: Vec<u32>,
    /// Second-smallest distinct consuming superstep.
    need_second: Vec<usize>,
    need_mark: Vec<u64>,
    /// Processors touched by the current summary computation.
    need_touched: Vec<usize>,
    need_stamp: u64,
    /// Superstep membership in `affected`; valid iff `step_mark[s] == step_stamp`.
    step_mark: Vec<u64>,
    step_stamp: u64,
    contribs_old: Vec<Contribution>,
    contribs_new: Vec<Contribution>,
    /// Supersteps whose tallies the last evaluated move touched.
    affected: Vec<usize>,
    /// Cached row state of `affected` before the move (for O(1) rollback):
    /// `(body, work_max, work_max_cnt, hrel_max, hrel_max_cnt)`.
    affected_saved: Vec<(u64, u64, u32, u64, u32)>,
    /// Node whose `contribs_old` are currently cached.  The old contributions
    /// of node `v` (its own plus its predecessors') are identical across all
    /// `3 · P` candidate destinations the driver evaluates for `v`, so they
    /// are collected once per node visit; any committed move invalidates.
    prepared_node: Option<usize>,
    /// Old-step → new-step map scratch for [`HcState::compact_steps`].
    compact_map: Vec<usize>,
    /// Speculative per-processor deltas of the row currently being rescanned
    /// (read-only evaluation); valid iff `delta_mark[q] == delta_stamp`.
    delta_work: Vec<i64>,
    delta_send: Vec<i64>,
    delta_recv: Vec<i64>,
    delta_mark: Vec<u64>,
    delta_stamp: u64,
}

impl EvalScratch {
    /// An empty scratch; size it with [`EvalScratch::fit`] (or let the first
    /// evaluation do it) before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows every buffer to match `core`'s processor count and superstep
    /// capacity.  Idempotent and cheap once sized; evaluation calls it
    /// internally, so explicit calls are only an optimization to front-load
    /// the allocations.
    pub fn fit(&mut self, core: &HcCore<'_>) {
        self.fit_procs(core.machine.p());
        self.fit_steps(core.body.len() + 1);
        let bound = core.contrib_bound;
        if self.contribs_old.capacity() < bound {
            self.contribs_old.reserve(bound - self.contribs_old.len());
        }
        if self.contribs_new.capacity() < bound {
            self.contribs_new.reserve(bound - self.contribs_new.len());
        }
        let step_bound = (2 + 2 * bound).min(core.body.len() + 1);
        if self.affected.capacity() < step_bound {
            self.affected.reserve(step_bound);
        }
        if self.affected_saved.capacity() < step_bound {
            self.affected_saved.reserve(step_bound);
        }
    }

    fn fit_procs(&mut self, p: usize) {
        if self.need_mark.len() < p {
            self.need_step.resize(p, 0);
            self.need_cnt.resize(p, 0);
            self.need_second.resize(p, 0);
            self.need_mark.resize(p, 0);
            self.need_touched.reserve(p);
            self.delta_work.resize(p, 0);
            self.delta_send.resize(p, 0);
            self.delta_recv.resize(p, 0);
            self.delta_mark.resize(p, 0);
        }
    }

    fn fit_steps(&mut self, cap: usize) {
        if self.step_mark.len() < cap {
            self.step_mark.resize(cap, 0);
        }
    }

    /// Forgets the per-node gather cache.  The parallel driver calls this at
    /// the start of every batch: the scratch may hold contributions gathered
    /// against a previous snapshot.
    pub fn invalidate_prepared(&mut self) {
        self.prepared_node = None;
    }

    /// Superstep rows the most recent evaluation through this scratch read
    /// and re-aggregated (deduplicated, unordered).  The parallel driver
    /// records them per speculative winner: a commit whose recorded rows no
    /// earlier commit of the same round dirtied can reuse the speculative
    /// delta instead of re-evaluating.
    pub fn affected_steps(&self) -> &[usize] {
        &self.affected
    }
}

/// The shared snapshot of the incremental cost state: assignment, superstep
/// membership, flat tallies with row-max caches, cached body costs, and the
/// persistent per-node consumer-summary caches.
///
/// All *mutating* operations take an [`EvalScratch`] for their intermediate
/// buffers; all *read-only* evaluation ([`HcCore::speculate_move`],
/// [`HcCore::can_gain`]) takes `&self` plus a scratch, so any number of
/// threads can evaluate candidates against one core concurrently.
#[derive(Debug, Clone)]
pub struct HcCore<'a> {
    machine: &'a Machine,
    proc: Vec<usize>,
    step: Vec<usize>,
    /// Number of nodes per superstep (tracks the number of supersteps).
    nodes_in_step: Vec<usize>,
    /// The nodes of each superstep (membership lists for the work-list driver).
    step_nodes: Vec<Vec<usize>>,
    /// Position of node `v` inside `step_nodes[step[v]]`.
    bucket_pos: Vec<usize>,
    /// Flat `[superstep × processor]` work tallies, indexed `s * P + q`.
    work: Vec<u64>,
    /// Flat NUMA-weighted send tallies, indexed `s * P + q`.
    send: Vec<u64>,
    /// Flat NUMA-weighted receive tallies, indexed `s * P + q`.
    recv: Vec<u64>,
    /// Fused `max(send, recv)` per cell, so body recomputation scans two rows
    /// instead of three.
    hrel: Vec<u64>,
    /// Cached row maximum of `work` per superstep, with the number of cells
    /// attaining it.  A cell update adjusts the maximum in `O(1)`; only when
    /// the last maximal cell decreases is the row rescanned.
    work_max: Vec<u64>,
    work_max_cnt: Vec<u32>,
    /// Cached row maximum of `hrel` per superstep (same scheme).
    hrel_max: Vec<u64>,
    hrel_max_cnt: Vec<u32>,
    /// Cached body cost (max work + `g`·max h-relation) per superstep.
    body: Vec<u64>,
    /// Running sum of `body` (steps past `num_steps` are always zero).
    body_sum: u64,
    num_steps: usize,
    /// Persistent per-node consumer-summary cache (one entry per processor
    /// with at least one consumer, including the producer's own).  Node `u`'s
    /// entry depends only on `u`'s successors' positions, so a committed move
    /// of `v` invalidates exactly `v` and `v`'s predecessors; everything else
    /// survives across visits, which is what makes the verification sweep
    /// cheap on mostly-converged schedules.
    contrib_cache: Vec<Vec<ConsumerSummary>>,
    contrib_valid: Vec<bool>,
    /// Worst-case contribution gather size, `(max_in_deg + 1) · P`; scratch
    /// buffers are pre-reserved to it.
    contrib_bound: usize,
    /// Node whose contributions [`HcCore::pre_split`] removed; the matching
    /// [`HcCore::post_split`] must follow before any other operation.
    split_pending: Option<usize>,
}

/// Maintains a cached row maximum (`max`, with `cnt` cells attaining it)
/// under the single-cell change `old -> new`.  `O(1)` except when the last
/// maximal cell decreases, which rescans the row.
#[inline(always)]
fn bump_row_max(max: &mut u64, cnt: &mut u32, row: &[u64], old: u64, new: u64) {
    if new == old {
        return;
    }
    if new > *max {
        *max = new;
        *cnt = 1;
        return;
    }
    if new == *max {
        *cnt += 1;
    }
    if old == *max {
        *cnt -= 1;
        if *cnt == 0 {
            let mut m = 0u64;
            let mut c = 0u32;
            for &x in row {
                if x > m {
                    m = x;
                    c = 1;
                } else if x == m {
                    c += 1;
                }
            }
            *max = m;
            *cnt = c;
        }
    }
}

/// Collects the consumer summaries of node `u` — per processor hosting at
/// least one successor of `u`: the earliest consuming superstep, the number
/// of consumers attaining it, and the runner-up superstep.
///
/// A free function over disjoint field borrows so callers can stream into the
/// scratch's own vec without fighting the borrow checker.
#[allow(clippy::too_many_arguments)]
fn collect_summaries<G: DagView>(
    graph: &G,
    proc: &[usize],
    step: &[usize],
    need_step: &mut [usize],
    need_cnt: &mut [u32],
    need_second: &mut [usize],
    need_mark: &mut [u64],
    need_touched: &mut Vec<usize>,
    stamp: u64,
    u: usize,
    out: &mut Vec<ConsumerSummary>,
) {
    need_touched.clear();
    for &w in graph.successors(u) {
        let q = proc[w];
        let s = step[w];
        if need_mark[q] != stamp {
            need_mark[q] = stamp;
            need_step[q] = s;
            need_cnt[q] = 1;
            need_second[q] = usize::MAX;
            need_touched.push(q);
        } else if s < need_step[q] {
            need_second[q] = need_step[q];
            need_step[q] = s;
            need_cnt[q] = 1;
        } else if s == need_step[q] {
            need_cnt[q] += 1;
        } else if s < need_second[q] && s != need_step[q] {
            need_second[q] = s;
        }
    }
    out.clear();
    for &q in need_touched.iter() {
        out.push(ConsumerSummary {
            to: q,
            min_step: need_step[q],
            min_cnt: need_cnt[q],
            runner_up: need_second[q],
        });
    }
}

/// Materializes the lazy contributions of a value produced on `pu` with
/// communication weight `cu`, given its consumer summaries: one transfer per
/// consuming processor other than `pu`, in the phase right before the
/// earliest consuming superstep.
fn push_contributions(
    machine: &Machine,
    pu: usize,
    cu: u64,
    summaries: &[ConsumerSummary],
    out: &mut Vec<Contribution>,
) {
    for sm in summaries {
        if sm.to == pu {
            continue;
        }
        debug_assert!(
            sm.min_step > 0,
            "a cross-processor consumer sits in superstep 0; the lazy schedule \
             cannot deliver the value in time"
        );
        out.push(Contribution {
            step: sm.min_step - 1,
            from: pu,
            to: sm.to,
            weight: cu * machine.lambda(pu, sm.to),
        });
    }
}

impl<'a> HcCore<'a> {
    /// Builds the shared core from an assignment, using `scratch` for the
    /// initial tally construction.  See [`HcState::new`] for the feasibility
    /// contract.
    pub fn new<G: DagView>(
        graph: &G,
        machine: &'a Machine,
        assignment: Assignment,
        scratch: &mut EvalScratch,
    ) -> Result<Self, ValidityError> {
        let n = graph.n();
        let p = machine.p();
        if assignment.proc.len() != n {
            return Err(ValidityError::AssignmentLengthMismatch {
                expected: n,
                got: assignment.proc.len(),
            });
        }
        if assignment.superstep.len() != n {
            return Err(ValidityError::AssignmentLengthMismatch {
                expected: n,
                got: assignment.superstep.len(),
            });
        }
        for (v, &q) in assignment.proc.iter().enumerate() {
            if q >= p && graph.is_active(v) {
                return Err(ValidityError::ProcessorOutOfRange {
                    node: v,
                    proc: q,
                    p,
                });
            }
        }
        for u in 0..n {
            if !graph.is_active(u) {
                continue;
            }
            for &w in graph.successors(u) {
                if assignment.proc[u] == assignment.proc[w] {
                    if assignment.superstep[u] > assignment.superstep[w] {
                        return Err(ValidityError::PrecedenceSameProcessor { pred: u, node: w });
                    }
                } else if assignment.superstep[u] >= assignment.superstep[w] {
                    return Err(ValidityError::MissingCommunication { pred: u, node: w });
                }
            }
        }

        let num_steps = assignment.num_supersteps();
        // One spare superstep so the common "move to s+1" candidate at the
        // schedule frontier does not have to grow the arrays.
        let capacity = num_steps.max(1) + 1;
        let mut max_in = 0usize;
        for v in 0..n {
            if graph.is_active(v) {
                max_in = max_in.max(graph.predecessors(v).len());
            }
        }
        let contrib_bound = (max_in + 1) * p;
        let mut core = HcCore {
            machine,
            proc: assignment.proc,
            step: assignment.superstep,
            nodes_in_step: vec![0; capacity],
            step_nodes: vec![Vec::new(); capacity],
            bucket_pos: vec![0; n],
            work: vec![0; capacity * p],
            send: vec![0; capacity * p],
            recv: vec![0; capacity * p],
            hrel: vec![0; capacity * p],
            work_max: vec![0; capacity],
            work_max_cnt: vec![p as u32; capacity],
            hrel_max: vec![0; capacity],
            hrel_max_cnt: vec![p as u32; capacity],
            body: vec![0; capacity],
            body_sum: 0,
            num_steps,
            // Reserved to `p` entries so warm-start splits that activate a
            // node never have to grow its summary cache.
            contrib_cache: (0..n).map(|_| Vec::with_capacity(p)).collect(),
            contrib_valid: vec![false; n],
            contrib_bound,
            split_pending: None,
        };
        scratch.fit(&core);
        core.rebuild_tallies(scratch, graph);
        // Headroom so the first splits/moves into a bucket don't reallocate.
        for bucket in &mut core.step_nodes {
            bucket.reserve(bucket.len() + 8);
        }
        Ok(core)
    }

    /// Rebuilds every derived tally — superstep buckets, work and
    /// communication matrices, row-max caches, body costs — from the current
    /// `proc`/`step` arrays, reusing the existing buffers.  `O(n + m +
    /// steps · P)`; performs no heap allocation once the buffers are warm.
    fn rebuild_tallies<G: DagView>(&mut self, scratch: &mut EvalScratch, graph: &G) {
        let p = self.machine.p();
        let n = graph.n();
        let capacity = self.body.len();
        for s in 0..capacity {
            self.nodes_in_step[s] = 0;
            self.step_nodes[s].clear();
        }
        self.work.fill(0);
        self.send.fill(0);
        self.recv.fill(0);
        self.hrel.fill(0);
        let mut num_steps = 0usize;
        for v in 0..n {
            if !graph.is_active(v) {
                continue;
            }
            let s = self.step[v];
            self.nodes_in_step[s] += 1;
            self.bucket_pos[v] = self.step_nodes[s].len();
            self.step_nodes[s].push(v);
            self.work[s * p + self.proc[v]] += graph.work(v);
            num_steps = num_steps.max(s + 1);
        }
        self.num_steps = num_steps;
        scratch.prepared_node = None;
        let mut materialized = std::mem::take(&mut scratch.contribs_new);
        for u in 0..n {
            if !graph.is_active(u) {
                continue;
            }
            self.refresh_summaries(scratch, graph, u);
            materialized.clear();
            push_contributions(
                self.machine,
                self.proc[u],
                graph.comm(u),
                &self.contrib_cache[u],
                &mut materialized,
            );
            for &c in &materialized {
                let from = c.step * p + c.from;
                let to = c.step * p + c.to;
                self.send[from] += c.weight;
                self.recv[to] += c.weight;
                self.hrel[from] = self.send[from].max(self.recv[from]);
                self.hrel[to] = self.send[to].max(self.recv[to]);
            }
        }
        scratch.contribs_new = materialized;
        self.body_sum = 0;
        let g = self.machine.g();
        for s in 0..capacity {
            let row = s * p;
            let (mut wm, mut wc) = (0u64, 0u32);
            for &x in &self.work[row..row + p] {
                if x > wm {
                    wm = x;
                    wc = 1;
                } else if x == wm {
                    wc += 1;
                }
            }
            let (mut hm, mut hc) = (0u64, 0u32);
            for &x in &self.hrel[row..row + p] {
                if x > hm {
                    hm = x;
                    hc = 1;
                } else if x == hm {
                    hc += 1;
                }
            }
            self.work_max[s] = wm;
            self.work_max_cnt[s] = wc;
            self.hrel_max[s] = hm;
            self.hrel_max_cnt[s] = hc;
            let cost = wm + g * hm;
            self.body[s] = cost;
            self.body_sum += cost;
        }
    }

    /// Removes supersteps without any computation and renumbers the remaining
    /// ones contiguously — see [`HcState::compact_steps`].
    pub fn compact_steps<G: DagView>(&mut self, scratch: &mut EvalScratch, graph: &G) -> usize {
        debug_assert!(self.split_pending.is_none());
        let total = self.num_steps;
        if scratch.compact_map.len() < total {
            scratch.compact_map.resize(total, 0);
        }
        let mut next = 0usize;
        for s in 0..total {
            scratch.compact_map[s] = next;
            if self.nodes_in_step[s] > 0 {
                next += 1;
            }
        }
        let removed = total - next;
        if removed == 0 {
            return 0;
        }
        for v in 0..graph.n() {
            if graph.is_active(v) {
                self.step[v] = scratch.compact_map[self.step[v]];
            }
        }
        // Every consumer superstep moved, so every cached summary is stale.
        self.contrib_valid.fill(false);
        self.rebuild_tallies(scratch, graph);
        removed
    }

    /// Current processor of a node.
    #[inline]
    pub fn proc_of(&self, v: usize) -> usize {
        self.proc[v]
    }

    /// Current superstep of a node.
    #[inline]
    pub fn step_of(&self, v: usize) -> usize {
        self.step[v]
    }

    /// Current number of supersteps.
    #[inline]
    pub fn num_supersteps(&self) -> usize {
        self.num_steps
    }

    /// The machine the state is costed against.
    #[inline]
    pub fn machine(&self) -> &'a Machine {
        self.machine
    }

    /// The nodes currently assigned to superstep `s` (in no particular order).
    pub fn nodes_in_superstep(&self, s: usize) -> &[usize] {
        self.step_nodes.get(s).map_or(&[], Vec::as_slice)
    }

    /// A snapshot of the current assignment.
    pub fn assignment(&self) -> Assignment {
        Assignment {
            proc: self.proc.clone(),
            superstep: self.step.clone(),
        }
    }

    /// Total schedule cost under the lazy communication schedule.  `O(1)`.
    pub fn total_cost(&self) -> u64 {
        self.body_sum + self.machine.latency() * self.num_steps as u64
    }

    /// Rebuilds node `u`'s cached consumer summaries if a committed move
    /// invalidated them.
    fn refresh_summaries<G: DagView>(&mut self, scratch: &mut EvalScratch, graph: &G, u: usize) {
        if self.contrib_valid[u] {
            return;
        }
        scratch.fit_procs(self.machine.p());
        let mut entry = std::mem::take(&mut self.contrib_cache[u]);
        scratch.need_stamp += 1;
        collect_summaries(
            graph,
            &self.proc,
            &self.step,
            &mut scratch.need_step,
            &mut scratch.need_cnt,
            &mut scratch.need_second,
            &mut scratch.need_mark,
            &mut scratch.need_touched,
            scratch.need_stamp,
            u,
            &mut entry,
        );
        self.contrib_cache[u] = entry;
        self.contrib_valid[u] = true;
    }

    /// Refreshes the consumer-summary caches of `v` and its predecessors —
    /// everything the read-only evaluation of `v`'s candidate moves reads.
    /// The parallel driver calls this serially for each batch member before
    /// fanning evaluation out, so the concurrent phase never has to write the
    /// shared cache.
    pub fn warm_summaries<G: DagView>(&mut self, scratch: &mut EvalScratch, graph: &G, v: usize) {
        self.refresh_summaries(scratch, graph, v);
        for &u in graph.predecessors(v) {
            self.refresh_summaries(scratch, graph, u);
        }
    }

    /// `true` while the consumer-summary caches of `v` and all its
    /// predecessors are still valid — i.e. no move committed since `v`'s
    /// [`HcCore::warm_summaries`] has invalidated anything `v`'s candidate
    /// evaluation gathered.  The parallel driver's commit-reuse freshness
    /// check needs this *in addition to* its row-dirty check: a commit
    /// elsewhere can change a shared predecessor's summary counts (who else
    /// attains the minimum receive step) without changing any tally row.
    pub fn summaries_current<G: DagView>(&self, graph: &G, v: usize) -> bool {
        self.contrib_valid[v] && graph.predecessors(v).iter().all(|&u| self.contrib_valid[u])
    }

    /// Gathers into `scratch.contribs_old` the lazy contributions of `v` and
    /// its predecessors under the current assignment (from the per-node
    /// caches — no successor-list scan for clean nodes).  The result is
    /// identical for every candidate destination of `v`, so the driver's
    /// `3 · P` evaluations of one node gather it only once.
    ///
    /// Requires the summary caches of `v` and its predecessors to be valid
    /// ([`HcCore::warm_summaries`]).
    fn prepare_node<G: DagView>(&self, scratch: &mut EvalScratch, graph: &G, v: usize) {
        if scratch.prepared_node == Some(v) {
            return;
        }
        debug_assert!(self.contrib_valid[v], "summary cache of {v} is stale");
        let mut gathered = std::mem::take(&mut scratch.contribs_old);
        gathered.clear();
        push_contributions(
            self.machine,
            self.proc[v],
            graph.comm(v),
            &self.contrib_cache[v],
            &mut gathered,
        );
        for &u in graph.predecessors(v) {
            debug_assert!(self.contrib_valid[u], "summary cache of {u} is stale");
            push_contributions(
                self.machine,
                self.proc[u],
                graph.comm(u),
                &self.contrib_cache[u],
                &mut gathered,
            );
        }
        scratch.contribs_old = gathered;
        scratch.prepared_node = Some(v);
    }

    /// Fills `scratch.contribs_old` / `scratch.contribs_new` with the lazy
    /// contributions removed and added by moving `v` to `(p_new, s_new)`.
    /// Pure with respect to the core; shared by the mutating
    /// [`HcCore::eval_move`] and the read-only [`HcCore::speculate_move`], so
    /// the two paths cannot drift apart on the communication model.
    fn gather_move_contribs<G: DagView>(
        &self,
        scratch: &mut EvalScratch,
        graph: &G,
        v: usize,
        p_new: usize,
        s_new: usize,
    ) {
        let p_old = self.proc[v];
        let s_old = self.step[v];

        // Values whose lazy communication steps can change: v and its
        // predecessors.  Old contributions under the current assignment
        // (cached across the candidate destinations of `v`):
        self.prepare_node(scratch, graph, v);

        // New contributions, derived from the cached consumer summaries in
        // `O(1)` per summary — no successor list is scanned per candidate.
        //
        // * v's consumers do not move, so v's new contributions are its
        //   summaries re-anchored at sender `p_new`.
        // * A predecessor u's summaries change only on the processors v
        //   leaves (`p_old`) and joins (`p_new`): exclude v via
        //   (`min_cnt`, `runner_up`), include v at `s_new`.
        let machine = self.machine;
        let mut new_out = std::mem::take(&mut scratch.contribs_new);
        new_out.clear();
        {
            let cv = graph.comm(v);
            for sm in &self.contrib_cache[v] {
                if sm.to == p_new {
                    continue;
                }
                debug_assert!(sm.min_step > 0, "consumer of a moved value in superstep 0");
                new_out.push(Contribution {
                    step: sm.min_step - 1,
                    from: p_new,
                    to: sm.to,
                    weight: cv * machine.lambda(p_new, sm.to),
                });
            }
        }
        for &u in graph.predecessors(v) {
            let pu = self.proc[u];
            let cu = graph.comm(u);
            let mut saw_p_new = false;
            for sm in &self.contrib_cache[u] {
                if sm.to == p_new {
                    saw_p_new = true;
                }
                if sm.to == pu {
                    continue;
                }
                let mut eff = sm.min_step;
                if sm.to == p_old && sm.min_step == s_old {
                    // v attains the minimum here; excluding it leaves either
                    // the tied consumers or the runner-up step.
                    eff = if sm.min_cnt > 1 {
                        sm.min_step
                    } else {
                        sm.runner_up
                    };
                }
                if sm.to == p_new {
                    eff = eff.min(s_new);
                }
                if eff == usize::MAX {
                    continue; // v was the only consumer on this processor
                }
                debug_assert!(eff > 0, "consumer in superstep 0 after a move");
                new_out.push(Contribution {
                    step: eff - 1,
                    from: pu,
                    to: sm.to,
                    weight: cu * machine.lambda(pu, sm.to),
                });
            }
            if !saw_p_new && p_new != pu {
                debug_assert!(s_new > 0, "cross-processor predecessor with s_new == 0");
                new_out.push(Contribution {
                    step: s_new - 1,
                    from: pu,
                    to: p_new,
                    weight: cu * machine.lambda(pu, p_new),
                });
            }
        }
        scratch.contribs_new = new_out;
    }

    /// Sound pruning gate: `false` guarantees that *no* candidate move of `v`
    /// can lower the total cost, so the driver may skip all `3 · P`
    /// destinations outright.  `O(deg)`; read-only on the core, so safe to
    /// run concurrently.  Requires warm summary caches
    /// ([`HcCore::warm_summaries`]).
    ///
    /// Soundness: a move only removes tallies at `v`'s own work cell and at
    /// the cells of the old lazy contributions of `v` and its predecessors;
    /// every other touched cell only grows.  A superstep's body cost is
    /// `max(work row) + g · max(hrel row)`, so it can only decrease when one
    /// of those removed-from cells currently attains its row maximum.  The
    /// latency term can only decrease when `v`'s superstep empties, i.e. `v`
    /// is alone in it.  If none of these hold, every candidate has `delta ≥ 0`.
    pub fn can_gain<G: DagView>(&self, scratch: &mut EvalScratch, graph: &G, v: usize) -> bool {
        let p = self.machine.p();
        let s_old = self.step[v];
        let p_old = self.proc[v];
        if self.nodes_in_step[s_old] == 1 {
            return true;
        }
        // The move removes work from exactly one cell; the row max only drops
        // if that cell attains it uniquely.
        if self.work[s_old * p + p_old] == self.work_max[s_old] && self.work_max_cnt[s_old] == 1 {
            return true;
        }
        // Communication side: the removable cells are exactly those of the
        // old contributions of v and its predecessors.  A phase's h-relation
        // max drops only if the removable max-attaining cells cover *all*
        // cells attaining it, so collect distinct removable max cells per
        // phase and compare against the attain-count.
        self.prepare_node(scratch, graph, v);
        const CAP: usize = 16;
        let mut max_cells = [(0usize, 0usize); CAP];
        let mut m = 0usize;
        for i in 0..scratch.contribs_old.len() {
            let c = scratch.contribs_old[i];
            let row_max = self.hrel_max[c.step];
            let cnt = self.hrel_max_cnt[c.step];
            for cell in [c.step * p + c.from, c.step * p + c.to] {
                if self.hrel[cell] != row_max {
                    continue;
                }
                if cnt == 1 {
                    return true;
                }
                if !max_cells[..m].contains(&(c.step, cell)) {
                    if m == CAP {
                        return true; // overflow: be conservative
                    }
                    max_cells[m] = (c.step, cell);
                    m += 1;
                }
            }
        }
        for i in 0..m {
            let (s, _) = max_cells[i];
            let covered = max_cells[..m].iter().filter(|&&(t, _)| t == s).count();
            if covered >= self.hrel_max_cnt[s] as usize {
                return true;
            }
        }
        false
    }

    /// Precomputes the feasibility window of node `v`'s candidate moves in
    /// one `O(deg)` scan; check candidates with [`MoveWindow::allows`].
    pub fn move_window<G: DagView>(&self, graph: &G, v: usize) -> MoveWindow {
        let mut pred_step = None;
        let mut pred_proc = None;
        for &u in graph.predecessors(v) {
            let su = self.step[u];
            match pred_step {
                None => {
                    pred_step = Some(su);
                    pred_proc = Some(self.proc[u]);
                }
                Some(cur) if su > cur => {
                    pred_step = Some(su);
                    pred_proc = Some(self.proc[u]);
                }
                Some(cur) if su == cur && pred_proc != Some(self.proc[u]) => {
                    pred_proc = None;
                }
                _ => {}
            }
        }
        let mut succ_step = None;
        let mut succ_proc = None;
        for &w in graph.successors(v) {
            let sw = self.step[w];
            match succ_step {
                None => {
                    succ_step = Some(sw);
                    succ_proc = Some(self.proc[w]);
                }
                Some(cur) if sw < cur => {
                    succ_step = Some(sw);
                    succ_proc = Some(self.proc[w]);
                }
                Some(cur) if sw == cur && succ_proc != Some(self.proc[w]) => {
                    succ_proc = None;
                }
                _ => {}
            }
        }
        MoveWindow {
            pred_step,
            pred_proc,
            succ_step,
            succ_proc,
        }
    }

    /// `true` if moving node `v` to `(p_new, s_new)` keeps the lazy schedule
    /// valid: predecessors must be available (strictly earlier superstep, or
    /// the same superstep on the same processor), and symmetrically for
    /// successors.
    pub fn move_is_valid<G: DagView>(
        &self,
        graph: &G,
        v: usize,
        p_new: usize,
        s_new: usize,
    ) -> bool {
        for &u in graph.predecessors(v) {
            let ok = if self.proc[u] == p_new {
                self.step[u] <= s_new
            } else {
                self.step[u] < s_new
            };
            if !ok {
                return false;
            }
        }
        for &w in graph.successors(v) {
            let ok = if self.proc[w] == p_new {
                self.step[w] >= s_new
            } else {
                self.step[w] > s_new
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Work tally at `(s, q)`, treating rows past the allocated capacity as
    /// empty (a speculative move may target the first unmaterialized step).
    #[inline(always)]
    fn work_at(&self, s: usize, q: usize) -> u64 {
        let p = self.machine.p();
        self.work.get(s * p + q).copied().unwrap_or(0)
    }

    #[inline(always)]
    fn send_at(&self, s: usize, q: usize) -> u64 {
        let p = self.machine.p();
        self.send.get(s * p + q).copied().unwrap_or(0)
    }

    #[inline(always)]
    fn recv_at(&self, s: usize, q: usize) -> u64 {
        let p = self.machine.p();
        self.recv.get(s * p + q).copied().unwrap_or(0)
    }

    /// Evaluates the move of node `v` to `(p_new, s_new)` **without touching
    /// the core**: the delta is assembled from fresh row scans over the
    /// speculative per-processor deltas held in `scratch`.  Returns the exact
    /// change in total cost (negative = improvement) — identical to
    /// [`HcState::try_move`] on the same state.
    ///
    /// Requires warm summary caches for `v` and its predecessors
    /// ([`HcCore::warm_summaries`]); the candidate must be feasible
    /// ([`MoveWindow::allows`]).  Performs no heap allocation once the
    /// scratch is sized.  `O(|affected rows| · P)`.
    pub fn speculate_move<G: DagView>(
        &self,
        scratch: &mut EvalScratch,
        graph: &G,
        v: usize,
        p_new: usize,
        s_new: usize,
    ) -> i64 {
        debug_assert!(self.split_pending.is_none());
        let p_old = self.proc[v];
        let s_old = self.step[v];
        if p_old == p_new && s_old == s_new {
            return 0;
        }
        let p = self.machine.p();
        scratch.fit_procs(p);
        scratch.fit_steps(self.body.len().max(s_new + 1) + 1);
        self.gather_move_contribs(scratch, graph, v, p_new, s_new);

        // Deduplicate the touched supersteps with the generation stamp.
        scratch.affected.clear();
        scratch.step_stamp += 1;
        let stamp = scratch.step_stamp;
        for s in [s_old, s_new] {
            if scratch.step_mark[s] != stamp {
                scratch.step_mark[s] = stamp;
                scratch.affected.push(s);
            }
        }
        for i in 0..scratch.contribs_old.len() {
            let s = scratch.contribs_old[i].step;
            if scratch.step_mark[s] != stamp {
                scratch.step_mark[s] = stamp;
                scratch.affected.push(s);
            }
        }
        for i in 0..scratch.contribs_new.len() {
            let s = scratch.contribs_new[i].step;
            if scratch.step_mark[s] != stamp {
                scratch.step_mark[s] = stamp;
                scratch.affected.push(s);
            }
        }

        // Per affected superstep: accumulate the cell deltas in the stamped
        // per-processor arrays, then recompute the row maxima in one scan
        // that reads the shared tallies and applies the deltas on the fly.
        let wv = graph.work(v) as i64;
        let g = self.machine.g();
        let mut before = 0u64;
        let mut after = 0u64;
        for ai in 0..scratch.affected.len() {
            let s = scratch.affected[ai];
            before += self.body.get(s).copied().unwrap_or(0);
            scratch.delta_stamp += 1;
            let ds = scratch.delta_stamp;
            let touch = |scratch: &mut EvalScratch, q: usize| {
                if scratch.delta_mark[q] != ds {
                    scratch.delta_mark[q] = ds;
                    scratch.delta_work[q] = 0;
                    scratch.delta_send[q] = 0;
                    scratch.delta_recv[q] = 0;
                }
            };
            if s == s_old {
                touch(scratch, p_old);
                scratch.delta_work[p_old] -= wv;
            }
            if s == s_new {
                touch(scratch, p_new);
                scratch.delta_work[p_new] += wv;
            }
            for i in 0..scratch.contribs_old.len() {
                let c = scratch.contribs_old[i];
                if c.step != s {
                    continue;
                }
                touch(scratch, c.from);
                scratch.delta_send[c.from] -= c.weight as i64;
                touch(scratch, c.to);
                scratch.delta_recv[c.to] -= c.weight as i64;
            }
            for i in 0..scratch.contribs_new.len() {
                let c = scratch.contribs_new[i];
                if c.step != s {
                    continue;
                }
                touch(scratch, c.from);
                scratch.delta_send[c.from] += c.weight as i64;
                touch(scratch, c.to);
                scratch.delta_recv[c.to] += c.weight as i64;
            }
            let mut wm = 0u64;
            let mut hm = 0u64;
            for q in 0..p {
                let (wq, sq, rq) = if scratch.delta_mark[q] == ds {
                    let wq = self.work_at(s, q) as i64 + scratch.delta_work[q];
                    let sq = self.send_at(s, q) as i64 + scratch.delta_send[q];
                    let rq = self.recv_at(s, q) as i64 + scratch.delta_recv[q];
                    debug_assert!(wq >= 0 && sq >= 0 && rq >= 0, "speculative tally underflow");
                    (wq as u64, sq as u64, rq as u64)
                } else {
                    (self.work_at(s, q), self.send_at(s, q), self.recv_at(s, q))
                };
                wm = wm.max(wq);
                hm = hm.max(sq.max(rq));
            }
            after += wm + g * hm;
        }

        // The new superstep count, accounting for the occupancy shift.
        let occupancy = |s: usize| {
            self.nodes_in_step.get(s).copied().unwrap_or(0) + usize::from(s == s_new)
                - usize::from(s == s_old)
        };
        let mut new_num_steps = self.num_steps.max(s_new + 1);
        while new_num_steps > 0 && occupancy(new_num_steps - 1) == 0 {
            new_num_steps -= 1;
        }
        let latency_delta =
            self.machine.latency() as i64 * (new_num_steps as i64 - self.num_steps as i64);
        after as i64 - before as i64 + latency_delta
    }

    /// Grows the tally matrices to hold at least `steps` supersteps.
    fn ensure_capacity(&mut self, steps: usize) {
        let current = self.body.len();
        if steps <= current {
            return;
        }
        let p = self.machine.p();
        self.work.resize(steps * p, 0);
        self.send.resize(steps * p, 0);
        self.recv.resize(steps * p, 0);
        self.hrel.resize(steps * p, 0);
        self.work_max.resize(steps, 0);
        self.work_max_cnt.resize(steps, p as u32);
        self.hrel_max.resize(steps, 0);
        self.hrel_max_cnt.resize(steps, p as u32);
        self.nodes_in_step.resize(steps, 0);
        self.step_nodes.resize_with(steps, Vec::new);
        self.body.resize(steps, 0);
    }

    /// Adds/subtracts `weight` on the send (`Side::Send`) or receive tally at
    /// `(s, cell)`, refreshing the fused h-relation entry and the row-max
    /// cache.
    #[inline(always)]
    fn patch_comm(&mut self, side: Side, s: usize, cell: usize, weight: u64, add: bool) {
        let tally = match side {
            Side::Send => &mut self.send[cell],
            Side::Recv => &mut self.recv[cell],
        };
        if add {
            *tally += weight;
        } else {
            *tally -= weight;
        }
        let old_h = self.hrel[cell];
        let new_h = self.send[cell].max(self.recv[cell]);
        if new_h != old_h {
            self.hrel[cell] = new_h;
            let p = self.machine.p();
            bump_row_max(
                &mut self.hrel_max[s],
                &mut self.hrel_max_cnt[s],
                &self.hrel[s * p..(s + 1) * p],
                old_h,
                new_h,
            );
        }
    }

    /// Sets the work tally at `(s, q)` to `new`, maintaining the row-max cache.
    #[inline(always)]
    fn patch_work(&mut self, s: usize, q: usize, new: u64) {
        let p = self.machine.p();
        let cell = s * p + q;
        let old = self.work[cell];
        if new == old {
            return;
        }
        self.work[cell] = new;
        bump_row_max(
            &mut self.work_max[s],
            &mut self.work_max_cnt[s],
            &self.work[s * p..(s + 1) * p],
            old,
            new,
        );
    }

    /// Shared move evaluation; `commit` decides whether the move sticks.
    /// See [`HcState::try_move`] / [`HcState::apply_move`].
    pub fn eval_move<G: DagView>(
        &mut self,
        scratch: &mut EvalScratch,
        graph: &G,
        v: usize,
        p_new: usize,
        s_new: usize,
        commit: bool,
    ) -> i64 {
        debug_assert!(self.split_pending.is_none());
        let p_old = self.proc[v];
        let s_old = self.step[v];
        if p_old == p_new && s_old == s_new {
            return 0;
        }
        self.ensure_capacity(s_new + 1);
        scratch.fit_procs(self.machine.p());
        scratch.fit_steps(self.body.len() + 1);
        let p = self.machine.p();

        self.warm_summaries(scratch, graph, v);
        self.gather_move_contribs(scratch, graph, v, p_new, s_new);

        // Mutate the assignment.
        self.proc[v] = p_new;
        self.step[v] = s_new;

        // Deduplicate the touched supersteps with the generation stamp.
        scratch.affected.clear();
        scratch.step_stamp += 1;
        let stamp = scratch.step_stamp;
        for s in [s_old, s_new] {
            if scratch.step_mark[s] != stamp {
                scratch.step_mark[s] = stamp;
                scratch.affected.push(s);
            }
        }
        for i in 0..scratch.contribs_old.len() {
            let s = scratch.contribs_old[i].step;
            if scratch.step_mark[s] != stamp {
                scratch.step_mark[s] = stamp;
                scratch.affected.push(s);
            }
        }
        for i in 0..scratch.contribs_new.len() {
            let s = scratch.contribs_new[i].step;
            if scratch.step_mark[s] != stamp {
                scratch.step_mark[s] = stamp;
                scratch.affected.push(s);
            }
        }

        // Body cost of the affected supersteps before the tally updates
        // (cached, so this is O(|affected|)); remember the full row caches so
        // a rejected move rolls back without recomputing any row maximum.
        scratch.affected_saved.clear();
        let mut before = 0u64;
        for i in 0..scratch.affected.len() {
            let s = scratch.affected[i];
            let b = self.body[s];
            scratch.affected_saved.push((
                b,
                self.work_max[s],
                self.work_max_cnt[s],
                self.hrel_max[s],
                self.hrel_max_cnt[s],
            ));
            before += b;
        }

        // Patch the tallies, maintaining the row-max caches.
        let wv = graph.work(v);
        self.patch_work(s_old, p_old, self.work[s_old * p + p_old] - wv);
        self.patch_work(s_new, p_new, self.work[s_new * p + p_new] + wv);
        for i in 0..scratch.contribs_old.len() {
            let c = scratch.contribs_old[i];
            self.patch_comm(Side::Send, c.step, c.step * p + c.from, c.weight, false);
            self.patch_comm(Side::Recv, c.step, c.step * p + c.to, c.weight, false);
        }
        for i in 0..scratch.contribs_new.len() {
            let c = scratch.contribs_new[i];
            self.patch_comm(Side::Send, c.step, c.step * p + c.from, c.weight, true);
            self.patch_comm(Side::Recv, c.step, c.step * p + c.to, c.weight, true);
        }

        // The new superstep count, accounting for the occupancy shift.
        let occupancy = |state: &Self, s: usize| {
            state.nodes_in_step[s] + usize::from(s == s_new) - usize::from(s == s_old)
        };
        let mut new_num_steps = self.num_steps.max(s_new + 1);
        while new_num_steps > 0 && occupancy(self, new_num_steps - 1) == 0 {
            new_num_steps -= 1;
        }

        // Body cost after, straight from the row-max caches (`O(1)` per step).
        let g = self.machine.g();
        let mut after = 0u64;
        for i in 0..scratch.affected.len() {
            let s = scratch.affected[i];
            let cost = self.work_max[s] + g * self.hrel_max[s];
            self.body_sum = self.body_sum - self.body[s] + cost;
            self.body[s] = cost;
            after += cost;
        }

        let latency_delta =
            self.machine.latency() as i64 * (new_num_steps as i64 - self.num_steps as i64);
        let delta = after as i64 - before as i64 + latency_delta;

        if commit {
            // Move v between superstep buckets (swap-remove + push).
            let pos = self.bucket_pos[v];
            let bucket = &mut self.step_nodes[s_old];
            bucket.swap_remove(pos);
            if pos < bucket.len() {
                let moved = bucket[pos];
                self.bucket_pos[moved] = pos;
            }
            self.bucket_pos[v] = self.step_nodes[s_new].len();
            self.step_nodes[s_new].push(v);
            self.nodes_in_step[s_old] -= 1;
            self.nodes_in_step[s_new] += 1;
            self.num_steps = new_num_steps;
            // The committed move changed v's position: the cached
            // contributions of v (sender moved) and of its predecessors
            // (consumer moved) are stale.
            self.contrib_valid[v] = false;
            for &u in graph.predecessors(v) {
                self.contrib_valid[u] = false;
            }
            scratch.prepared_node = None;
            return delta;
        }

        // Roll everything back.  Cells are restored directly (the inverse
        // arithmetic is exact) and the row caches come back from the saved
        // snapshots, so no row is ever rescanned on rejection.
        self.proc[v] = p_old;
        self.step[v] = s_old;
        self.work[s_old * p + p_old] += wv;
        self.work[s_new * p + p_new] -= wv;
        for i in 0..scratch.contribs_old.len() {
            let c = scratch.contribs_old[i];
            let from = c.step * p + c.from;
            let to = c.step * p + c.to;
            self.send[from] += c.weight;
            self.recv[to] += c.weight;
            self.hrel[from] = self.send[from].max(self.recv[from]);
            self.hrel[to] = self.send[to].max(self.recv[to]);
        }
        for i in 0..scratch.contribs_new.len() {
            let c = scratch.contribs_new[i];
            let from = c.step * p + c.from;
            let to = c.step * p + c.to;
            self.send[from] -= c.weight;
            self.recv[to] -= c.weight;
            self.hrel[from] = self.send[from].max(self.recv[from]);
            self.hrel[to] = self.send[to].max(self.recv[to]);
        }
        for i in 0..scratch.affected.len() {
            let s = scratch.affected[i];
            let (body, wm, wc, hm, hc) = scratch.affected_saved[i];
            self.body_sum = self.body_sum - self.body[s] + body;
            self.body[s] = body;
            self.work_max[s] = wm;
            self.work_max_cnt[s] = wc;
            self.hrel_max[s] = hm;
            self.hrel_max_cnt[s] = hc;
        }
        delta
    }

    /// First half of the warm-start *split* patch; see [`HcState::pre_split`].
    pub fn pre_split<G: DagView>(&mut self, scratch: &mut EvalScratch, graph: &G, kept: usize) {
        debug_assert!(self.split_pending.is_none());
        self.refresh_summaries(scratch, graph, kept);
        let p = self.machine.p();
        scratch.fit_steps(self.body.len() + 1);
        let mut old = std::mem::take(&mut scratch.contribs_old);
        old.clear();
        push_contributions(
            self.machine,
            self.proc[kept],
            graph.comm(kept),
            &self.contrib_cache[kept],
            &mut old,
        );
        scratch.affected.clear();
        scratch.step_stamp += 1;
        let stamp = scratch.step_stamp;
        for &c in &old {
            if scratch.step_mark[c.step] != stamp {
                scratch.step_mark[c.step] = stamp;
                scratch.affected.push(c.step);
            }
            self.patch_comm(Side::Send, c.step, c.step * p + c.from, c.weight, false);
            self.patch_comm(Side::Recv, c.step, c.step * p + c.to, c.weight, false);
        }
        scratch.contribs_old = old;
        scratch.prepared_node = None;
        self.split_pending = Some(kept);
    }

    /// Second half of the warm-start split patch; see [`HcState::post_split`].
    pub fn post_split<G: DagView>(
        &mut self,
        scratch: &mut EvalScratch,
        graph: &G,
        kept: usize,
        removed: usize,
    ) {
        debug_assert_eq!(self.split_pending, Some(kept));
        self.split_pending = None;
        let p = self.machine.p();
        let (pk, sk) = (self.proc[kept], self.step[kept]);
        self.proc[removed] = pk;
        self.step[removed] = sk;
        self.bucket_pos[removed] = self.step_nodes[sk].len();
        self.step_nodes[sk].push(removed);
        self.nodes_in_step[sk] += 1;

        // The halves are new consumer nodes for their predecessors (the
        // per-processor consumer *counts* change even though the materialized
        // contributions do not), so those summaries must be rebuilt on demand.
        // Invalidate before refreshing the halves: `kept` is itself a
        // predecessor of `removed` through the internal edge.
        self.contrib_valid[kept] = false;
        self.contrib_valid[removed] = false;
        for &u in graph.predecessors(kept) {
            self.contrib_valid[u] = false;
        }
        for &u in graph.predecessors(removed) {
            self.contrib_valid[u] = false;
        }
        self.refresh_summaries(scratch, graph, kept);
        self.refresh_summaries(scratch, graph, removed);
        let mut new_out = std::mem::take(&mut scratch.contribs_new);
        new_out.clear();
        push_contributions(
            self.machine,
            pk,
            graph.comm(kept),
            &self.contrib_cache[kept],
            &mut new_out,
        );
        push_contributions(
            self.machine,
            pk,
            graph.comm(removed),
            &self.contrib_cache[removed],
            &mut new_out,
        );
        let stamp = scratch.step_stamp;
        for &c in &new_out {
            if scratch.step_mark[c.step] != stamp {
                scratch.step_mark[c.step] = stamp;
                scratch.affected.push(c.step);
            }
            self.patch_comm(Side::Send, c.step, c.step * p + c.from, c.weight, true);
            self.patch_comm(Side::Recv, c.step, c.step * p + c.to, c.weight, true);
        }
        scratch.contribs_new = new_out;

        let g = self.machine.g();
        for i in 0..scratch.affected.len() {
            let s = scratch.affected[i];
            let cost = self.work_max[s] + g * self.hrel_max[s];
            self.body_sum = self.body_sum - self.body[s] + cost;
            self.body[s] = cost;
        }
    }
}

/// Incremental cost state of an assignment under the lazy communication rule:
/// one [`HcCore`] snapshot plus one [`EvalScratch`], exposing the classical
/// single-threaded API.  [`HcState::try_move`] evaluates a move and rolls
/// every tally back; [`HcState::apply_move`] commits it.  Both return the
/// exact cost delta, and applying the inverse move restores the previous
/// state exactly (the property the search uses to reject candidates cheaply).
#[derive(Debug, Clone)]
pub struct HcState<'a> {
    core: HcCore<'a>,
    scratch: EvalScratch,
}

impl<'a> HcState<'a> {
    /// Builds the incremental state from an assignment.
    ///
    /// The assignment must be feasible for the *lazy* communication schedule:
    /// every edge `(u, w)` needs `τ(u) ≤ τ(w)` on the same processor and
    /// `τ(u) < τ(w)` across processors (otherwise the value of `u` cannot
    /// reach `π(w)` in time — for `τ(w) = 0` this is the case that used to
    /// underflow `s - 1`).  Infeasible assignments yield a [`ValidityError`]
    /// naming the offending edge.
    ///
    /// The view may contain inactive nodes (a quotient graph mid-coarsening):
    /// they are skipped everywhere and their assignment entries are ignored
    /// (by convention the caller should leave them at `(0, 0)`).
    pub fn new<G: DagView>(
        graph: &G,
        machine: &'a Machine,
        assignment: Assignment,
    ) -> Result<Self, ValidityError> {
        let mut scratch = EvalScratch::new();
        let core = HcCore::new(graph, machine, assignment, &mut scratch)?;
        Ok(HcState { core, scratch })
    }

    /// The shared snapshot, for concurrent read-only evaluation against
    /// per-thread [`EvalScratch`] instances.
    #[inline]
    pub fn core(&self) -> &HcCore<'a> {
        &self.core
    }

    /// Mutable access to the snapshot and the state's own scratch as separate
    /// borrows (the parallel driver's serial phases use this).
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut HcCore<'a>, &mut EvalScratch) {
        (&mut self.core, &mut self.scratch)
    }

    /// See [`HcCore::compact_steps`]: removes supersteps without any
    /// computation and renumbers the remaining ones contiguously — the
    /// state-level counterpart of [`bsp_model::BspSchedule::normalize`] under
    /// the lazy communication schedule (lazy phases re-anchor to the
    /// consumers' new indices, which is exactly where `normalize` shifts
    /// them).  Returns the number of supersteps removed.
    ///
    /// `O(num_steps)` when nothing is dead; a rebuild of the derived tallies
    /// (`O(n + m)`, allocation-free) when compaction happens.  The multilevel
    /// engine calls this between refinement phases: supersteps drain rarely,
    /// and mostly at coarse levels where `n` is small, so the amortized cost
    /// stays far below the per-phase rebuild it replaces.
    pub fn compact_steps<G: DagView>(&mut self, graph: &G) -> usize {
        self.core.compact_steps(&mut self.scratch, graph)
    }

    /// Current processor of a node.
    #[inline]
    pub fn proc_of(&self, v: usize) -> usize {
        self.core.proc_of(v)
    }

    /// Current superstep of a node.
    #[inline]
    pub fn step_of(&self, v: usize) -> usize {
        self.core.step_of(v)
    }

    /// Current number of supersteps.
    #[inline]
    pub fn num_supersteps(&self) -> usize {
        self.core.num_supersteps()
    }

    /// The nodes currently assigned to superstep `s` (in no particular order).
    pub fn nodes_in_superstep(&self, s: usize) -> &[usize] {
        self.core.nodes_in_superstep(s)
    }

    /// The supersteps whose tallies the most recent `try_move`/`apply_move`
    /// touched (deduplicated, unordered).  The work-list driver re-enqueues
    /// the nodes of these supersteps after an accepted move.
    pub fn last_affected_steps(&self) -> &[usize] {
        &self.scratch.affected
    }

    /// A snapshot of the current assignment.
    pub fn assignment(&self) -> Assignment {
        self.core.assignment()
    }

    /// Consumes the state and returns the assignment.
    pub fn into_assignment(self) -> Assignment {
        Assignment {
            proc: self.core.proc,
            superstep: self.core.step,
        }
    }

    /// Total schedule cost under the lazy communication schedule.  `O(1)`.
    pub fn total_cost(&self) -> u64 {
        self.core.total_cost()
    }

    /// Sound pruning gate: `false` guarantees that *no* candidate move of `v`
    /// can lower the total cost (see [`HcCore::can_gain`]).  `O(deg)` (and it
    /// warms the per-node contribution cache that candidate evaluation
    /// reuses).
    pub fn node_can_gain<G: DagView>(&mut self, graph: &G, v: usize) -> bool {
        self.core.warm_summaries(&mut self.scratch, graph, v);
        self.core.can_gain(&mut self.scratch, graph, v)
    }

    /// Precomputes the feasibility window of node `v`'s candidate moves in
    /// one `O(deg)` scan; check candidates with [`MoveWindow::allows`].
    pub fn move_window<G: DagView>(&self, graph: &G, v: usize) -> MoveWindow {
        self.core.move_window(graph, v)
    }

    /// `true` if moving node `v` to `(p_new, s_new)` keeps the lazy schedule
    /// valid (see [`HcCore::move_is_valid`]).
    pub fn move_is_valid<G: DagView>(
        &self,
        graph: &G,
        v: usize,
        p_new: usize,
        s_new: usize,
    ) -> bool {
        self.core.move_is_valid(graph, v, p_new, s_new)
    }

    /// Evaluates the move of node `v` to `(p_new, s_new)` without committing
    /// it: every tally is rolled back before returning.  Returns the exact
    /// change in total cost (negative = improvement).
    ///
    /// Performs no heap allocation (after the state's scratch buffers have
    /// warmed up to the move's superstep range).
    pub fn try_move<G: DagView>(&mut self, graph: &G, v: usize, p_new: usize, s_new: usize) -> i64 {
        self.core
            .eval_move(&mut self.scratch, graph, v, p_new, s_new, false)
    }

    /// Applies the move of node `v` to `(p_new, s_new)` and returns the change
    /// in total cost (negative = improvement).  Applying the inverse move
    /// afterwards restores the exact previous state and returns the negated
    /// delta.
    pub fn apply_move<G: DagView>(
        &mut self,
        graph: &G,
        v: usize,
        p_new: usize,
        s_new: usize,
    ) -> i64 {
        self.core
            .eval_move(&mut self.scratch, graph, v, p_new, s_new, true)
    }

    /// First half of the warm-start *split* patch: removes the lazy
    /// contributions of cluster `kept` from the tallies, ahead of the quotient
    /// graph splitting `kept` in two.  Must be called with the **pre-split**
    /// view (so `kept`'s successor set and communication weight are still the
    /// merged ones) and followed by [`HcState::post_split`] before any other
    /// operation on the state.  `O(deg(kept))`, allocation-free once warm.
    ///
    /// The work tallies need no patching at all: the two halves stay on
    /// `kept`'s processor and superstep, so their summed work sits in the same
    /// cell before and after the split.  Predecessors' materialized
    /// contributions are likewise unchanged (their consumers keep their
    /// positions); only their cached summaries go stale, which
    /// [`HcState::post_split`] records.
    pub fn pre_split<G: DagView>(&mut self, graph: &G, kept: usize) {
        self.core.pre_split(&mut self.scratch, graph, kept);
    }

    /// Second half of the warm-start split patch, called with the
    /// **post-split** view: activates `removed` at `kept`'s processor and
    /// superstep, adds both halves' lazy contributions to the tallies, and
    /// refreshes the body-cost cache of the touched supersteps.  After this
    /// the state is exactly what [`HcState::new`] would build from the split
    /// graph and the extended assignment.  `O(deg(kept) + deg(removed))`.
    pub fn post_split<G: DagView>(&mut self, graph: &G, kept: usize, removed: usize) {
        self.core
            .post_split(&mut self.scratch, graph, kept, removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::{BspSchedule, Dag, Machine};

    fn sample() -> (Dag, Machine, Assignment) {
        let dag = Dag::from_edges(
            6,
            &[(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)],
            vec![2, 3, 4, 5, 6, 7],
            vec![1, 2, 3, 4, 5, 6],
        )
        .unwrap();
        let machine = Machine::numa_binary_tree(4, 2, 5, 3);
        let assignment = Assignment {
            proc: vec![0, 1, 0, 2, 0, 3],
            superstep: vec![0, 0, 1, 2, 2, 3],
        };
        (dag, machine, assignment)
    }

    #[test]
    fn state_cost_matches_schedule_cost() {
        let (dag, machine, assignment) = sample();
        let sched = BspSchedule::from_assignment_lazy(&dag, assignment.clone());
        let state = HcState::new(&dag, &machine, assignment).unwrap();
        assert_eq!(state.total_cost(), sched.cost(&dag, &machine));
    }

    #[test]
    fn apply_move_delta_matches_recomputed_cost() {
        let (dag, machine, assignment) = sample();
        let mut state = HcState::new(&dag, &machine, assignment).unwrap();
        let before = state.total_cost();
        // Valid move: node 4 (preds {2} at step 1 proc 0, succs {5} at step 3)
        // can go to processor 1 in superstep 2.
        assert!(state.move_is_valid(&dag, 4, 1, 2));
        let delta = state.apply_move(&dag, 4, 1, 2);
        let recomputed =
            BspSchedule::from_assignment_lazy(&dag, state.assignment()).cost(&dag, &machine);
        assert_eq!(state.total_cost(), recomputed);
        assert_eq!(before as i64 + delta, recomputed as i64);
    }

    #[test]
    fn try_move_matches_apply_move_and_leaves_state_unchanged() {
        let (dag, machine, assignment) = sample();
        let mut state = HcState::new(&dag, &machine, assignment.clone()).unwrap();
        let cost_before = state.total_cost();
        let assignment_before = state.assignment();
        let tried = state.try_move(&dag, 4, 1, 2);
        assert_eq!(state.total_cost(), cost_before);
        assert_eq!(state.assignment(), assignment_before);
        let applied = state.apply_move(&dag, 4, 1, 2);
        assert_eq!(tried, applied);
    }

    #[test]
    fn speculate_move_matches_try_move_on_every_candidate() {
        let (dag, machine, assignment) = sample();
        let mut state = HcState::new(&dag, &machine, assignment).unwrap();
        let mut side_scratch = EvalScratch::new();
        for v in 0..dag.n() {
            for s_new in 0..=state.num_supersteps() {
                for p_new in 0..machine.p() {
                    if !state.move_is_valid(&dag, v, p_new, s_new) {
                        continue;
                    }
                    // Warm the summary caches the read-only path requires.
                    {
                        let (core, scratch) = state.parts_mut();
                        core.warm_summaries(scratch, &dag, v);
                    }
                    side_scratch.invalidate_prepared();
                    let speculated =
                        state
                            .core()
                            .speculate_move(&mut side_scratch, &dag, v, p_new, s_new);
                    let tried = state.try_move(&dag, v, p_new, s_new);
                    assert_eq!(
                        speculated, tried,
                        "speculate/try disagree at v={v} p={p_new} s={s_new}"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_move_is_reversible() {
        let (dag, machine, assignment) = sample();
        let mut state = HcState::new(&dag, &machine, assignment).unwrap();
        let before = state.total_cost();
        let d1 = state.apply_move(&dag, 4, 1, 2);
        let d2 = state.apply_move(&dag, 4, 0, 2);
        assert_eq!(d1 + d2, (state.total_cost() as i64) - before as i64);
        assert_eq!(state.total_cost() as i64, before as i64 + d1 + d2);
        // Move fully back.
        let d3 = state.apply_move(&dag, 4, 0, 2);
        assert_eq!(d3, 0);
    }

    #[test]
    fn move_validity_respects_precedence() {
        let (dag, _machine, assignment) = sample();
        let machine = Machine::uniform(4, 1, 1);
        let state = HcState::new(&dag, &machine, assignment).unwrap();
        // Node 2's predecessors are in superstep 0 on processors 0 and 1; it
        // cannot move into superstep 0 on processor 2 (pred on other proc).
        assert!(!state.move_is_valid(&dag, 2, 2, 0));
        // It can move to processor 0 superstep 1 (same) or processor 3 superstep 1?
        // pred 1 is on proc 1 step 0 < 1, pred 0 on proc 0 step 0 < 1 -> fine;
        // succs 3,4 are in step 2 on other procs -> fine.
        assert!(state.move_is_valid(&dag, 2, 3, 1));
        // Cannot move past its successors.
        assert!(!state.move_is_valid(&dag, 2, 0, 3));
    }

    #[test]
    fn moving_to_a_new_superstep_accounts_for_latency() {
        let dag = Dag::from_edges(2, &[], vec![5, 5], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 7);
        let assignment = Assignment {
            proc: vec![0, 1],
            superstep: vec![0, 0],
        };
        let mut state = HcState::new(&dag, &machine, assignment).unwrap();
        assert_eq!(state.total_cost(), 5 + 7);
        // Move node 1 into a brand-new superstep: cost becomes 5 + 5 + 2*7.
        let delta = state.apply_move(&dag, 1, 1, 1);
        assert_eq!(state.total_cost(), 5 + 5 + 14);
        assert_eq!(delta, (5 + 5 + 14) - (5 + 7));
        assert_eq!(state.num_supersteps(), 2);
        // And back again.
        let back = state.apply_move(&dag, 1, 1, 0);
        assert_eq!(back, -delta);
        assert_eq!(state.num_supersteps(), 1);
    }

    #[test]
    fn superstep_membership_tracks_moves() {
        let (dag, machine, assignment) = sample();
        let mut state = HcState::new(&dag, &machine, assignment).unwrap();
        let mut step2: Vec<usize> = state.nodes_in_superstep(2).to_vec();
        step2.sort_unstable();
        assert_eq!(step2, vec![3, 4]);
        state.apply_move(&dag, 4, 1, 3);
        assert_eq!(state.nodes_in_superstep(2), &[3]);
        let mut step3: Vec<usize> = state.nodes_in_superstep(3).to_vec();
        step3.sort_unstable();
        assert_eq!(step3, vec![4, 5]);
    }

    #[test]
    fn move_window_agrees_with_move_is_valid_everywhere() {
        let (dag, machine, assignment) = sample();
        let state = HcState::new(&dag, &machine, assignment).unwrap();
        for v in 0..dag.n() {
            let window = state.move_window(&dag, v);
            for s_new in 0..=state.num_supersteps() + 1 {
                for p_new in 0..machine.p() {
                    assert_eq!(
                        window.allows(p_new, s_new),
                        state.move_is_valid(&dag, v, p_new, s_new),
                        "disagreement at v={v} p={p_new} s={s_new}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_cross_processor_successor_in_superstep_zero() {
        // Edge (0, 1) with both nodes in superstep 0 on different processors:
        // the lazy schedule cannot deliver the value (this used to underflow
        // `s - 1` instead of erroring).
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let assignment = Assignment {
            proc: vec![0, 1],
            superstep: vec![0, 0],
        };
        let err = HcState::new(&dag, &machine, assignment).unwrap_err();
        assert_eq!(
            err,
            ValidityError::MissingCommunication { pred: 0, node: 1 }
        );
    }

    #[test]
    fn rejects_same_processor_precedence_violation() {
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let assignment = Assignment {
            proc: vec![0, 0],
            superstep: vec![1, 0],
        };
        let err = HcState::new(&dag, &machine, assignment).unwrap_err();
        assert_eq!(
            err,
            ValidityError::PrecedenceSameProcessor { pred: 0, node: 1 }
        );
    }

    #[test]
    fn rejects_out_of_range_processors_and_length_mismatch() {
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let err = HcState::new(
            &dag,
            &machine,
            Assignment {
                proc: vec![0, 5],
                superstep: vec![0, 1],
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ValidityError::ProcessorOutOfRange {
                node: 1,
                proc: 5,
                p: 2
            }
        );
        let err = HcState::new(
            &dag,
            &machine,
            Assignment {
                proc: vec![0],
                superstep: vec![0],
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ValidityError::AssignmentLengthMismatch {
                expected: 2,
                got: 1
            }
        );
    }
}
