//! Batch-speculative parallel driver for the `HC` local search.
//!
//! The serial work-list driver ([`super::hc_search`]) is inherently
//! sequential: every accepted move changes the tallies the next evaluation
//! reads.  This driver exploits the fact that *evaluation* dominates
//! *commitment* by orders of magnitude (most visits are gated or find no
//! improving destination) and parallelizes in the style of Mt-KaHyPar-like
//! speculative refinement:
//!
//! 1. **Drain** the head of the dirty work-list — boundedly, so one round
//!    never re-scans the whole backlog.
//! 2. **Batch** a conflict-disjoint subset: a candidate claims the
//!    `(superstep, processor)` tally cells its departure writes —
//!    `{τ(v)−1, τ(v), τ(v)+1} × {π(v)}` — and stamps its DAG neighbours; a
//!    candidate whose claims collide is deferred back to the queue head for
//!    the next round.  Disjoint claims make intra-batch evaluations
//!    (mostly) exact against the shared snapshot while still letting a wide
//!    superstep fan out across processors.
//! 3. **Fan out** gain evaluation on the rayon pool: each lane owns a private
//!    [`EvalScratch`] and runs the read-only `&HcCore` evaluation
//!    ([`HcCore::can_gain`] gate, [`HcCore::speculate_move`]) over its share
//!    of the batch, recording the first improving destination per node in
//!    the same canonical order the serial driver uses.
//! 4. **Commit serially**, in batch order: every winning move is re-validated
//!    against the *current* tallies (`move_window` + `try_move`) before it is
//!    applied.  A candidate whose speculative gain no longer holds — its gain
//!    was computed against tallies an earlier commit of the same batch has
//!    since changed — is re-enqueued, never mis-applied.  A stale-but-still-
//!    improving candidate is applied with its re-validated delta.
//!
//! Because batch composition, evaluation (pure against the snapshot), and
//! commit order are all independent of the thread count and of scheduling
//! interleavings, a search from a fixed initial state is **deterministic**:
//! any two runs — with any `threads ≥ 2` — accept the same move sequence.
//!
//! Steady-state rounds perform no heap allocation outside thread spawn: the
//! round/batch buffers, claim stamps, and per-lane scratches are all owned by
//! the [`ParallelHc`] driver and reused.

use super::state::{EvalScratch, HcCore};
use super::{enqueue_dirty, HcState, HillClimbConfig, HillClimbOutcome, SearchScratch};
use bsp_model::{DagView, Machine};
use rayon::prelude::*;
use std::time::Instant;

/// Instrumentation counters of one [`ParallelHc::search`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Evaluation rounds (drain → batch → fan-out → commit cycles).
    pub rounds: u64,
    /// Candidates evaluated speculatively across all rounds.
    pub evaluated: u64,
    /// Candidates whose speculative evaluation found an improving move.
    pub speculative_wins: u64,
    /// Moves committed (equals the outcome's `steps`).
    pub accepted: u64,
    /// Committed moves whose re-validated delta differed from the speculative
    /// one (still improving, so still applied).
    pub stale_applied: u64,
    /// Speculative wins rejected at commit time (no longer valid or no longer
    /// improving against the current tallies) and re-enqueued.
    pub stale_rejected: u64,
    /// Moves applied whose re-validated delta was non-improving.  The commit
    /// step re-checks every candidate, so this is structurally zero; it is
    /// counted (rather than assumed) so benchmarks can assert it.
    pub mis_applied: u64,
    /// Candidates pushed to a later round by the conflict-disjointness rule.
    pub deferred: u64,
}

/// Per-round batch bound: a round commits at most this many speculative
/// winners.  Deliberately independent of the lane count — batch composition
/// must not change with `threads`, or lane-count determinism would break.
/// Shared with the parallel `HCcs` driver so the two searches' round shapes
/// are tuned in one place.
pub(super) const BATCH_TARGET: usize = 64;
/// Per-round drain bound: at most this many queue entries pass the conflict
/// check per round, so a round's cost never scales with the backlog.
pub(super) const EXAMINE_CAP: usize = 8 * BATCH_TARGET;

/// The first improving destination a lane found for one candidate.
#[derive(Debug, Clone, Copy)]
struct FoundMove {
    p_new: usize,
    s_new: usize,
    delta: i64,
}

/// One evaluation lane: a private scratch plus this round's share of the
/// batch.  `found[i]` is the result for `candidates[i]`.
#[derive(Debug, Default)]
struct Lane {
    scratch: EvalScratch,
    candidates: Vec<usize>,
    found: Vec<Option<FoundMove>>,
}

impl Lane {
    fn evaluate<G: DagView>(&mut self, core: &HcCore<'_>, graph: &G, p: usize) {
        self.scratch.invalidate_prepared();
        for i in 0..self.candidates.len() {
            let v = self.candidates[i];
            let fm = Self::eval_candidate(core, &mut self.scratch, graph, v, p);
            self.found.push(fm);
        }
    }

    /// Mirrors the serial driver's `try_improve_node`: gate, window, then the
    /// canonical candidate order (superstep `s−1`, `s`, `s+1`; processors
    /// ascending), returning the first improving destination.
    fn eval_candidate<G: DagView>(
        core: &HcCore<'_>,
        scratch: &mut EvalScratch,
        graph: &G,
        v: usize,
        p: usize,
    ) -> Option<FoundMove> {
        if !core.can_gain(scratch, graph, v) {
            return None;
        }
        let (p_old, s_old) = (core.proc_of(v), core.step_of(v));
        let window = core.move_window(graph, v);
        let s_candidates = [s_old.wrapping_sub(1), s_old, s_old + 1];
        for &s_new in &s_candidates {
            if s_new == usize::MAX {
                continue; // wrapped below superstep 0
            }
            for p_new in 0..p {
                if p_new == p_old && s_new == s_old {
                    continue;
                }
                if !window.allows(p_new, s_new) {
                    continue;
                }
                let delta = core.speculate_move(scratch, graph, v, p_new, s_new);
                if delta < 0 {
                    return Some(FoundMove {
                        p_new,
                        s_new,
                        delta,
                    });
                }
            }
        }
        None
    }
}

/// Reusable batch-speculative parallel `HC` driver.  Construct once (per
/// solve or per refiner) and call [`ParallelHc::search`] any number of times;
/// all buffers — lanes, round/batch lists, claim stamps — are retained
/// across calls, so warm searches allocate nothing per round.
#[derive(Debug)]
pub struct ParallelHc {
    lanes: Vec<Lane>,
    /// This round's drained candidates, in work-list order.
    round: Vec<usize>,
    /// The conflict-disjoint subset selected for speculative evaluation.
    batch: Vec<usize>,
    /// Superstep rows claimed by the current batch (generation-stamped).
    claim_mark: Vec<u64>,
    /// Nodes that are a batch member or a DAG neighbour of one (stamped).
    neighbor_mark: Vec<u64>,
    claim_stamp: u64,
    stats: ParallelStats,
}

impl ParallelHc {
    /// A driver with `threads` evaluation lanes (at least one).
    pub fn new(threads: usize) -> Self {
        let lanes = (0..threads.max(1)).map(|_| Lane::default()).collect();
        ParallelHc {
            lanes,
            round: Vec::new(),
            batch: Vec::new(),
            claim_mark: Vec::new(),
            neighbor_mark: Vec::new(),
            claim_stamp: 0,
            stats: ParallelStats::default(),
        }
    }

    /// Number of evaluation lanes.
    pub fn threads(&self) -> usize {
        self.lanes.len()
    }

    /// Counters of the most recent [`ParallelHc::search`] call.
    pub fn stats(&self) -> &ParallelStats {
        &self.stats
    }

    /// The batch-speculative work-list search: the parallel counterpart of
    /// [`super::hc_search`], with identical semantics for `scratch` seeding,
    /// `full_sweep` certification, and the configured limits.
    pub fn search<G: DagView + Sync>(
        &mut self,
        graph: &G,
        machine: &Machine,
        state: &mut HcState<'_>,
        config: &HillClimbConfig,
        scratch: &mut SearchScratch,
        full_sweep: bool,
    ) -> HillClimbOutcome {
        let start = Instant::now();
        self.stats = ParallelStats::default();
        let initial_cost = state.total_cost();
        let n = graph.n();
        if scratch.in_queue.len() < n {
            scratch.in_queue.resize(n, false);
        }
        if self.neighbor_mark.len() < n {
            self.neighbor_mark.resize(n, 0);
        }
        // The bounded drain caps what one round can hold, so the buffers
        // are sized to the bounds, not to `n`.
        self.round
            .reserve(EXAMINE_CAP.saturating_sub(self.round.capacity()));
        self.batch
            .reserve(BATCH_TARGET.saturating_sub(self.batch.capacity()));
        let per_lane = BATCH_TARGET.div_ceil(self.lanes.len());
        for lane in &mut self.lanes {
            lane.scratch.fit(state.core());
            lane.candidates
                .reserve(per_lane.saturating_sub(lane.candidates.capacity()));
            lane.found
                .reserve(per_lane.saturating_sub(lane.found.capacity()));
        }

        let mut steps = 0usize;
        let mut reached_local_minimum = false;
        let over_limit = |start: &Instant, steps: usize| {
            steps >= config.max_steps
                || start.elapsed() > config.time_limit
                || config.cancel.is_cancelled()
        };

        'outer: loop {
            while !scratch.queue.is_empty() {
                if over_limit(&start, steps) {
                    break 'outer;
                }
                self.run_round(graph, machine, state, config, scratch, &mut steps);
            }
            if !full_sweep {
                break;
            }
            // Verification sweep: enqueue every active node and run the same
            // rounds; a sweep that accepts nothing certifies the local
            // minimum (the dirty-set rule is sound per move, but the body
            // cost `max` can hide second-order interactions).
            let before = steps;
            for v in 0..n {
                if graph.is_active(v) {
                    scratch.enqueue(v);
                }
            }
            while !scratch.queue.is_empty() {
                if over_limit(&start, steps) {
                    break 'outer;
                }
                self.run_round(graph, machine, state, config, scratch, &mut steps);
            }
            if steps == before {
                reached_local_minimum = true;
                break;
            }
        }
        // Leave the scratch clean for the next phase (limit-triggered exits
        // leave entries enqueued).
        while let Some(v) = scratch.queue.pop_front() {
            scratch.in_queue[v] = false;
        }
        HillClimbOutcome {
            steps,
            initial_cost,
            final_cost: state.total_cost(),
            reached_local_minimum,
        }
    }

    /// One drain → batch → fan-out → commit cycle.
    fn run_round<G: DagView + Sync>(
        &mut self,
        graph: &G,
        machine: &Machine,
        state: &mut HcState<'_>,
        config: &HillClimbConfig,
        scratch: &mut SearchScratch,
        steps: &mut usize,
    ) {
        let p = machine.p();
        self.stats.rounds += 1;

        // Select a conflict-disjoint batch straight off the work-list: a
        // candidate claims the `(superstep, processor)` tally cells its own
        // departure writes — `{τ(v)−1, τ(v), τ(v)+1} × {π(v)}` — and stamps
        // its DAG neighbourhood; a candidate whose claims collide is parked
        // in the defer buffer and retried next round.  Cell granularity is
        // what makes a wide superstep parallelize: nodes of one step on
        // *different* processors evaluate together, while two candidates
        // leaving the same processor cell (whose gains genuinely interact
        // through the row maxima) serialize.  Move windows only depend on
        // direct neighbours, so excluding neighbours also keeps every
        // batched candidate's feasibility stable across intra-batch commits;
        // everything the cell claims do not cover — destination cells,
        // contribution rows — is caught by the commit-time re-validation.
        //
        // The drain is **bounded** ([`BATCH_TARGET`] / [`EXAMINE_CAP`]): it
        // stops once the batch is full or enough candidates were examined,
        // and deferred candidates go back to the *head* of the queue.
        // Draining everything per round would re-run the claim check over
        // the whole backlog every round — quadratic churn when the tally
        // grid is small (few supersteps × processors caps the disjoint
        // batch width regardless of `n`).
        let batch_target = BATCH_TARGET;
        let examine_cap = EXAMINE_CAP;
        let cap = (state.num_supersteps() + 3) * p;
        if self.claim_mark.len() < cap {
            self.claim_mark.resize(cap, 0);
        }
        self.claim_stamp += 1;
        let stamp = self.claim_stamp;
        self.batch.clear();
        self.round.clear(); // defer buffer this round
        let mut examined = 0usize;
        while self.batch.len() < batch_target && examined < examine_cap {
            let Some(v) = scratch.queue.pop_front() else {
                break;
            };
            scratch.in_queue[v] = false;
            examined += 1;
            let s = state.step_of(v);
            let q = state.proc_of(v);
            let lo = s.saturating_sub(1);
            let hi = s + 1;
            let mut conflict = self.neighbor_mark[v] == stamp;
            if !conflict {
                for t in lo..=hi {
                    if self.claim_mark[t * p + q] == stamp {
                        conflict = true;
                        break;
                    }
                }
            }
            if conflict {
                self.stats.deferred += 1;
                self.round.push(v);
                continue;
            }
            for t in lo..=hi {
                self.claim_mark[t * p + q] = stamp;
            }
            self.neighbor_mark[v] = stamp;
            for &u in graph.predecessors(v) {
                self.neighbor_mark[u] = stamp;
            }
            for &w in graph.successors(v) {
                self.neighbor_mark[w] = stamp;
            }
            self.batch.push(v);
        }
        // Deferred candidates rejoin at the head, in their original order,
        // ahead of the untouched tail.
        for idx in (0..self.round.len()).rev() {
            let v = self.round[idx];
            if !scratch.in_queue[v] {
                scratch.in_queue[v] = true;
                scratch.queue.push_front(v);
            }
        }

        // Serially warm the shared summary caches the read-only evaluation
        // reads, so the concurrent phase never writes the core.
        {
            let (core, st_scratch) = state.parts_mut();
            for i in 0..self.batch.len() {
                core.warm_summaries(st_scratch, graph, self.batch[i]);
            }
        }

        // Distribute the batch round-robin over the lanes and fan out.  Tiny
        // batches are evaluated inline: spawning threads for a handful of
        // gated candidates costs more than it saves.
        let nl = self.lanes.len();
        for lane in &mut self.lanes {
            lane.candidates.clear();
            lane.found.clear();
        }
        for i in 0..self.batch.len() {
            let v = self.batch[i];
            self.lanes[i % nl].candidates.push(v);
        }
        self.stats.evaluated += self.batch.len() as u64;
        {
            let core = state.core();
            if self.batch.len() < 2 * nl {
                for lane in &mut self.lanes {
                    lane.evaluate(core, graph, p);
                }
            } else {
                self.lanes
                    .par_iter_mut()
                    .for_each(|lane| lane.evaluate(core, graph, p));
            }
        }

        // Serial commit in batch order with re-validation: a candidate whose
        // speculative gain was computed against tallies an earlier commit has
        // since changed either still improves (applied with its re-validated
        // delta) or is re-enqueued — never mis-applied.
        for i in 0..self.batch.len() {
            let v = self.batch[i];
            let Some(fm) = self.lanes[i % nl].found[i / nl] else {
                continue;
            };
            self.stats.speculative_wins += 1;
            if *steps >= config.max_steps {
                // Out of step budget: keep the candidate for a later call.
                scratch.enqueue(v);
                continue;
            }
            if !state.move_window(graph, v).allows(fm.p_new, fm.s_new) {
                self.stats.stale_rejected += 1;
                scratch.enqueue(v);
                continue;
            }
            let actual = state.try_move(graph, v, fm.p_new, fm.s_new);
            if actual < 0 {
                if actual != fm.delta {
                    self.stats.stale_applied += 1;
                }
                let applied = state.apply_move(graph, v, fm.p_new, fm.s_new);
                // Genuine runtime detection, not an assumption: the delta the
                // commit actually applied must improve, or the re-validation
                // above was broken.  The bench/CI gate asserts this stays 0.
                if applied >= 0 {
                    self.stats.mis_applied += 1;
                }
                *steps += 1;
                self.stats.accepted += 1;
                let SearchScratch { queue, in_queue } = scratch;
                enqueue_dirty(state, graph, v, queue, in_queue);
            } else {
                self.stats.stale_rejected += 1;
                scratch.enqueue(v);
            }
        }
    }
}
