//! Batch-speculative parallel driver for the `HC` local search.
//!
//! The serial work-list driver ([`super::hc_search`]) is inherently
//! sequential: every accepted move changes the tallies the next evaluation
//! reads.  This driver exploits the fact that *evaluation* dominates
//! *commitment* by orders of magnitude (most visits are gated or find no
//! improving destination) and parallelizes in the style of Mt-KaHyPar-like
//! speculative refinement:
//!
//! 1. **Drain** the head of the dirty work-list — boundedly, so one round
//!    never re-scans the whole backlog — applying the serial driver's sound
//!    [`HcState::node_can_gain`] gate as each node is popped: gated nodes
//!    are dropped on the spot and never claim cells, park anyone, or consume
//!    a batch slot (near a local minimum that makes a round cost exactly
//!    what the serial driver's pass costs).
//! 2. **Batch** a conflict-disjoint subset: a candidate claims the
//!    `(superstep, processor)` tally cells its departure writes —
//!    `{τ(v)−1, τ(v), τ(v)+1} × {π(v)}` — and stamps its DAG neighbours; a
//!    candidate whose claims collide is **parked** until a committed move
//!    re-enqueues it through the dirty rule (its superstep's tallies moved)
//!    or the work-list drains (claim-stamp generations; the losers of a
//!    collision are not re-examined every round).
//! 3. **Fan out** gain evaluation on the rayon pool: each lane owns a private
//!    [`EvalScratch`] and runs the read-only `&HcCore` evaluation
//!    ([`HcCore::can_gain`] gate, [`HcCore::speculate_move`]) over its share
//!    of the batch, recording the first improving destination per node in
//!    the same canonical order the serial driver uses — plus the set of
//!    superstep rows that evaluation read.
//! 4. **Commit serially**, in batch order, *reusing the speculative
//!    evaluation*: a winner none of whose read rows an earlier commit of the
//!    same round dirtied (and whose consumer-summary caches are still valid,
//!    and with no superstep-occupancy event this round) is applied directly —
//!    no second `try_move` evaluation; the commit's [`HcState::apply_move`]
//!    derives the identical contributions through the shared
//!    `gather_move_contribs` path, and an exact-inverse undo backstops the
//!    (designed-unreachable) case of a misclassified commit.  Only genuinely
//!    stale winners pay the classical re-validation (`move_window` +
//!    `try_move`); a winner that no longer improves is re-enqueued, never
//!    mis-applied.
//!
//! Feasibility within a round is stable by construction: batch members are
//! pairwise non-adjacent in the DAG and intra-round commits only move batch
//! members, so no commit can shift another batch member's move window.
//!
//! An **adaptive lane controller** watches the observed batch width: when it
//! stays below the break-even width (2 × [`crate::MIN_PARALLEL_LANES`],
//! deliberately independent of the configured lane count so lane-count
//! determinism survives) for [`FALLBACK_PATIENCE`] consecutive rounds, the
//! driver unparks everything and finishes the search with the serial
//! work-list driver — on narrow tally grids that is strictly cheaper than
//! batching.
//!
//! Because batch composition, evaluation (pure against the snapshot), commit
//! order, parking, and the fallback trigger are all independent of the thread
//! count and of scheduling interleavings, a search from a fixed initial state
//! is **deterministic**: any two runs — with any `threads ≥ 2` — accept the
//! same move sequence.
//!
//! Steady-state rounds perform no heap allocation outside thread spawn: the
//! batch/park buffers, claim and row-dirty stamps, and per-lane scratches are
//! all owned by the [`ParallelHc`] driver and reused.

use super::state::{EvalScratch, HcCore};
use super::{enqueue_dirty, hc_search, HcState, HillClimbConfig, HillClimbOutcome, SearchScratch};
use bsp_model::{DagView, Machine};
use rayon::prelude::*;
use std::time::Instant;

/// Instrumentation counters of one [`ParallelHc::search`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Evaluation rounds (drain → batch → fan-out → commit cycles).
    pub rounds: u64,
    /// Candidates evaluated speculatively across all rounds.
    pub evaluated: u64,
    /// Candidates whose speculative evaluation found an improving move.
    pub speculative_wins: u64,
    /// Moves committed (equals the outcome's `steps`, including any steps the
    /// adaptive serial fallback accepted).
    pub accepted: u64,
    /// Committed moves whose re-validated delta differed from the speculative
    /// one (still improving, so still applied).
    pub stale_applied: u64,
    /// Speculative wins rejected at commit time (no longer improving against
    /// the current tallies) and re-enqueued.
    pub stale_rejected: u64,
    /// Moves applied whose final delta was non-improving.  Fresh commits undo
    /// themselves via the exact inverse move and stale commits are re-checked
    /// before applying, so this is structurally zero; it is counted (rather
    /// than assumed) so benchmarks can assert it.
    pub mis_applied: u64,
    /// Distinct parking *decisions* made by the conflict-disjointness rule
    /// (each counts one candidate parked once — parked candidates are not
    /// re-examined until a commit's dirty rule re-enqueues them or the
    /// work-list drains).
    pub deferred: u64,
    /// Commits that reused the speculative delta directly (no second
    /// evaluation).
    pub reused_commits: u64,
    /// Commits that were genuinely stale and paid the classical
    /// `move_window` + `try_move` re-validation.
    pub revalidated_commits: u64,
    /// `true` if the adaptive controller dropped to the serial driver
    /// mid-search because batch widths stayed below the break-even.
    pub serial_fallback: bool,
}

/// Per-round batch bound: a round commits at most this many speculative
/// winners.  Deliberately independent of the lane count — batch composition
/// must not change with `threads`, or lane-count determinism would break.
/// Shared with the parallel `HCcs` driver so the two searches' round shapes
/// are tuned in one place.
pub(super) const BATCH_TARGET: usize = 64;
/// Per-round drain bound: at most this many queue entries pass the conflict
/// check per round, so a round's cost never scales with the backlog — and,
/// just as important, a round *parks* at most `EXAMINE_CAP − BATCH_TARGET`
/// candidates.  Overflow beyond the cap simply stays in the queue, which is
/// free; parking is not (every parked candidate re-pays the pop + gate when
/// it re-circulates), so the cap is deliberately tight.
pub(super) const EXAMINE_CAP: usize = 2 * BATCH_TARGET;

/// Batch widths below this cannot pay for the fan-out: twice the minimum
/// lane count ([`crate::MIN_PARALLEL_LANES`]) leaves at least half of even
/// the smallest viable fan-out idle.  A constant (not `2 × lanes`) so the
/// fallback trigger — and therefore the accepted move sequence — is
/// identical across lane counts.
const FALLBACK_WIDTH: usize = 2 * crate::MIN_PARALLEL_LANES;
/// Consecutive below-break-even rounds before the driver falls back to the
/// serial work-list search for the remainder of the call.  Eight rounds see
/// up to `8 × EXAMINE_CAP` candidates — enough to distinguish a genuinely
/// narrow conflict grid from a slow start, while capping the batching
/// machinery an instance that belongs on the serial driver ever pays for.
const FALLBACK_PATIENCE: u32 = 8;

/// The first improving destination a lane found for one candidate, plus the
/// range (into the lane's `rows` buffer) of superstep rows the winning
/// speculative evaluation read — the commit's freshness check compares them
/// against the rows earlier commits of the same round dirtied.
#[derive(Debug, Clone, Copy)]
struct FoundMove {
    p_new: usize,
    s_new: usize,
    delta: i64,
    rows_start: usize,
    rows_len: usize,
}

/// One evaluation lane: a private scratch plus this round's share of the
/// batch.  `found[i]` is the result for `candidates[i]`; `rows` backs the
/// winners' affected-row records.
#[derive(Debug, Default)]
struct Lane {
    scratch: EvalScratch,
    candidates: Vec<usize>,
    found: Vec<Option<FoundMove>>,
    rows: Vec<usize>,
}

impl Lane {
    fn evaluate<G: DagView>(&mut self, core: &HcCore<'_>, graph: &G, p: usize) {
        self.scratch.invalidate_prepared();
        for i in 0..self.candidates.len() {
            let v = self.candidates[i];
            let fm = Self::eval_candidate(core, &mut self.scratch, &mut self.rows, graph, v, p);
            self.found.push(fm);
        }
    }

    /// Mirrors the serial driver's `try_improve_node`: gate, window, then the
    /// canonical candidate order (superstep `s−1`, `s`, `s+1`; processors
    /// ascending), returning the first improving destination together with
    /// the rows its evaluation read.
    fn eval_candidate<G: DagView>(
        core: &HcCore<'_>,
        scratch: &mut EvalScratch,
        rows: &mut Vec<usize>,
        graph: &G,
        v: usize,
        p: usize,
    ) -> Option<FoundMove> {
        if !core.can_gain(scratch, graph, v) {
            return None;
        }
        let (p_old, s_old) = (core.proc_of(v), core.step_of(v));
        let window = core.move_window(graph, v);
        let s_candidates = [s_old.wrapping_sub(1), s_old, s_old + 1];
        for &s_new in &s_candidates {
            if s_new == usize::MAX {
                continue; // wrapped below superstep 0
            }
            for p_new in 0..p {
                if p_new == p_old && s_new == s_old {
                    continue;
                }
                if !window.allows(p_new, s_new) {
                    continue;
                }
                let delta = core.speculate_move(scratch, graph, v, p_new, s_new);
                if delta < 0 {
                    let rows_start = rows.len();
                    rows.extend_from_slice(scratch.affected_steps());
                    return Some(FoundMove {
                        p_new,
                        s_new,
                        delta,
                        rows_start,
                        rows_len: rows.len() - rows_start,
                    });
                }
            }
        }
        None
    }
}

/// How one work-list drain ended.
enum DrainEnd {
    /// Work-list and park list both empty.
    Empty,
    /// A configured limit (steps, time, cancellation) stopped the drain.
    Limit,
    /// The adaptive controller handed the rest of the search to the serial
    /// driver, which ran to completion (including its own certification
    /// sweeps when requested).
    Serial(HillClimbOutcome),
}

/// Reusable batch-speculative parallel `HC` driver.  Construct once (per
/// solve or per refiner) and call [`ParallelHc::search`] any number of times;
/// all buffers — lanes, batch/park lists, claim and row-dirty stamps — are
/// retained across calls, so warm searches allocate nothing per round.
#[derive(Debug)]
pub struct ParallelHc {
    lanes: Vec<Lane>,
    /// The conflict-disjoint subset selected for speculative evaluation.
    batch: Vec<usize>,
    /// Superstep rows claimed by the current batch (generation-stamped).
    claim_mark: Vec<u64>,
    /// Nodes that are a batch member or a DAG neighbour of one (stamped).
    neighbor_mark: Vec<u64>,
    claim_stamp: u64,
    /// Superstep rows dirtied by commits of the current round (stamped with
    /// `claim_stamp`); the commit-reuse freshness check reads it.
    row_dirty: Vec<u64>,
    /// Candidates parked by a claim collision, in parking order.  An entry is
    /// live iff its `parked_flag` is still set (lazy deletion).
    parked: Vec<usize>,
    parked_flag: Vec<bool>,
    /// Consecutive rounds whose batch width stayed below [`FALLBACK_WIDTH`].
    low_width_rounds: u32,
    /// Once set, the rest of the call runs the serial driver.
    serial_mode: bool,
    stats: ParallelStats,
}

impl ParallelHc {
    /// A driver with `threads` evaluation lanes (at least one).
    pub fn new(threads: usize) -> Self {
        let lanes = (0..threads.max(1)).map(|_| Lane::default()).collect();
        ParallelHc {
            lanes,
            batch: Vec::new(),
            claim_mark: Vec::new(),
            neighbor_mark: Vec::new(),
            claim_stamp: 0,
            row_dirty: Vec::new(),
            parked: Vec::new(),
            parked_flag: Vec::new(),
            low_width_rounds: 0,
            serial_mode: false,
            stats: ParallelStats::default(),
        }
    }

    /// Number of evaluation lanes.
    pub fn threads(&self) -> usize {
        self.lanes.len()
    }

    /// Counters of the most recent [`ParallelHc::search`] call.
    pub fn stats(&self) -> &ParallelStats {
        &self.stats
    }

    fn over_limit(config: &HillClimbConfig, start: &Instant, steps: usize) -> bool {
        steps >= config.max_steps
            || start.elapsed() > config.time_limit
            || config.cancel.is_cancelled()
    }

    /// Re-enqueues every live parked candidate in parking order and empties
    /// the park list.
    fn unpark_all(&mut self, scratch: &mut SearchScratch) {
        for i in 0..self.parked.len() {
            let v = self.parked[i];
            if self.parked_flag[v] {
                self.parked_flag[v] = false;
                scratch.enqueue(v);
            }
        }
        self.parked.clear();
    }

    /// The batch-speculative work-list search: the parallel counterpart of
    /// [`super::hc_search`], with identical semantics for `scratch` seeding,
    /// `full_sweep` certification, and the configured limits.
    pub fn search<G: DagView + Sync>(
        &mut self,
        graph: &G,
        machine: &Machine,
        state: &mut HcState<'_>,
        config: &HillClimbConfig,
        scratch: &mut SearchScratch,
        full_sweep: bool,
    ) -> HillClimbOutcome {
        let start = Instant::now();
        self.stats = ParallelStats::default();
        self.low_width_rounds = 0;
        self.serial_mode = false;
        let initial_cost = state.total_cost();
        let n = graph.n();
        if scratch.in_queue.len() < n {
            scratch.in_queue.resize(n, false);
        }
        if self.neighbor_mark.len() < n {
            self.neighbor_mark.resize(n, 0);
        }
        if self.parked_flag.len() < n {
            self.parked_flag.resize(n, false);
        }
        // The bounded drain caps what one round can hold, so the buffers
        // are sized to the bounds, not to `n`.
        self.batch
            .reserve(BATCH_TARGET.saturating_sub(self.batch.capacity()));
        let per_lane = BATCH_TARGET.div_ceil(self.lanes.len());
        for lane in &mut self.lanes {
            lane.scratch.fit(state.core());
            lane.candidates
                .reserve(per_lane.saturating_sub(lane.candidates.capacity()));
            lane.found
                .reserve(per_lane.saturating_sub(lane.found.capacity()));
        }

        let mut steps = 0usize;
        let mut reached_local_minimum = false;

        loop {
            match self.drain(
                graph, machine, state, config, scratch, &mut steps, &start, full_sweep,
            ) {
                DrainEnd::Limit => break,
                DrainEnd::Serial(out) => {
                    reached_local_minimum = out.reached_local_minimum;
                    break;
                }
                DrainEnd::Empty => {}
            }
            if !full_sweep {
                break;
            }
            // Verification sweep: enqueue every active node and run the same
            // rounds; a sweep that accepts nothing certifies the local
            // minimum (the dirty-set rule is sound per move, but the body
            // cost `max` can hide second-order interactions).
            let before = steps;
            for v in 0..n {
                if graph.is_active(v) {
                    scratch.enqueue(v);
                }
            }
            match self.drain(
                graph, machine, state, config, scratch, &mut steps, &start, full_sweep,
            ) {
                DrainEnd::Limit => break,
                DrainEnd::Serial(out) => {
                    reached_local_minimum = out.reached_local_minimum;
                    break;
                }
                DrainEnd::Empty => {}
            }
            if steps == before {
                reached_local_minimum = true;
                break;
            }
        }
        // Leave the scratch and the park list clean for the next phase
        // (limit-triggered exits leave entries behind).
        while let Some(v) = scratch.queue.pop_front() {
            scratch.in_queue[v] = false;
        }
        for i in 0..self.parked.len() {
            let v = self.parked[i];
            self.parked_flag[v] = false;
        }
        self.parked.clear();
        HillClimbOutcome {
            steps,
            initial_cost,
            final_cost: state.total_cost(),
            reached_local_minimum,
        }
    }

    /// Drains the work-list to empty: rounds, parked-candidate wake-ups (a
    /// drained queue unparks everything still waiting, so every enqueued node
    /// is eventually examined), and the adaptive serial fallback.
    #[allow(clippy::too_many_arguments)]
    fn drain<G: DagView + Sync>(
        &mut self,
        graph: &G,
        machine: &Machine,
        state: &mut HcState<'_>,
        config: &HillClimbConfig,
        scratch: &mut SearchScratch,
        steps: &mut usize,
        start: &Instant,
        full_sweep: bool,
    ) -> DrainEnd {
        loop {
            while !scratch.queue.is_empty() {
                if Self::over_limit(config, start, *steps) {
                    return DrainEnd::Limit;
                }
                if self.serial_mode {
                    // Batch widths stayed below the break-even: hand the rest
                    // of the search — including certification sweeps — to the
                    // serial driver, under the remaining budget.
                    self.unpark_all(scratch);
                    let sub = HillClimbConfig {
                        time_limit: config.time_limit.saturating_sub(start.elapsed()),
                        max_steps: config.max_steps.saturating_sub(*steps),
                        cancel: config.cancel.clone(),
                        threads: 1,
                    };
                    let out = hc_search(graph, machine, state, &sub, scratch, full_sweep);
                    *steps += out.steps;
                    self.stats.accepted += out.steps as u64;
                    return DrainEnd::Serial(out);
                }
                self.run_round(graph, machine, state, config, scratch, steps);
            }
            if self.parked.is_empty() {
                return DrainEnd::Empty;
            }
            self.unpark_all(scratch);
        }
    }

    /// One drain → batch → fan-out → commit cycle.
    fn run_round<G: DagView + Sync>(
        &mut self,
        graph: &G,
        machine: &Machine,
        state: &mut HcState<'_>,
        config: &HillClimbConfig,
        scratch: &mut SearchScratch,
        steps: &mut usize,
    ) {
        let p = machine.p();
        self.stats.rounds += 1;

        // Select a conflict-disjoint batch straight off the work-list: a
        // candidate claims the `(superstep, processor)` tally cells its own
        // departure writes — `{τ(v)−1, τ(v), τ(v)+1} × {π(v)}` — and stamps
        // its DAG neighbourhood; a candidate whose claims collide is *parked*
        // (see the commit loop's wake scan).  Cell granularity is what makes
        // a wide superstep parallelize: nodes of one step on *different*
        // processors evaluate together, while two candidates leaving the same
        // processor cell (whose gains genuinely interact through the row
        // maxima) serialize.  Move windows only depend on direct neighbours,
        // so excluding neighbours also keeps every batched candidate's
        // feasibility stable across intra-batch commits.
        //
        // The drain is **bounded** ([`BATCH_TARGET`] / [`EXAMINE_CAP`]): it
        // stops once the batch is full or enough candidates were examined, so
        // a round's cost never scales with the backlog.
        let batch_target = BATCH_TARGET;
        let examine_cap = EXAMINE_CAP;
        let cap = (state.num_supersteps() + 3) * p;
        if self.claim_mark.len() < cap {
            self.claim_mark.resize(cap, 0);
        }
        // Row-dirty capacity: commits can materialize up to `BATCH_TARGET`
        // new supersteps in one round, and every dirtied row index is bounded
        // by the then-current superstep count.
        let row_cap = state.num_supersteps() + BATCH_TARGET + 2;
        if self.row_dirty.len() < row_cap {
            self.row_dirty.resize(row_cap, 0);
        }
        self.claim_stamp += 1;
        let stamp = self.claim_stamp;
        self.batch.clear();
        let mut examined = 0usize;
        while self.batch.len() < batch_target && examined < examine_cap {
            let Some(v) = scratch.queue.pop_front() else {
                break;
            };
            scratch.in_queue[v] = false;
            // A parked candidate that something re-enqueued is back in
            // circulation; its park-list entry goes stale (lazy deletion).
            self.parked_flag[v] = false;
            examined += 1;
            // Gate *before* claiming, exactly like the serial driver: a node
            // that provably cannot gain must not consume a batch slot, claim
            // tally cells, or park anyone.  Without this, a work-list full of
            // gated nodes (an instance near its local minimum) still paid the
            // full conflict/park machinery per node per drain cycle.  This
            // also pre-warms the summary caches the lanes read.
            if !state.node_can_gain(graph, v) {
                continue;
            }
            let s = state.step_of(v);
            let q = state.proc_of(v);
            let lo = s.saturating_sub(1);
            let hi = s + 1;
            let mut conflict = self.neighbor_mark[v] == stamp;
            if !conflict {
                for t in lo..=hi {
                    if self.claim_mark[t * p + q] == stamp {
                        conflict = true;
                        break;
                    }
                }
            }
            if conflict {
                // Park: one deferral decision, not one per retry round.  The
                // candidate stays out of the work-list until a commit
                // re-enqueues it (`enqueue_dirty`) or the queue drains.
                self.stats.deferred += 1;
                self.parked_flag[v] = true;
                self.parked.push(v);
                continue;
            }
            for t in lo..=hi {
                self.claim_mark[t * p + q] = stamp;
            }
            self.neighbor_mark[v] = stamp;
            for &u in graph.predecessors(v) {
                self.neighbor_mark[u] = stamp;
            }
            for &w in graph.successors(v) {
                self.neighbor_mark[w] = stamp;
            }
            self.batch.push(v);
        }

        // Adaptive fallback bookkeeping: the width threshold is a constant
        // (not `2 × lanes`) so the trigger round is identical across lane
        // counts — see `FALLBACK_WIDTH`.
        if self.batch.len() < FALLBACK_WIDTH {
            self.low_width_rounds += 1;
            if self.low_width_rounds >= FALLBACK_PATIENCE {
                self.serial_mode = true;
                self.stats.serial_fallback = true;
            }
        } else {
            self.low_width_rounds = 0;
        }

        // The drain-time gate already warmed every batch member's summary
        // caches (and nothing commits between drain and fan-out), so the
        // concurrent phase reads the core without ever writing it.

        // Distribute the batch round-robin over the lanes and fan out.  Tiny
        // batches are evaluated inline: spawning threads for a handful of
        // gated candidates costs more than it saves.
        let nl = self.lanes.len();
        for lane in &mut self.lanes {
            lane.candidates.clear();
            lane.found.clear();
            lane.rows.clear();
        }
        for i in 0..self.batch.len() {
            let v = self.batch[i];
            self.lanes[i % nl].candidates.push(v);
        }
        self.stats.evaluated += self.batch.len() as u64;
        {
            let core = state.core();
            if self.batch.len() < 2 * nl {
                for lane in &mut self.lanes {
                    lane.evaluate(core, graph, p);
                }
            } else {
                self.lanes
                    .par_iter_mut()
                    .for_each(|lane| lane.evaluate(core, graph, p));
            }
        }

        // Serial commit in batch order, reusing the speculative evaluation
        // whenever it is provably still exact.  A winner is *fresh* iff
        //
        //  * no earlier commit of this round dirtied any superstep row its
        //    evaluation read (`row_dirty` vs the lane-recorded row set),
        //  * no earlier commit changed which supersteps are occupied or the
        //    superstep count (the latency term's trailing-occupancy scan
        //    reads rows outside the recorded set), and
        //  * the consumer-summary caches of `v` and its predecessors are
        //    still valid (a commit elsewhere can change a shared
        //    predecessor's summary *counts* without touching any tally row).
        //
        // Feasibility needs no re-check in either case: batch members are
        // pairwise non-adjacent and only batch members moved since
        // speculation, so the move window that held at evaluation still
        // holds.  Fresh winners are applied directly — `apply_move` derives
        // its contributions through the same `gather_move_contribs` path the
        // speculation used, and returns the true delta; if that delta ever
        // disagreed upward (misclassification), the exact inverse move
        // restores the previous state, so a stale move is *never* left
        // applied.  Genuinely stale winners pay the classical re-validation.
        let mut occupancy_event = false;
        for i in 0..self.batch.len() {
            let v = self.batch[i];
            let Some(fm) = self.lanes[i % nl].found[i / nl] else {
                continue;
            };
            self.stats.speculative_wins += 1;
            if *steps >= config.max_steps {
                // Out of step budget: keep the candidate for a later call.
                scratch.enqueue(v);
                continue;
            }
            let rows_clean = {
                let lane = &self.lanes[i % nl];
                let rows = &lane.rows[fm.rows_start..fm.rows_start + fm.rows_len];
                rows.iter().all(|&r| self.row_dirty[r] != stamp)
            };
            let fresh = !occupancy_event && rows_clean && state.core().summaries_current(graph, v);
            let (p_old, s_old) = (state.proc_of(v), state.step_of(v));
            let steps_before = state.num_supersteps();
            let src_occ = state.nodes_in_superstep(s_old).len();
            let dst_occ = state.nodes_in_superstep(fm.s_new).len();
            if fresh {
                let applied = state.apply_move(graph, v, fm.p_new, fm.s_new);
                debug_assert_eq!(
                    applied, fm.delta,
                    "reused speculative delta drifted from the committed one"
                );
                if applied >= 0 {
                    // Designed unreachable; the inverse move restores the
                    // exact previous state, so nothing stale sticks.
                    let undone = state.apply_move(graph, v, p_old, s_old);
                    debug_assert_eq!(undone, -applied);
                    self.stats.stale_rejected += 1;
                    scratch.enqueue(v);
                    continue;
                }
                self.stats.reused_commits += 1;
            } else {
                if !state.move_window(graph, v).allows(fm.p_new, fm.s_new) {
                    self.stats.stale_rejected += 1;
                    scratch.enqueue(v);
                    continue;
                }
                let actual = state.try_move(graph, v, fm.p_new, fm.s_new);
                if actual >= 0 {
                    self.stats.stale_rejected += 1;
                    scratch.enqueue(v);
                    continue;
                }
                if actual != fm.delta {
                    self.stats.stale_applied += 1;
                }
                let applied = state.apply_move(graph, v, fm.p_new, fm.s_new);
                // Genuine runtime detection, not an assumption: the delta the
                // commit actually applied must improve, or the re-validation
                // above was broken.  The bench/CI gate asserts this stays 0.
                if applied >= 0 {
                    self.stats.mis_applied += 1;
                }
                self.stats.revalidated_commits += 1;
            }
            *steps += 1;
            self.stats.accepted += 1;
            // Record what this commit changed, for the freshness checks of
            // the batch members still waiting and for the wake scan.
            occupancy_event |=
                state.num_supersteps() != steps_before || src_occ == 1 || dst_occ == 0;
            for &r in state.last_affected_steps() {
                if r >= self.row_dirty.len() {
                    self.row_dirty.resize(r + 1, 0);
                }
                self.row_dirty[r] = stamp;
            }
            let SearchScratch { queue, in_queue } = scratch;
            enqueue_dirty(state, graph, v, queue, in_queue);
        }

        // No explicit wake scan: `enqueue_dirty` above already re-enqueues
        // every node of a superstep a commit touched — which covers exactly
        // the parked candidates whose best move can have changed (their
        // park-list entries go stale via the lazy flag when they re-enter
        // circulation).  Parked candidates a commit did *not* disturb stay
        // parked until the work-list drains (`drain`'s `unpark_all`), which
        // is what certifies they are eventually examined.  An earlier design
        // additionally woke every parked candidate adjacent to a dirtied row;
        // on processor-concentrated schedules that re-circulated (and
        // re-gated) the same candidates hundreds of times per accepted move.
    }
}
