//! The `HCcs` hill climbing over communication schedules (§4.3).
//!
//! The assignment `(π, τ)` is fixed; only the superstep in which each required
//! value transfer happens is optimized.  Every requirement (value of `v` must
//! reach processor `q`) may be scheduled in any communication phase between
//! `τ(v)` and the superstep before the value is first used on `q`; the search
//! greedily moves single transfers to the phase that lowers the maximum
//! `h`-relation cost, until a local minimum or the time limit is reached.
//! Like the paper, transfers are always sent directly from `π(v)`.
//!
//! The state uses the same scratch-buffer treatment as [`super::HcState`]:
//! flat `[phase × processor]` tallies, a cached per-phase h-relation cost
//! patched incrementally, and a dirty work-list over requirements (re-enqueue
//! only the transfers whose placement window covers a phase the last accepted
//! move touched), with a verification sweep certifying the local minimum.

use super::{HillClimbConfig, HillClimbOutcome};
use bsp_model::{BspSchedule, CommSchedule, CommStep, Dag, Machine};
use std::collections::VecDeque;
use std::time::Instant;

/// One value transfer to place: NUMA-weighted volume, endpoints, and the
/// placement window `[earliest, latest]`.
#[derive(Debug, Clone, Copy)]
struct CsReq {
    weight: u64,
    from: usize,
    to: usize,
    earliest: usize,
    latest: usize,
    current: usize,
}

struct CsState<'a> {
    machine: &'a Machine,
    reqs: Vec<CsReq>,
    /// Flat send tallies, indexed `s * P + q`.
    send: Vec<u64>,
    /// Flat receive tallies, indexed `s * P + q`.
    recv: Vec<u64>,
    /// Cached h-relation cost per communication phase.
    phase_cost: Vec<u64>,
}

impl<'a> CsState<'a> {
    /// Recomputes the h-relation cost of phase `s` from the tallies.  `O(P)`.
    fn compute_phase_cost(&self, s: usize) -> u64 {
        let p = self.machine.p();
        let row = s * p;
        (0..p)
            .map(|q| self.send[row + q].max(self.recv[row + q]))
            .max()
            .unwrap_or(0)
    }

    /// Moves requirement `i` to communication phase `s_new`, returning the
    /// change in the total h-relation cost (unscaled by `g`).
    fn apply(&mut self, i: usize, s_new: usize) -> i64 {
        let req = self.reqs[i];
        let s_old = req.current;
        if s_new == s_old {
            return 0;
        }
        let p = self.machine.p();
        let before = self.phase_cost[s_old] + self.phase_cost[s_new];
        self.send[s_old * p + req.from] -= req.weight;
        self.recv[s_old * p + req.to] -= req.weight;
        self.send[s_new * p + req.from] += req.weight;
        self.recv[s_new * p + req.to] += req.weight;
        self.reqs[i].current = s_new;
        self.phase_cost[s_old] = self.compute_phase_cost(s_old);
        self.phase_cost[s_new] = self.compute_phase_cost(s_new);
        let after = self.phase_cost[s_old] + self.phase_cost[s_new];
        after as i64 - before as i64
    }

    /// Tries all phases in requirement `i`'s window and commits the first
    /// improving one.  Returns the touched `(old, new)` phases on acceptance.
    fn try_improve_req(&mut self, i: usize) -> Option<(usize, usize)> {
        let CsReq {
            earliest,
            latest,
            current,
            ..
        } = self.reqs[i];
        for s_new in earliest..=latest {
            if s_new == current {
                continue;
            }
            if self.apply(i, s_new) < 0 {
                return Some((current, s_new));
            }
            self.apply(i, current);
        }
        None
    }
}

/// Optimizes the communication schedule of `schedule` in place; `π` and `τ`
/// are left untouched.  Returns the outcome statistics (costs are full
/// schedule costs, so they are comparable with [`super::hc_improve`]).
pub fn hccs_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &HillClimbConfig,
) -> HillClimbOutcome {
    let start = Instant::now();
    let initial_cost = schedule.cost(dag, machine);
    let requirements = CommSchedule::requirements(dag, &schedule.assignment);
    if requirements.is_empty() {
        return HillClimbOutcome {
            steps: 0,
            initial_cost,
            final_cost: initial_cost,
            reached_local_minimum: true,
        };
    }

    // Where does the existing schedule place each requirement?  (Fall back to
    // the lazy placement if the transfer is missing, e.g. for a fresh lazy
    // schedule they coincide anyway.)
    let existing: std::collections::HashMap<(usize, usize, usize), usize> = schedule
        .comm
        .steps()
        .iter()
        .map(|cs| ((cs.node, cs.from, cs.to), cs.step))
        .collect();

    let num_steps = schedule.num_supersteps().max(1);
    let p = machine.p();
    let mut state = CsState {
        machine,
        reqs: Vec::with_capacity(requirements.len()),
        send: vec![0; num_steps * p],
        recv: vec![0; num_steps * p],
        phase_cost: vec![0; num_steps],
    };
    for r in &requirements {
        let earliest = r.earliest_step();
        let latest = r.latest_step();
        let current = existing
            .get(&(r.node, r.source, r.target))
            .copied()
            .filter(|&s| s >= earliest && s <= latest)
            .unwrap_or(latest);
        let w = dag.comm(r.node) * machine.lambda(r.source, r.target);
        state.send[current * p + r.source] += w;
        state.recv[current * p + r.target] += w;
        state.reqs.push(CsReq {
            weight: w,
            from: r.source,
            to: r.target,
            earliest,
            latest,
            current,
        });
    }
    for s in 0..num_steps {
        state.phase_cost[s] = state.compute_phase_cost(s);
    }

    // Static phase -> requirements index (windows never change): after a move
    // touches phases a and b, only requirements whose window covers a or b can
    // have gained an improving move.
    let mut phase_reqs: Vec<Vec<usize>> = vec![Vec::new(); num_steps];
    for (i, r) in state.reqs.iter().enumerate() {
        for s in r.earliest..=r.latest {
            phase_reqs[s].push(i);
        }
    }

    let num_reqs = state.reqs.len();
    let mut queue: VecDeque<usize> = (0..num_reqs).collect();
    let mut in_queue = vec![true; num_reqs];
    let enqueue_phase = |s: usize, queue: &mut VecDeque<usize>, in_queue: &mut [bool]| {
        for &i in &phase_reqs[s] {
            if !in_queue[i] {
                in_queue[i] = true;
                queue.push_back(i);
            }
        }
    };

    let mut steps = 0usize;
    let mut reached_local_minimum = false;
    'outer: loop {
        while let Some(i) = queue.pop_front() {
            in_queue[i] = false;
            if steps >= config.max_steps
                || start.elapsed() > config.time_limit
                || config.cancel.is_cancelled()
            {
                break 'outer;
            }
            if let Some((a, b)) = state.try_improve_req(i) {
                steps += 1;
                enqueue_phase(a, &mut queue, &mut in_queue);
                enqueue_phase(b, &mut queue, &mut in_queue);
            }
        }
        let mut sweep_improved = false;
        for i in 0..num_reqs {
            if steps >= config.max_steps
                || start.elapsed() > config.time_limit
                || config.cancel.is_cancelled()
            {
                break 'outer;
            }
            if let Some((a, b)) = state.try_improve_req(i) {
                steps += 1;
                sweep_improved = true;
                enqueue_phase(a, &mut queue, &mut in_queue);
                enqueue_phase(b, &mut queue, &mut in_queue);
            }
        }
        if !sweep_improved {
            reached_local_minimum = true;
            break;
        }
    }

    // Materialize the optimized communication schedule.
    let comm_steps: Vec<CommStep> = requirements
        .iter()
        .zip(&state.reqs)
        .map(|(r, req)| CommStep {
            node: r.node,
            from: r.source,
            to: r.target,
            step: req.current,
        })
        .collect();
    schedule.comm = CommSchedule::from_steps(comm_steps);
    let final_cost = schedule.cost(dag, machine);
    HillClimbOutcome {
        steps,
        initial_cost,
        final_cost,
        reached_local_minimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::Assignment;

    /// Processor 0 must send the value of node 0 to processor 1 in phase 0
    /// (it is needed in superstep 1), and processor 1 must send the value of
    /// node 1 to processor 0 before superstep 2.  The lazy schedule puts the
    /// second transfer in phase 1 and pays an h-relation in both phases;
    /// moving it into phase 0 (where it overlaps with the opposite-direction
    /// transfer) removes one h-relation entirely.
    fn spreading_example() -> (Dag, Machine, BspSchedule) {
        let dag =
            Dag::from_edges(4, &[(0, 2), (1, 3)], vec![1, 1, 1, 1], vec![10, 10, 1, 1]).unwrap();
        let machine = Machine::uniform(2, 2, 1);
        let assignment = Assignment {
            proc: vec![0, 1, 1, 0],
            superstep: vec![0, 0, 1, 2],
        };
        let sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        (dag, machine, sched)
    }

    #[test]
    fn hccs_overlaps_communication_phases_when_it_pays_off() {
        let (dag, machine, mut sched) = spreading_example();
        let before = sched.cost(&dag, &machine);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost < before, "no improvement over {before}");
        assert_eq!(outcome.final_cost, sched.cost(&dag, &machine));
        // Both transfers now share phase 0 (the second one moved forward).
        let steps: Vec<usize> = sched.comm.steps().iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![0, 0]);
    }

    #[test]
    fn hccs_is_a_no_op_without_communication() {
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let mut sched = BspSchedule::trivial(&dag);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert_eq!(outcome.steps, 0);
        assert!(outcome.reached_local_minimum);
        assert_eq!(outcome.initial_cost, outcome.final_cost);
    }

    #[test]
    fn hccs_never_invalidates_or_worsens() {
        let (dag, machine, mut sched) = spreading_example();
        let before = sched.cost(&dag, &machine);
        for _ in 0..3 {
            let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(outcome.final_cost <= before);
        }
    }

    #[test]
    fn numa_weights_influence_the_h_relation() {
        let (dag, _machine, _) = spreading_example();
        let machine = Machine::numa_binary_tree(4, 1, 1, 4);
        let assignment = Assignment {
            proc: vec![0, 1, 3, 3],
            superstep: vec![0, 0, 2, 2],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost <= before);
    }
}
