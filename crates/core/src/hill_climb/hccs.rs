//! The `HCcs` hill climbing over communication schedules (§4.3).
//!
//! The assignment `(π, τ)` is fixed; only the superstep in which each required
//! value transfer happens is optimized.  Every requirement (value of `v` must
//! reach processor `q`) may be scheduled in any communication phase between
//! `τ(v)` and the superstep before the value is first used on `q`; the search
//! greedily moves single transfers to the phase that lowers the maximum
//! `h`-relation cost, until a local minimum or the time limit is reached.
//! Like the paper, transfers are always sent directly from `π(v)`.

use super::{HillClimbConfig, HillClimbOutcome};
use bsp_model::{BspSchedule, CommSchedule, CommStep, Dag, Machine};
use std::time::Instant;

struct CsState<'a> {
    machine: &'a Machine,
    /// For each requirement: (weighted volume, source proc, target proc,
    /// earliest step, latest step, current step).
    reqs: Vec<(u64, usize, usize, usize, usize, usize)>,
    send: Vec<Vec<u64>>,
    recv: Vec<Vec<u64>>,
}

impl<'a> CsState<'a> {
    fn comm_cost(&self, s: usize) -> u64 {
        (0..self.machine.p())
            .map(|q| self.send[s][q].max(self.recv[s][q]))
            .max()
            .unwrap_or(0)
    }

    /// Moves requirement `i` to communication phase `s_new`, returning the
    /// change in the total h-relation cost (unscaled by `g`).
    fn apply(&mut self, i: usize, s_new: usize) -> i64 {
        let (w, from, to, _, _, s_old) = self.reqs[i];
        if s_new == s_old {
            return 0;
        }
        let before = self.comm_cost(s_old) + self.comm_cost(s_new);
        self.send[s_old][from] -= w;
        self.recv[s_old][to] -= w;
        self.send[s_new][from] += w;
        self.recv[s_new][to] += w;
        self.reqs[i].5 = s_new;
        let after = self.comm_cost(s_old) + self.comm_cost(s_new);
        after as i64 - before as i64
    }
}

/// Optimizes the communication schedule of `schedule` in place; `π` and `τ`
/// are left untouched.  Returns the outcome statistics (costs are full
/// schedule costs, so they are comparable with [`super::hc_improve`]).
pub fn hccs_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &HillClimbConfig,
) -> HillClimbOutcome {
    let start = Instant::now();
    let initial_cost = schedule.cost(dag, machine);
    let requirements = CommSchedule::requirements(dag, &schedule.assignment);
    if requirements.is_empty() {
        return HillClimbOutcome {
            steps: 0,
            initial_cost,
            final_cost: initial_cost,
            reached_local_minimum: true,
        };
    }

    // Where does the existing schedule place each requirement?  (Fall back to
    // the lazy placement if the transfer is missing, e.g. for a fresh lazy
    // schedule they coincide anyway.)
    let existing: std::collections::HashMap<(usize, usize, usize), usize> = schedule
        .comm
        .steps()
        .iter()
        .map(|cs| ((cs.node, cs.from, cs.to), cs.step))
        .collect();

    let num_steps = schedule.num_supersteps().max(1);
    let p = machine.p();
    let mut state = CsState {
        machine,
        reqs: Vec::with_capacity(requirements.len()),
        send: vec![vec![0; p]; num_steps],
        recv: vec![vec![0; p]; num_steps],
    };
    for r in &requirements {
        let earliest = r.earliest_step();
        let latest = r.latest_step();
        let current = existing
            .get(&(r.node, r.source, r.target))
            .copied()
            .filter(|&s| s >= earliest && s <= latest)
            .unwrap_or(latest);
        let w = dag.comm(r.node) * machine.lambda(r.source, r.target);
        state.send[current][r.source] += w;
        state.recv[current][r.target] += w;
        state
            .reqs
            .push((w, r.source, r.target, earliest, latest, current));
    }

    let mut steps = 0usize;
    let mut reached_local_minimum = false;
    'outer: loop {
        let mut improved = false;
        for i in 0..state.reqs.len() {
            if steps >= config.max_steps || start.elapsed() > config.time_limit {
                break 'outer;
            }
            let (_, _, _, earliest, latest, current) = state.reqs[i];
            for s_new in earliest..=latest {
                if s_new == current {
                    continue;
                }
                let delta = state.apply(i, s_new);
                if delta < 0 {
                    steps += 1;
                    improved = true;
                    break;
                }
                state.apply(i, current);
            }
        }
        if !improved {
            reached_local_minimum = true;
            break;
        }
    }

    // Materialize the optimized communication schedule.
    let comm_steps: Vec<CommStep> = requirements
        .iter()
        .zip(&state.reqs)
        .map(|(r, &(_, _, _, _, _, step))| CommStep {
            node: r.node,
            from: r.source,
            to: r.target,
            step,
        })
        .collect();
    schedule.comm = CommSchedule::from_steps(comm_steps);
    let final_cost = schedule.cost(dag, machine);
    HillClimbOutcome {
        steps,
        initial_cost,
        final_cost,
        reached_local_minimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::Assignment;

    /// Processor 0 must send the value of node 0 to processor 1 in phase 0
    /// (it is needed in superstep 1), and processor 1 must send the value of
    /// node 1 to processor 0 before superstep 2.  The lazy schedule puts the
    /// second transfer in phase 1 and pays an h-relation in both phases;
    /// moving it into phase 0 (where it overlaps with the opposite-direction
    /// transfer) removes one h-relation entirely.
    fn spreading_example() -> (Dag, Machine, BspSchedule) {
        let dag = Dag::from_edges(
            4,
            &[(0, 2), (1, 3)],
            vec![1, 1, 1, 1],
            vec![10, 10, 1, 1],
        )
        .unwrap();
        let machine = Machine::uniform(2, 2, 1);
        let assignment = Assignment {
            proc: vec![0, 1, 1, 0],
            superstep: vec![0, 0, 1, 2],
        };
        let sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        (dag, machine, sched)
    }

    #[test]
    fn hccs_overlaps_communication_phases_when_it_pays_off() {
        let (dag, machine, mut sched) = spreading_example();
        let before = sched.cost(&dag, &machine);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost < before, "no improvement over {before}");
        assert_eq!(outcome.final_cost, sched.cost(&dag, &machine));
        // Both transfers now share phase 0 (the second one moved forward).
        let steps: Vec<usize> = sched.comm.steps().iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![0, 0]);
    }

    #[test]
    fn hccs_is_a_no_op_without_communication() {
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let mut sched = BspSchedule::trivial(&dag);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert_eq!(outcome.steps, 0);
        assert!(outcome.reached_local_minimum);
        assert_eq!(outcome.initial_cost, outcome.final_cost);
    }

    #[test]
    fn hccs_never_invalidates_or_worsens() {
        let (dag, machine, mut sched) = spreading_example();
        let before = sched.cost(&dag, &machine);
        for _ in 0..3 {
            let outcome =
                hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(outcome.final_cost <= before);
        }
    }

    #[test]
    fn numa_weights_influence_the_h_relation() {
        let (dag, _machine, _) = spreading_example();
        let machine = Machine::numa_binary_tree(4, 1, 1, 4);
        let assignment = Assignment {
            proc: vec![0, 1, 3, 3],
            superstep: vec![0, 0, 2, 2],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost <= before);
    }
}
