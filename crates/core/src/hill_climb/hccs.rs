//! The `HCcs` hill climbing over communication schedules (§4.3).
//!
//! The assignment `(π, τ)` is fixed; only the superstep in which each required
//! value transfer happens is optimized.  Every requirement (value of `v` must
//! reach processor `q`) may be scheduled in any communication phase between
//! `τ(v)` and the superstep before the value is first used on `q`; the search
//! greedily moves single transfers to the phase that lowers the maximum
//! `h`-relation cost, until a local minimum or the time limit is reached.
//! Like the paper, transfers are always sent directly from `π(v)`.
//!
//! The state uses the same scratch-buffer treatment as [`super::HcState`]:
//! flat `[phase × processor]` tallies, a cached per-phase h-relation cost
//! patched incrementally, and a dirty work-list over requirements (re-enqueue
//! only the transfers whose placement window covers a phase the last accepted
//! move touched), with a verification sweep certifying the local minimum.
//!
//! With [`HillClimbConfig::threads`] above one the search runs the same
//! batch-speculative scheme as the parallel `HC` driver: the dirty list is
//! drained into batches of requirements with *disjoint placement windows*
//! (two such requirements can never touch the same phase row), gain
//! evaluation fans out read-only on the rayon pool
//! ([`CsState::speculate`]), and winners commit serially in batch order.
//! Window disjointness makes intra-batch staleness impossible, so a commit
//! applies the speculative result directly (no second evaluation), with an
//! exact-inverse undo as the backstop — a non-improving candidate is
//! re-enqueued, never mis-applied.  A requirement whose window collides with
//! the current batch is *parked*, not retried every round: the commit step's
//! phase-indexed re-enqueue wakes it when a move touches its window, and a
//! drained queue unparks everything still waiting.

use super::parallel::{BATCH_TARGET, EXAMINE_CAP};
use super::{HillClimbConfig, HillClimbOutcome};
use bsp_model::{BspSchedule, CommSchedule, CommStep, Dag, Machine};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::time::Instant;

/// One value transfer to place: NUMA-weighted volume, endpoints, and the
/// placement window `[earliest, latest]`.
#[derive(Debug, Clone, Copy)]
struct CsReq {
    weight: u64,
    from: usize,
    to: usize,
    earliest: usize,
    latest: usize,
    current: usize,
}

struct CsState<'a> {
    machine: &'a Machine,
    reqs: Vec<CsReq>,
    /// Flat send tallies, indexed `s * P + q`.
    send: Vec<u64>,
    /// Flat receive tallies, indexed `s * P + q`.
    recv: Vec<u64>,
    /// Cached h-relation cost per communication phase.
    phase_cost: Vec<u64>,
}

impl<'a> CsState<'a> {
    /// Recomputes the h-relation cost of phase `s` from the tallies.  `O(P)`.
    fn compute_phase_cost(&self, s: usize) -> u64 {
        let p = self.machine.p();
        let row = s * p;
        (0..p)
            .map(|q| self.send[row + q].max(self.recv[row + q]))
            .max()
            .unwrap_or(0)
    }

    /// Moves requirement `i` to communication phase `s_new`, returning the
    /// change in the total h-relation cost (unscaled by `g`).
    fn apply(&mut self, i: usize, s_new: usize) -> i64 {
        let req = self.reqs[i];
        let s_old = req.current;
        if s_new == s_old {
            return 0;
        }
        let p = self.machine.p();
        let before = self.phase_cost[s_old] + self.phase_cost[s_new];
        self.send[s_old * p + req.from] -= req.weight;
        self.recv[s_old * p + req.to] -= req.weight;
        self.send[s_new * p + req.from] += req.weight;
        self.recv[s_new * p + req.to] += req.weight;
        self.reqs[i].current = s_new;
        self.phase_cost[s_old] = self.compute_phase_cost(s_old);
        self.phase_cost[s_new] = self.compute_phase_cost(s_new);
        let after = self.phase_cost[s_old] + self.phase_cost[s_new];
        after as i64 - before as i64
    }

    /// Tries all phases in requirement `i`'s window and commits the first
    /// improving one.  Returns the touched `(old, new)` phases on acceptance.
    fn try_improve_req(&mut self, i: usize) -> Option<(usize, usize)> {
        let CsReq {
            earliest,
            latest,
            current,
            ..
        } = self.reqs[i];
        for s_new in earliest..=latest {
            if s_new == current {
                continue;
            }
            if self.apply(i, s_new) < 0 {
                return Some((current, s_new));
            }
            self.apply(i, current);
        }
        None
    }

    /// The h-relation cost of phase `s` with `dw` added to `from`'s send and
    /// `to`'s receive tallies — a read-only row scan, so it can run from many
    /// threads at once.
    fn phase_cost_with(&self, s: usize, from: usize, to: usize, dw: i64) -> u64 {
        let p = self.machine.p();
        let row = s * p;
        let mut m = 0u64;
        for q in 0..p {
            let mut sd = self.send[row + q] as i64;
            let mut rc = self.recv[row + q] as i64;
            if q == from {
                sd += dw;
            }
            if q == to {
                rc += dw;
            }
            debug_assert!(sd >= 0 && rc >= 0, "speculative phase tally underflow");
            m = m.max(sd.max(rc) as u64);
        }
        m
    }

    /// Read-only counterpart of [`CsState::apply`]: the exact change in the
    /// total h-relation cost of moving requirement `i` to phase `s_new`,
    /// without touching any tally.  `O(P)` per touched phase.
    fn speculate(&self, i: usize, s_new: usize) -> i64 {
        let req = self.reqs[i];
        let s_old = req.current;
        if s_new == s_old {
            return 0;
        }
        let w = req.weight as i64;
        let before = self.phase_cost[s_old] + self.phase_cost[s_new];
        let after = self.phase_cost_with(s_old, req.from, req.to, -w)
            + self.phase_cost_with(s_new, req.from, req.to, w);
        after as i64 - before as i64
    }

    /// First improving phase in requirement `i`'s window (the same canonical
    /// order as [`CsState::try_improve_req`]), evaluated read-only.
    fn speculate_improve_req(&self, i: usize) -> Option<(usize, i64)> {
        let CsReq {
            earliest,
            latest,
            current,
            ..
        } = self.reqs[i];
        for s_new in earliest..=latest {
            if s_new == current {
                continue;
            }
            let delta = self.speculate(i, s_new);
            if delta < 0 {
                return Some((s_new, delta));
            }
        }
        None
    }
}

/// One evaluation lane of the parallel `HCcs` driver: this round's share of
/// the batch plus the per-candidate results (`found[i]` belongs to
/// `candidates[i]`).
#[derive(Debug, Default)]
struct CsLane {
    candidates: Vec<usize>,
    found: Vec<Option<(usize, i64)>>,
}

impl CsLane {
    fn evaluate(&mut self, state: &CsState<'_>) {
        for idx in 0..self.candidates.len() {
            let i = self.candidates[idx];
            self.found.push(state.speculate_improve_req(i));
        }
    }
}

/// The classical single-threaded first-improvement search: dirty work-list
/// plus verification sweeps.  Returns `(steps, certified)`.
fn serial_cs_search(
    state: &mut CsState<'_>,
    phase_reqs: &[Vec<usize>],
    config: &HillClimbConfig,
    start: Instant,
) -> (usize, bool) {
    let num_reqs = state.reqs.len();
    let mut queue: VecDeque<usize> = (0..num_reqs).collect();
    let mut in_queue = vec![true; num_reqs];
    let enqueue_phase = |s: usize, queue: &mut VecDeque<usize>, in_queue: &mut [bool]| {
        for &i in &phase_reqs[s] {
            if !in_queue[i] {
                in_queue[i] = true;
                queue.push_back(i);
            }
        }
    };

    let mut steps = 0usize;
    let mut reached_local_minimum = false;
    'outer: loop {
        while let Some(i) = queue.pop_front() {
            in_queue[i] = false;
            if steps >= config.max_steps
                || start.elapsed() > config.time_limit
                || config.cancel.is_cancelled()
            {
                break 'outer;
            }
            if let Some((a, b)) = state.try_improve_req(i) {
                steps += 1;
                enqueue_phase(a, &mut queue, &mut in_queue);
                enqueue_phase(b, &mut queue, &mut in_queue);
            }
        }
        let mut sweep_improved = false;
        for i in 0..num_reqs {
            if steps >= config.max_steps
                || start.elapsed() > config.time_limit
                || config.cancel.is_cancelled()
            {
                break 'outer;
            }
            if let Some((a, b)) = state.try_improve_req(i) {
                steps += 1;
                sweep_improved = true;
                enqueue_phase(a, &mut queue, &mut in_queue);
                enqueue_phase(b, &mut queue, &mut in_queue);
            }
        }
        if !sweep_improved {
            reached_local_minimum = true;
            break;
        }
    }
    (steps, reached_local_minimum)
}

/// Mutable driver buffers of [`parallel_cs_search`], bundled so one round can
/// be expressed as a single reusable call.
struct CsDriver {
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
    lanes: Vec<CsLane>,
    batch: Vec<usize>,
    claim: Vec<u64>,
    stamp: u64,
    /// Requirements parked by a window collision, in parking order; an entry
    /// is live iff its `parked_flag` is still set (lazy deletion).
    parked: Vec<usize>,
    parked_flag: Vec<bool>,
}

impl CsDriver {
    fn enqueue(&mut self, i: usize) {
        if !self.in_queue[i] {
            self.in_queue[i] = true;
            self.queue.push_back(i);
        }
    }

    /// Re-enqueues every live parked requirement in parking order and empties
    /// the park list.
    fn unpark_all(&mut self) {
        for idx in 0..self.parked.len() {
            let i = self.parked[idx];
            if self.parked_flag[i] {
                self.parked_flag[i] = false;
                if !self.in_queue[i] {
                    self.in_queue[i] = true;
                    self.queue.push_back(i);
                }
            }
        }
        self.parked.clear();
    }

    /// One drain → window-disjoint batch → fan-out → commit cycle.
    fn run_round(
        &mut self,
        state: &mut CsState<'_>,
        phase_reqs: &[Vec<usize>],
        max_steps: usize,
        steps: &mut usize,
    ) {
        // Window-disjoint batch off the head of the dirty list: a
        // requirement claims its whole placement window, so no two batch
        // members can ever touch the same phase row — intra-batch
        // evaluations stay exact.  The drain is bounded by the same
        // lane-count-independent limits as the `HC` driver's (shared
        // `BATCH_TARGET`/`EXAMINE_CAP`): re-running the claim check over
        // the whole backlog every round is quadratic when windows overlap
        // heavily, and batch composition (and with it the result) must
        // never depend on `threads`.  A requirement that loses a collision
        // is *parked* — one deferral decision, not one per retry round:
        // the commit step's phase-indexed re-enqueue wakes it as soon as a
        // move touches a phase in its window, and the drain loop unparks
        // everything once the queue empties.
        self.stamp += 1;
        let stamp = self.stamp;
        self.batch.clear();
        let mut examined = 0usize;
        while self.batch.len() < BATCH_TARGET && examined < EXAMINE_CAP {
            let Some(i) = self.queue.pop_front() else {
                break;
            };
            self.in_queue[i] = false;
            // Back in circulation: its park-list entry goes stale.
            self.parked_flag[i] = false;
            examined += 1;
            let r = state.reqs[i];
            if (r.earliest..=r.latest).any(|s| self.claim[s] == stamp) {
                self.parked_flag[i] = true;
                self.parked.push(i);
                continue;
            }
            for s in r.earliest..=r.latest {
                self.claim[s] = stamp;
            }
            self.batch.push(i);
        }
        // Fan gain evaluation out (inline for tiny batches: spawning threads
        // for a handful of candidates costs more than it saves).
        let nl = self.lanes.len();
        for lane in &mut self.lanes {
            lane.candidates.clear();
            lane.found.clear();
        }
        for k in 0..self.batch.len() {
            let i = self.batch[k];
            self.lanes[k % nl].candidates.push(i);
        }
        if self.batch.len() < 2 * nl {
            for lane in &mut self.lanes {
                lane.evaluate(state);
            }
        } else {
            let shared: &CsState<'_> = state;
            self.lanes
                .par_iter_mut()
                .for_each(|lane| lane.evaluate(shared));
        }
        // Serial commit in batch order, reusing the speculative result
        // directly: window disjointness means no commit of this round can
        // have touched any phase a later batch member's evaluation read, so
        // the speculative delta is exact and a second evaluation would be
        // pure waste.  `apply` returns the true delta as it patches, and the
        // inverse move is an exact undo — so even a broken disjointness
        // argument could not leave a worsening move applied.
        for k in 0..self.batch.len() {
            let i = self.batch[k];
            let Some((s_target, delta)) = self.lanes[k % nl].found[k / nl] else {
                continue;
            };
            if *steps >= max_steps {
                self.enqueue(i);
                continue;
            }
            let s_old = state.reqs[i].current;
            let actual = state.apply(i, s_target);
            debug_assert_eq!(
                actual, delta,
                "window-disjoint commit drifted from its speculation"
            );
            if actual >= 0 {
                state.apply(i, s_old);
                self.enqueue(i);
                continue;
            }
            *steps += 1;
            for s in [s_old, s_target] {
                for idx in 0..phase_reqs[s].len() {
                    self.enqueue(phase_reqs[s][idx]);
                }
            }
        }
    }
}

/// The batch-speculative parallel `HCcs` search: same semantics as the serial
/// loop in [`hccs_improve`], with window-disjoint batches evaluated on the
/// rayon pool and serial re-validated commits.  Returns `(steps, certified)`.
fn parallel_cs_search(
    state: &mut CsState<'_>,
    phase_reqs: &[Vec<usize>],
    config: &HillClimbConfig,
    threads: usize,
    start: Instant,
) -> (usize, bool) {
    let num_reqs = state.reqs.len();
    let mut driver = CsDriver {
        queue: (0..num_reqs).collect(),
        in_queue: vec![true; num_reqs],
        lanes: (0..threads.max(1)).map(|_| CsLane::default()).collect(),
        // The bounded drain caps what one round can hold, so the batch
        // buffer is sized to the round bound, not the requirement count.
        batch: Vec::with_capacity(BATCH_TARGET),
        claim: vec![0u64; phase_reqs.len()],
        stamp: 0,
        parked: Vec::new(),
        parked_flag: vec![false; num_reqs],
    };
    let mut steps = 0usize;
    let mut reached_local_minimum = false;
    let over_limit = |start: &Instant, steps: usize| {
        steps >= config.max_steps
            || start.elapsed() > config.time_limit
            || config.cancel.is_cancelled()
    };

    'outer: loop {
        // Drain to empty; a drained queue unparks everything still waiting,
        // so every enqueued requirement is eventually examined.
        loop {
            while !driver.queue.is_empty() {
                if over_limit(&start, steps) {
                    break 'outer;
                }
                driver.run_round(state, phase_reqs, config.max_steps, &mut steps);
            }
            if driver.parked.is_empty() {
                break;
            }
            driver.unpark_all();
        }
        // Verification sweep, expressed as a full re-enqueue: a cycle that
        // accepts nothing certifies the local minimum.
        let before = steps;
        for i in 0..num_reqs {
            driver.enqueue(i);
        }
        loop {
            while !driver.queue.is_empty() {
                if over_limit(&start, steps) {
                    break 'outer;
                }
                driver.run_round(state, phase_reqs, config.max_steps, &mut steps);
            }
            if driver.parked.is_empty() {
                break;
            }
            driver.unpark_all();
        }
        if steps == before {
            reached_local_minimum = true;
            break;
        }
    }
    (steps, reached_local_minimum)
}

/// Optimizes the communication schedule of `schedule` in place; `π` and `τ`
/// are left untouched.  Returns the outcome statistics (costs are full
/// schedule costs, so they are comparable with [`super::hc_improve`]).
pub fn hccs_improve(
    dag: &Dag,
    machine: &Machine,
    schedule: &mut BspSchedule,
    config: &HillClimbConfig,
) -> HillClimbOutcome {
    let start = Instant::now();
    let initial_cost = schedule.cost(dag, machine);
    let requirements = CommSchedule::requirements(dag, &schedule.assignment);
    if requirements.is_empty() {
        return HillClimbOutcome {
            steps: 0,
            initial_cost,
            final_cost: initial_cost,
            reached_local_minimum: true,
        };
    }

    // Where does the existing schedule place each requirement?  (Fall back to
    // the lazy placement if the transfer is missing, e.g. for a fresh lazy
    // schedule they coincide anyway.)
    let existing: std::collections::HashMap<(usize, usize, usize), usize> = schedule
        .comm
        .steps()
        .iter()
        .map(|cs| ((cs.node, cs.from, cs.to), cs.step))
        .collect();

    let num_steps = schedule.num_supersteps().max(1);
    let p = machine.p();
    let mut state = CsState {
        machine,
        reqs: Vec::with_capacity(requirements.len()),
        send: vec![0; num_steps * p],
        recv: vec![0; num_steps * p],
        phase_cost: vec![0; num_steps],
    };
    for r in &requirements {
        let earliest = r.earliest_step();
        let latest = r.latest_step();
        let current = existing
            .get(&(r.node, r.source, r.target))
            .copied()
            .filter(|&s| s >= earliest && s <= latest)
            .unwrap_or(latest);
        let w = dag.comm(r.node) * machine.lambda(r.source, r.target);
        state.send[current * p + r.source] += w;
        state.recv[current * p + r.target] += w;
        state.reqs.push(CsReq {
            weight: w,
            from: r.source,
            to: r.target,
            earliest,
            latest,
            current,
        });
    }
    for s in 0..num_steps {
        state.phase_cost[s] = state.compute_phase_cost(s);
    }

    // Static phase -> requirements index (windows never change): after a move
    // touches phases a and b, only requirements whose window covers a or b can
    // have gained an improving move.
    let mut phase_reqs: Vec<Vec<usize>> = vec![Vec::new(); num_steps];
    for (i, r) in state.reqs.iter().enumerate() {
        for s in r.earliest..=r.latest {
            phase_reqs[s].push(i);
        }
    }

    let threads = config.effective_threads();
    let (steps, reached_local_minimum) = if threads > 1 {
        parallel_cs_search(&mut state, &phase_reqs, config, threads, start)
    } else {
        serial_cs_search(&mut state, &phase_reqs, config, start)
    };

    // Materialize the optimized communication schedule.
    let comm_steps: Vec<CommStep> = requirements
        .iter()
        .zip(&state.reqs)
        .map(|(r, req)| CommStep {
            node: r.node,
            from: r.source,
            to: r.target,
            step: req.current,
        })
        .collect();
    schedule.comm = CommSchedule::from_steps(comm_steps);
    let final_cost = schedule.cost(dag, machine);
    HillClimbOutcome {
        steps,
        initial_cost,
        final_cost,
        reached_local_minimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::Assignment;

    /// Processor 0 must send the value of node 0 to processor 1 in phase 0
    /// (it is needed in superstep 1), and processor 1 must send the value of
    /// node 1 to processor 0 before superstep 2.  The lazy schedule puts the
    /// second transfer in phase 1 and pays an h-relation in both phases;
    /// moving it into phase 0 (where it overlaps with the opposite-direction
    /// transfer) removes one h-relation entirely.
    fn spreading_example() -> (Dag, Machine, BspSchedule) {
        let dag =
            Dag::from_edges(4, &[(0, 2), (1, 3)], vec![1, 1, 1, 1], vec![10, 10, 1, 1]).unwrap();
        let machine = Machine::uniform(2, 2, 1);
        let assignment = Assignment {
            proc: vec![0, 1, 1, 0],
            superstep: vec![0, 0, 1, 2],
        };
        let sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        (dag, machine, sched)
    }

    #[test]
    fn hccs_overlaps_communication_phases_when_it_pays_off() {
        let (dag, machine, mut sched) = spreading_example();
        let before = sched.cost(&dag, &machine);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost < before, "no improvement over {before}");
        assert_eq!(outcome.final_cost, sched.cost(&dag, &machine));
        // Both transfers now share phase 0 (the second one moved forward).
        let steps: Vec<usize> = sched.comm.steps().iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![0, 0]);
    }

    #[test]
    fn hccs_is_a_no_op_without_communication() {
        let dag = Dag::from_edges(2, &[(0, 1)], vec![1, 1], vec![1, 1]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let mut sched = BspSchedule::trivial(&dag);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert_eq!(outcome.steps, 0);
        assert!(outcome.reached_local_minimum);
        assert_eq!(outcome.initial_cost, outcome.final_cost);
    }

    #[test]
    fn hccs_never_invalidates_or_worsens() {
        let (dag, machine, mut sched) = spreading_example();
        let before = sched.cost(&dag, &machine);
        for _ in 0..3 {
            let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
            assert!(sched.validate(&dag, &machine).is_ok());
            assert!(outcome.final_cost <= before);
        }
    }

    #[test]
    fn numa_weights_influence_the_h_relation() {
        let (dag, _machine, _) = spreading_example();
        let machine = Machine::numa_binary_tree(4, 1, 1, 4);
        let assignment = Assignment {
            proc: vec![0, 1, 3, 3],
            superstep: vec![0, 0, 2, 2],
        };
        let mut sched = BspSchedule::from_assignment_lazy(&dag, assignment);
        let before = sched.cost(&dag, &machine);
        let outcome = hccs_improve(&dag, &machine, &mut sched, &HillClimbConfig::default());
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(outcome.final_cost <= before);
    }
}
