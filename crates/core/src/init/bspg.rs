//! The `BSPg` greedy initialization heuristic (§4.2, Algorithm 1).
//!
//! `BSPg` simulates concrete start/finish times inside each superstep (like a
//! classical list scheduler) but assigns nodes directly to supersteps.  A node
//! may be given to a processor only if this does not force the current
//! computation phase to end, i.e. all of its predecessors are already present
//! on that processor (computed there, or computed in an earlier superstep).
//! When at least half of the processors are idle and nothing further can be
//! assigned without communication, the superstep is closed.
//!
//! Tie-breaking among assignable nodes uses the communication-saving score of
//! the paper: for each predecessor `u` of a candidate `v` with `u` (or one of
//! `u`'s direct successors) already on the target processor, the score grows
//! by `c(u) / outdeg(u)`.

use crate::Scheduler;
use bsp_model::{Assignment, BspSchedule, Dag, Machine};
use std::collections::{BTreeMap, BTreeSet};

/// The `BSPg` greedy initializer.
#[derive(Debug, Clone, Copy, Default)]
pub struct BspgScheduler;

impl BspgScheduler {
    /// Computes the `(π, τ)` assignment (the communication schedule is the
    /// lazy one, added by [`Scheduler::schedule`]).
    pub fn assignment(&self, dag: &Dag, machine: &Machine) -> Assignment {
        let n = dag.n();
        let p = machine.p();
        let mut proc = vec![usize::MAX; n];
        let mut superstep_of = vec![usize::MAX; n];
        if n == 0 {
            return Assignment {
                proc: vec![],
                superstep: vec![],
            };
        }

        let mut unfinished_preds: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
        // Nodes with all predecessors finished, not yet assigned.
        let mut ready: BTreeSet<usize> = dag.sources().into_iter().collect();
        // Nodes assignable to a specific processor within the current superstep.
        let mut ready_proc: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); p];
        // Nodes assignable to every processor within the current superstep.
        let mut ready_all: BTreeSet<usize> = ready.clone();

        let mut superstep = 0usize;
        let mut end_step = false;
        let mut free = vec![true; p];
        // finish events of the current superstep: time -> nodes finishing then.
        let mut finish_events: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        finish_events.insert(0, Vec::new());
        let mut assigned = 0usize;

        // Score of assigning `v` to processor `q` (higher is better).
        let score = |v: usize, q: usize, proc: &[usize]| -> f64 {
            let mut s = 0.0;
            for &u in dag.predecessors(v) {
                let u_here = proc[u] == q;
                let succ_here = dag.successors(u).iter().any(|&w| proc[w] == q);
                if u_here || succ_here {
                    s += dag.comm(u) as f64 / dag.out_degree(u).max(1) as f64;
                }
            }
            s
        };

        while assigned < n {
            if end_step && finish_events.is_empty() {
                // Start the next superstep.
                for set in &mut ready_proc {
                    set.clear();
                }
                ready_all = ready.clone();
                superstep += 1;
                end_step = false;
                finish_events.insert(0, Vec::new());
                free.iter_mut().for_each(|f| *f = true);
            }

            // Pop the earliest finish time of the current superstep.
            let (t, finishing) = finish_events
                .pop_first()
                .expect("finish event queue cannot be empty here");

            for &v in &finishing {
                free[proc[v]] = true;
                for &u in dag.successors(v) {
                    unfinished_preds[u] -= 1;
                    if unfinished_preds[u] == 0 {
                        ready.insert(u);
                        let assignable_here = dag
                            .predecessors(u)
                            .iter()
                            .all(|&u0| proc[u0] == proc[v] || superstep_of[u0] < superstep);
                        if assignable_here {
                            ready_proc[proc[v]].insert(u);
                        }
                    }
                }
            }

            if !end_step {
                loop {
                    // A free processor that can still receive a node.
                    let candidate = (0..p)
                        .find(|&q| free[q] && (!ready_proc[q].is_empty() || !ready_all.is_empty()));
                    let Some(q) = candidate else { break };
                    let pool: Vec<usize> = if !ready_proc[q].is_empty() {
                        ready_proc[q].iter().copied().collect()
                    } else {
                        ready_all.iter().copied().collect()
                    };
                    let v = pool
                        .into_iter()
                        .map(|v| (v, score(v, q, &proc)))
                        .max_by(|a, b| {
                            a.1.partial_cmp(&b.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(b.0.cmp(&a.0))
                        })
                        .map(|(v, _)| v)
                        .expect("pool is non-empty");
                    ready.remove(&v);
                    ready_all.remove(&v);
                    for set in &mut ready_proc {
                        set.remove(&v);
                    }
                    proc[v] = q;
                    superstep_of[v] = superstep;
                    assigned += 1;
                    finish_events.entry(t + dag.work(v)).or_default().push(v);
                    free[q] = false;
                }
            }

            // Close the computation phase when at least half the processors are
            // idle and no node is assignable to every processor.
            let idle = (0..p).filter(|&q| free[q]).count();
            if ready_all.is_empty() && 2 * idle >= p {
                end_step = true;
            }
        }

        Assignment {
            proc,
            superstep: superstep_of,
        }
    }
}

impl Scheduler for BspgScheduler {
    fn name(&self) -> &'static str {
        "BSPg"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        let assignment = self.assignment(dag, machine);
        let mut sched = BspSchedule::from_assignment_lazy(dag, assignment);
        sched.normalize(dag);
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layered(levels: usize, width: usize) -> Dag {
        let mut edges = Vec::new();
        for l in 0..levels - 1 {
            for i in 0..width {
                for j in 0..width {
                    if i == j || (i + 1) % width == j {
                        edges.push((l * width + i, (l + 1) * width + j));
                    }
                }
            }
        }
        let n = levels * width;
        Dag::from_edges(n, &edges, vec![2; n], vec![1; n]).unwrap()
    }

    #[test]
    fn produces_valid_schedules_on_layered_dags() {
        let dag = layered(4, 6);
        for p in [1, 2, 4, 8] {
            let machine = Machine::uniform(p, 2, 5);
            let sched = BspgScheduler.schedule(&dag, &machine);
            assert!(sched.validate(&dag, &machine).is_ok(), "invalid for P={p}");
        }
    }

    #[test]
    fn all_nodes_are_assigned_exactly_once() {
        let dag = layered(3, 5);
        let machine = Machine::uniform(4, 1, 5);
        let a = BspgScheduler.assignment(&dag, &machine);
        assert_eq!(a.proc.len(), dag.n());
        assert!(a.proc.iter().all(|&q| q < 4));
        assert!(a.superstep.iter().all(|&s| s != usize::MAX));
    }

    #[test]
    fn uses_parallelism_on_wide_dags() {
        let dag = layered(2, 12);
        let machine = Machine::uniform(4, 1, 1);
        let sched = BspgScheduler.schedule(&dag, &machine);
        let used: std::collections::HashSet<usize> =
            sched.assignment.proc.iter().copied().collect();
        assert!(used.len() > 1, "BSPg never used a second processor");
        // It should comfortably beat the trivial sequential schedule here.
        assert!(sched.cost(&dag, &machine) < BspSchedule::trivial(&dag).cost(&dag, &machine));
    }

    #[test]
    fn chain_stays_on_one_processor_without_communication() {
        // On a pure chain the paper's superstep-ending rule (close the phase
        // once half the processors are starved) gives one superstep per node,
        // but the high communication weights must keep every node on the same
        // processor, so no communication is ever scheduled.
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)], vec![1; 4], vec![10; 4]).unwrap();
        let machine = Machine::uniform(4, 3, 5);
        let sched = BspgScheduler.schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        let procs: std::collections::HashSet<usize> =
            sched.assignment.proc.iter().copied().collect();
        assert_eq!(procs.len(), 1, "chain was split across processors");
        assert!(sched.comm.is_empty());
        assert!(sched.num_supersteps() <= dag.n());
    }

    #[test]
    fn single_processor_machine_works() {
        let dag = layered(3, 4);
        let machine = Machine::uniform(1, 1, 5);
        let sched = BspgScheduler.schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(sched.num_supersteps(), 1);
    }
}
