//! The `Source` layer-wise initialization heuristic (§4.2, Algorithm 2).
//!
//! Each iteration takes the current source nodes of the (remaining) DAG and
//! turns them into one superstep.  The first superstep clusters sources that
//! share a direct successor and distributes the clusters round-robin; later
//! supersteps sort the sources by decreasing work weight and distribute them
//! round-robin to balance the work.  After the round-robin pass, any direct
//! successor whose predecessors all ended up on the same processor is pulled
//! into the current superstep as well (avoiding unnecessary extra supersteps).

use crate::Scheduler;
use bsp_model::{Assignment, BspSchedule, Dag, Machine};

/// The `Source` layer-wise initializer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceScheduler;

impl SourceScheduler {
    /// Computes the `(π, τ)` assignment.
    pub fn assignment(&self, dag: &Dag, machine: &Machine) -> Assignment {
        let n = dag.n();
        let p = machine.p();
        let mut proc = vec![usize::MAX; n];
        let mut superstep_of = vec![usize::MAX; n];
        if n == 0 {
            return Assignment {
                proc: vec![],
                superstep: vec![],
            };
        }

        // Remaining in-degree in the "shrinking" DAG (assigned nodes removed).
        let mut remaining_indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
        let mut assigned_count = 0usize;
        let mut superstep = 0usize;

        // Removes an assigned node from the remaining DAG.
        fn remove_node(dag: &Dag, v: usize, remaining_indeg: &mut [usize]) {
            for &w in dag.successors(v) {
                remaining_indeg[w] = remaining_indeg[w].saturating_sub(1);
            }
        }

        while assigned_count < n {
            let sources: Vec<usize> = (0..n)
                .filter(|&v| proc[v] == usize::MAX && remaining_indeg[v] == 0)
                .collect();
            debug_assert!(
                !sources.is_empty(),
                "no sources but unassigned nodes remain"
            );
            let mut next_proc = 0usize;

            if superstep == 0 {
                // Cluster sources that share a direct successor.
                let mut cluster_of: Vec<Option<usize>> = vec![None; n];
                let mut clusters: Vec<Vec<usize>> = Vec::new();
                for &v in &sources {
                    if cluster_of[v].is_some() {
                        continue;
                    }
                    // Does v share an out-neighbour with an already-clustered or
                    // later source?
                    let mut target_cluster: Option<usize> = None;
                    'outer: for &succ in dag.successors(v) {
                        for &u in dag.predecessors(succ) {
                            if u != v && proc[u] == usize::MAX && remaining_indeg[u] == 0 {
                                if let Some(c) = cluster_of[u] {
                                    target_cluster = Some(c);
                                    break 'outer;
                                }
                            }
                        }
                    }
                    match target_cluster {
                        Some(c) => {
                            clusters[c].push(v);
                            cluster_of[v] = Some(c);
                        }
                        None => {
                            // Start a new cluster; pull in sharing partners that
                            // are not yet clustered.
                            let c = clusters.len();
                            clusters.push(vec![v]);
                            cluster_of[v] = Some(c);
                            for &succ in dag.successors(v) {
                                for &u in dag.predecessors(succ) {
                                    if u != v
                                        && proc[u] == usize::MAX
                                        && remaining_indeg[u] == 0
                                        && cluster_of[u].is_none()
                                    {
                                        clusters[c].push(u);
                                        cluster_of[u] = Some(c);
                                    }
                                }
                            }
                        }
                    }
                }
                for cluster in clusters {
                    for v in cluster {
                        proc[v] = next_proc;
                        superstep_of[v] = superstep;
                        assigned_count += 1;
                        remove_node(dag, v, &mut remaining_indeg);
                    }
                    next_proc = (next_proc + 1) % p;
                }
            } else {
                // Decreasing work weight, round-robin.
                let mut order = sources.clone();
                order.sort_by_key(|&v| (std::cmp::Reverse(dag.work(v)), v));
                for v in order {
                    proc[v] = next_proc;
                    superstep_of[v] = superstep;
                    assigned_count += 1;
                    remove_node(dag, v, &mut remaining_indeg);
                    next_proc = (next_proc + 1) % p;
                }
            }

            // Pull in successors whose predecessors all live on one processor.
            // (Iterate to a fixed point so chains of such nodes are absorbed.)
            loop {
                let mut pulled = false;
                for u in 0..n {
                    if proc[u] != usize::MAX || remaining_indeg[u] != 0 {
                        continue;
                    }
                    let preds = dag.predecessors(u);
                    if preds.is_empty() {
                        continue;
                    }
                    let target = proc[preds[0]];
                    if preds.iter().all(|&w| proc[w] == target) {
                        proc[u] = target;
                        superstep_of[u] = superstep;
                        assigned_count += 1;
                        remove_node(dag, u, &mut remaining_indeg);
                        pulled = true;
                    }
                }
                if !pulled {
                    break;
                }
            }

            superstep += 1;
        }

        Assignment {
            proc,
            superstep: superstep_of,
        }
    }
}

impl Scheduler for SourceScheduler {
    fn name(&self) -> &'static str {
        "Source"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        let assignment = self.assignment(dag, machine);
        let mut sched = BspSchedule::from_assignment_lazy(dag, assignment);
        sched.normalize(dag);
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmv_like() -> Dag {
        // 4 vector sources, 4 matrix sources, 4 products, 2 sums.
        let mut edges = Vec::new();
        for i in 0..4 {
            edges.push((i, 8 + i)); // u_i -> t_i
            edges.push((4 + i, 8 + i)); // a_i -> t_i
        }
        edges.push((8, 12));
        edges.push((9, 12));
        edges.push((10, 13));
        edges.push((11, 13));
        let n = 14;
        Dag::from_edges(n, &edges, vec![1; n], vec![1; n]).unwrap()
    }

    #[test]
    fn produces_valid_schedules() {
        let dag = spmv_like();
        for p in [1, 2, 4] {
            let machine = Machine::uniform(p, 1, 5);
            let sched = SourceScheduler.schedule(&dag, &machine);
            assert!(sched.validate(&dag, &machine).is_ok(), "invalid for P={p}");
        }
    }

    #[test]
    fn all_nodes_assigned() {
        let dag = spmv_like();
        let machine = Machine::uniform(4, 1, 5);
        let a = SourceScheduler.assignment(&dag, &machine);
        assert!(a.proc.iter().all(|&q| q < 4));
        assert!(a.superstep.iter().all(|&s| s != usize::MAX));
    }

    #[test]
    fn first_superstep_clusters_sources_with_common_successor() {
        let dag = spmv_like();
        let machine = Machine::uniform(4, 1, 5);
        let a = SourceScheduler.assignment(&dag, &machine);
        // u_i and a_i share the product t_i, so they must land on one processor.
        for i in 0..4 {
            assert_eq!(a.proc[i], a.proc[4 + i], "sources of product {i} split");
        }
    }

    #[test]
    fn successors_with_local_predecessors_join_the_superstep() {
        // Chain 0 -> 1 -> 2: everything can be absorbed into superstep 0.
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)], vec![1; 3], vec![1; 3]).unwrap();
        let machine = Machine::uniform(2, 1, 5);
        let sched = SourceScheduler.schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(sched.num_supersteps(), 1);
    }

    #[test]
    fn round_robin_balances_later_supersteps() {
        // 4 independent sources (nodes 0..4), a middle layer (4..8) absorbed
        // into superstep 0, and a heavy layer (8..16) whose nodes each depend
        // on two middle nodes living on *different* processors, so they cannot
        // be absorbed and form superstep 1.
        let mut edges = Vec::new();
        for i in 0..4 {
            edges.push((i, 4 + i));
        }
        for j in 0..8 {
            edges.push((4 + j % 4, 8 + j));
            edges.push((4 + (j + 1) % 4, 8 + j));
        }
        let mut work = vec![1u64; 16];
        for w in work.iter_mut().skip(8) {
            *w = 10;
        }
        let dag = Dag::from_edges(16, &edges, work, vec![1; 16]).unwrap();
        let machine = Machine::uniform(4, 1, 5);
        let sched = SourceScheduler.schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        // The heavy layer is round-robined over all 4 processors in a later
        // superstep.
        let heavy_procs: std::collections::HashSet<usize> =
            (8..16).map(|v| sched.proc(v)).collect();
        assert_eq!(heavy_procs.len(), 4);
        assert!((8..16).all(|v| sched.superstep(v) > 0));
    }
}
