//! Initialization heuristics (§4.2, Algorithms 1 and 2 of the paper).
//!
//! These produce the starting BSP schedules that the local search and ILP
//! stages of the pipeline then improve:
//!
//! * [`BspgScheduler`] — the BSP-tailored greedy `BSPg` that assigns nodes as
//!   processors become idle and closes a superstep when half of the
//!   processors can no longer be fed without communication;
//! * [`SourceScheduler`] — the layer-wise `Source` heuristic that turns each
//!   layer of source nodes into a superstep with round-robin, work-balanced
//!   processor assignment.
//!
//! (The third initializer of the paper, `ILPinit`, lives in
//! [`crate::ilp::init`] because it shares the ILP machinery.)

mod bspg;
mod source;

pub use bspg::BspgScheduler;
pub use source::SourceScheduler;
