//! The `HDagg` wavefront-aggregation baseline (§4.1 and Appendix A.1).
//!
//! HDagg sorts the nodes of the DAG into *wavefronts* (topological levels,
//! essentially supersteps), distributes the nodes of each wavefront over the
//! processors so that the work is balanced while nodes stay close to their
//! predecessors, and *aggregates* consecutive wavefronts into a single
//! superstep whenever doing so introduces no cross-processor dependency inside
//! the merged superstep.  This re-implementation follows the algorithmic idea
//! of Zarebavani et al. [46] as described in the paper; the original library
//! targets SpTRSV matrices but is, as the paper notes, a general DAG
//! scheduler.

use crate::Scheduler;
use bsp_model::{Assignment, BspSchedule, Dag, Machine};

/// The wavefront-aggregation scheduler.
#[derive(Debug, Clone, Copy)]
pub struct HDaggScheduler {
    /// Load-balance slack: a processor may exceed the ideal per-processor work
    /// of a wavefront by this factor before locality is overridden.
    pub balance_slack: f64,
}

impl Default for HDaggScheduler {
    fn default() -> Self {
        HDaggScheduler { balance_slack: 1.1 }
    }
}

impl HDaggScheduler {
    /// Computes the processor assignment and (un-aggregated) wavefront index
    /// of every node.
    fn assign(&self, dag: &Dag, machine: &Machine) -> (Vec<usize>, Vec<usize>) {
        let n = dag.n();
        let p = machine.p();
        let levels = dag.levels();
        let num_levels = levels.iter().copied().max().map_or(0, |l| l + 1);
        let mut wavefronts: Vec<Vec<usize>> = vec![Vec::new(); num_levels];
        for v in 0..n {
            wavefronts[levels[v]].push(v);
        }

        let mut proc = vec![0usize; n];
        for wavefront in &wavefronts {
            let total_work: u64 = wavefront.iter().map(|&v| dag.work(v)).sum();
            let ideal = (total_work as f64 / p as f64).max(1.0);
            let mut load = vec![0u64; p];
            // Heaviest nodes first, so load balancing has room to correct.
            let mut order = wavefront.clone();
            order.sort_by_key(|&v| std::cmp::Reverse(dag.work(v)));
            for v in order {
                // Affinity: communication weight of predecessors already
                // placed on each processor.
                let mut affinity = vec![0u64; p];
                for &u in dag.predecessors(v) {
                    affinity[proc[u]] += dag.comm(u);
                }
                let within_slack =
                    |q: usize| (load[q] + dag.work(v)) as f64 <= ideal * self.balance_slack;
                // Best-affinity processor that still respects the balance
                // slack; fall back to the least-loaded processor.
                let candidate = (0..p)
                    .filter(|&q| within_slack(q))
                    .max_by_key(|&q| (affinity[q], std::cmp::Reverse(load[q])));
                let q = candidate.unwrap_or_else(|| {
                    (0..p)
                        .min_by_key(|&q| (load[q], std::cmp::Reverse(affinity[q])))
                        .expect("at least one processor")
                });
                proc[v] = q;
                load[q] += dag.work(v);
            }
        }
        (proc, levels)
    }

    /// Aggregates consecutive wavefronts into supersteps: a wavefront joins the
    /// current superstep if none of its nodes has a predecessor inside the
    /// current superstep that lives on a different processor.
    fn aggregate(&self, dag: &Dag, proc: &[usize], levels: &[usize]) -> Vec<usize> {
        let n = dag.n();
        let num_levels = levels.iter().copied().max().map_or(0, |l| l + 1);
        let mut level_nodes: Vec<Vec<usize>> = vec![Vec::new(); num_levels];
        for v in 0..n {
            level_nodes[levels[v]].push(v);
        }
        let mut level_to_superstep = vec![0usize; num_levels];
        let mut current = 0usize;
        let mut current_first_level = 0usize;
        for l in 0..num_levels {
            if l > 0 {
                // Can level l join the superstep started at current_first_level?
                let conflict = level_nodes[l].iter().any(|&v| {
                    dag.predecessors(v)
                        .iter()
                        .any(|&u| levels[u] >= current_first_level && proc[u] != proc[v])
                });
                if conflict {
                    current += 1;
                    current_first_level = l;
                }
            }
            level_to_superstep[l] = current;
        }
        (0..n).map(|v| level_to_superstep[levels[v]]).collect()
    }
}

impl Scheduler for HDaggScheduler {
    fn name(&self) -> &'static str {
        "HDagg"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        let (proc, levels) = self.assign(dag, machine);
        let superstep = self.aggregate(dag, &proc, &levels);
        let assignment = Assignment { proc, superstep };
        let mut sched = BspSchedule::from_assignment_lazy(dag, assignment);
        sched.normalize(dag);
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_dag() -> Dag {
        // Three levels of 6 nodes; node i in level l depends on node i of level l-1.
        let mut edges = Vec::new();
        for l in 0..2 {
            for i in 0..6 {
                edges.push((l * 6 + i, (l + 1) * 6 + i));
            }
        }
        Dag::from_edges(18, &edges, vec![2; 18], vec![1; 18]).unwrap()
    }

    #[test]
    fn produces_valid_schedules() {
        let dag = wide_dag();
        let machine = Machine::uniform(3, 1, 2);
        let sched = HDaggScheduler::default().schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn independent_columns_are_aggregated_into_one_superstep() {
        // Each column chain stays on one processor, so no communication is
        // needed and the wavefronts merge into a single superstep.
        let dag = wide_dag();
        let machine = Machine::uniform(6, 1, 2);
        let sched = HDaggScheduler::default().schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(
            sched.num_supersteps(),
            1,
            "independent chains should aggregate"
        );
        assert!(sched.comm.is_empty());
    }

    #[test]
    fn work_is_balanced_across_processors() {
        let dag = wide_dag();
        let machine = Machine::uniform(3, 1, 2);
        let sched = HDaggScheduler::default().schedule(&dag, &machine);
        let m = sched.work_matrix(&dag, &machine);
        let per_proc: Vec<u64> = (0..3).map(|q| m.iter().map(|row| row[q]).sum()).collect();
        let max = per_proc.iter().max().unwrap();
        let min = per_proc.iter().min().unwrap();
        assert!(max - min <= 4, "unbalanced loads {per_proc:?}");
    }

    #[test]
    fn cross_processor_fanin_forces_a_new_superstep() {
        // A single sink depending on many sources cannot share a superstep with
        // sources on other processors.
        let mut edges = Vec::new();
        for u in 0..8 {
            edges.push((u, 8));
        }
        let dag = Dag::from_edges(9, &edges, vec![5; 9], vec![1; 9]).unwrap();
        let machine = Machine::uniform(4, 1, 2);
        let sched = HDaggScheduler::default().schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert!(sched.num_supersteps() >= 2);
    }

    #[test]
    fn beats_or_matches_trivial_on_parallel_work() {
        let dag = wide_dag();
        let machine = Machine::uniform(6, 1, 1);
        let hdagg = HDaggScheduler::default().schedule(&dag, &machine);
        let trivial = BspSchedule::trivial(&dag);
        assert!(hdagg.cost(&dag, &machine) < trivial.cost(&dag, &machine));
    }
}
