//! The trivial schedule: all nodes on processor 0 in superstep 0.

use crate::Scheduler;
use bsp_model::{BspSchedule, Dag, Machine};

/// Assigns every node to processor 0 in a single superstep.
///
/// Its cost is `Σ w(v) + ℓ`; §7.3 of the paper uses it as the bar that any
/// non-trivial schedule has to clear in communication-dominated settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrivialScheduler;

impl Scheduler for TrivialScheduler {
    fn name(&self) -> &'static str {
        "Trivial"
    }

    fn schedule(&self, dag: &Dag, _machine: &Machine) -> BspSchedule {
        BspSchedule::trivial(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_schedule_is_valid_and_sequential() {
        let dag = Dag::from_edge_list_unit_weights(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let machine = Machine::uniform(4, 3, 7);
        let sched = TrivialScheduler.schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(sched.cost(&dag, &machine), 5 + 7);
        assert_eq!(sched.num_supersteps(), 1);
    }
}
