//! Baseline schedulers the paper compares against (§4.1).
//!
//! * [`CilkScheduler`] — the work-stealing heuristic representing practical
//!   parallel runtimes.
//! * [`BlEstScheduler`] / [`EtfScheduler`] — list schedulers extended with
//!   communication volume (the strongest classical baselines per \[27\]).
//! * [`HDaggScheduler`] — the wavefront-aggregation scheduler of Zarebavani et
//!   al., the strongest academic baseline.
//! * [`TrivialScheduler`] — everything on one processor in one superstep; the
//!   sanity baseline the multilevel section (§7.3) measures against.

mod cilk;
mod hdagg;
mod list;
mod trivial;

pub use cilk::CilkScheduler;
pub use hdagg::HDaggScheduler;
pub use list::{BlEstScheduler, EtfScheduler};
pub use trivial::TrivialScheduler;
