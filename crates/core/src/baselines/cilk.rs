//! The `Cilk` work-stealing baseline (§4.1 and Appendix A.1).
//!
//! Every processor keeps a stack of ready tasks.  When the execution of the
//! last unfinished direct predecessor of a node `v` finishes on processor `p`,
//! `v` is pushed onto the top of `p`'s stack.  An idle processor pops from the
//! top of its own stack; if its stack is empty it *steals* from the bottom of
//! the stack of a uniformly random victim with a non-empty stack.  The
//! resulting classical schedule is converted into BSP supersteps with the
//! standard conversion ([`bsp_model::ClassicalSchedule::to_bsp`]).

use crate::Scheduler;
use bsp_model::{BspSchedule, ClassicalSchedule, Dag, Machine};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The work-stealing baseline.  Deterministic for a fixed `seed`.
#[derive(Debug, Clone, Copy)]
pub struct CilkScheduler {
    pub seed: u64,
}

impl Default for CilkScheduler {
    fn default() -> Self {
        CilkScheduler { seed: 0xC11C }
    }
}

impl CilkScheduler {
    /// Creates a work-stealing scheduler with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        CilkScheduler { seed }
    }

    /// Runs the work-stealing simulation and returns the classical schedule.
    pub fn classical_schedule(&self, dag: &Dag, machine: &Machine) -> ClassicalSchedule {
        let n = dag.n();
        let p = machine.p();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        let mut remaining_preds: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
        // Per-processor stack of ready tasks.
        let mut stacks: Vec<Vec<usize>> = vec![Vec::new(); p];
        // All sources start on processor 0's stack (in reverse topological-rank
        // order so the "oldest" task sits at the bottom, available to thieves).
        let mut sources = dag.sources();
        sources.reverse();
        stacks[0].extend(sources);

        // Per-processor state: what it is running and until when.
        let mut busy_until: Vec<Option<(u64, usize)>> = vec![None; p];
        let mut start = vec![0u64; n];
        let mut proc = vec![0usize; n];
        let mut finished = 0usize;
        let mut now = 0u64;

        while finished < n {
            // 1. Hand work to idle processors.
            loop {
                let mut progress = false;
                for q in 0..p {
                    if busy_until[q].is_some() {
                        continue;
                    }
                    let task = if let Some(v) = stacks[q].pop() {
                        Some(v)
                    } else {
                        // Steal from the bottom of a random non-empty stack.
                        let victims: Vec<usize> = (0..p)
                            .filter(|&r| r != q && !stacks[r].is_empty())
                            .collect();
                        victims
                            .choose(&mut rng)
                            .map(|&victim| stacks[victim].remove(0))
                    };
                    if let Some(v) = task {
                        start[v] = now;
                        proc[v] = q;
                        busy_until[q] = Some((now + dag.work(v), v));
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }

            // 2. Advance time to the next completion.
            let next = busy_until
                .iter()
                .filter_map(|b| b.map(|(t, _)| t))
                .min()
                .expect("deadlock: no processor is busy but nodes remain");
            now = next;

            // 3. Finish everything completing at `now`; newly ready successors
            //    go on top of the finishing processor's stack.
            for q in 0..p {
                if let Some((t, v)) = busy_until[q] {
                    if t == now {
                        busy_until[q] = None;
                        finished += 1;
                        for &w in dag.successors(v) {
                            remaining_preds[w] -= 1;
                            if remaining_preds[w] == 0 {
                                stacks[q].push(w);
                            }
                        }
                    }
                }
            }
        }
        ClassicalSchedule::new(proc, start)
    }
}

impl Scheduler for CilkScheduler {
    fn name(&self) -> &'static str {
        "Cilk"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        self.classical_schedule(dag, machine).to_bsp(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layered_dag() -> Dag {
        // Two layers of 4 independent nodes each, fully connected between layers.
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in 4..8 {
                edges.push((u, v));
            }
        }
        Dag::from_edges(8, &edges, vec![3; 8], vec![1; 8]).unwrap()
    }

    #[test]
    fn produces_a_valid_schedule() {
        let dag = layered_dag();
        let machine = Machine::uniform(4, 1, 2);
        let sched = CilkScheduler::default().schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn classical_schedule_is_consistent_and_work_conserving() {
        let dag = layered_dag();
        let machine = Machine::uniform(4, 1, 2);
        let cs = CilkScheduler::default().classical_schedule(&dag, &machine);
        assert!(cs.is_consistent(&dag));
        // Work stealing keeps all processors busy: 8 nodes of work 3 on 4
        // processors must finish in exactly 6 time units.
        assert_eq!(cs.makespan(&dag), 6);
    }

    #[test]
    fn uses_multiple_processors_when_parallelism_exists() {
        let dag = layered_dag();
        let machine = Machine::uniform(4, 1, 2);
        let cs = CilkScheduler::default().classical_schedule(&dag, &machine);
        let used: std::collections::HashSet<usize> = cs.proc.iter().copied().collect();
        assert!(used.len() > 1, "work stealing never spread the load");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dag = layered_dag();
        let machine = Machine::uniform(3, 1, 2);
        let a = CilkScheduler::new(5).schedule(&dag, &machine);
        let b = CilkScheduler::new(5).schedule(&dag, &machine);
        assert_eq!(a, b);
    }

    #[test]
    fn single_processor_machine_degenerates_to_sequential() {
        let dag = layered_dag();
        let machine = Machine::uniform(1, 1, 2);
        let sched = CilkScheduler::default().schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
        assert_eq!(sched.num_supersteps(), 1);
        assert_eq!(sched.cost(&dag, &machine), 24 + 2);
    }

    #[test]
    fn handles_empty_dag() {
        let dag = Dag::from_edge_list_unit_weights(0, &[]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let sched = CilkScheduler::default().schedule(&dag, &machine);
        assert!(sched.validate(&dag, &machine).is_ok());
    }
}
