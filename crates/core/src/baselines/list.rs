//! The `BL-EST` and `ETF` list-scheduling baselines (§4.1 and Appendix A.1).
//!
//! Both schedulers place one ready node at a time on the processor offering
//! the earliest start time (EST), where the EST accounts for the communication
//! volume `c(u)` of predecessors residing on other processors (multiplied by
//! `g`, and — when the machine is NUMA — by the *average* NUMA coefficient, as
//! the paper prescribes for these baselines).  They differ in node selection:
//!
//! * `BL-EST` picks the ready node with the largest *bottom level* (longest
//!   outgoing path by work weight) and then its best processor;
//! * `ETF` considers every (ready node, processor) pair and picks the pair
//!   with the globally earliest start time.
//!
//! The resulting classical schedules are converted to BSP supersteps.

use crate::Scheduler;
use bsp_model::{BspSchedule, ClassicalSchedule, Dag, Machine};

/// Node-selection rule of a list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selection {
    BottomLevelFirst,
    EarliestTaskFirst,
}

fn comm_delay(dag: &Dag, machine: &Machine, u: usize) -> u64 {
    // Baselines fold NUMA into an average coefficient (Appendix A.1); in the
    // uniform case avg_lambda < 1 because of the zero diagonal, so clamp to 1.
    let factor = machine.avg_lambda().max(1.0);
    (dag.comm(u) as f64 * machine.g() as f64 * factor).round() as u64
}

/// Runs the list scheduler and returns the classical schedule.
fn list_schedule(dag: &Dag, machine: &Machine, selection: Selection) -> ClassicalSchedule {
    let n = dag.n();
    let p = machine.p();
    let bottom_level = dag.bottom_level();

    let mut remaining_preds: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
    let mut ready: Vec<usize> = dag.sources();
    let mut proc_free = vec![0u64; p];
    let mut start = vec![0u64; n];
    let mut proc = vec![usize::MAX; n];
    let mut finish = vec![0u64; n];
    let mut scheduled = 0usize;

    // Earliest start time of node v on processor q given current assignments.
    let est = |v: usize, q: usize, proc: &[usize], finish: &[u64], proc_free: &[u64]| -> u64 {
        let mut t = proc_free[q];
        for &u in dag.predecessors(v) {
            let arrival = if proc[u] == q {
                finish[u]
            } else {
                finish[u] + comm_delay(dag, machine, u)
            };
            t = t.max(arrival);
        }
        t
    };

    while scheduled < n {
        debug_assert!(!ready.is_empty(), "ready list empty with nodes remaining");
        // Select (node, processor).
        let (v, q, t) = match selection {
            Selection::BottomLevelFirst => {
                // Highest bottom level first (ties: smaller node id).
                let &v = ready
                    .iter()
                    .max_by_key(|&&v| (bottom_level[v], std::cmp::Reverse(v)))
                    .expect("ready list is non-empty");
                let (q, t) = (0..p)
                    .map(|q| (q, est(v, q, &proc, &finish, &proc_free)))
                    .min_by_key(|&(q, t)| (t, q))
                    .expect("at least one processor");
                (v, q, t)
            }
            Selection::EarliestTaskFirst => {
                let mut best: Option<(u64, std::cmp::Reverse<u64>, usize, usize)> = None;
                for &v in &ready {
                    for q in 0..p {
                        let t = est(v, q, &proc, &finish, &proc_free);
                        let key = (t, std::cmp::Reverse(bottom_level[v]), v, q);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let (t, _, v, q) = best.expect("ready list is non-empty");
                (v, q, t)
            }
        };

        // Place the node.
        ready.retain(|&x| x != v);
        proc[v] = q;
        start[v] = t;
        finish[v] = t + dag.work(v);
        proc_free[q] = finish[v];
        scheduled += 1;
        for &w in dag.successors(v) {
            remaining_preds[w] -= 1;
            if remaining_preds[w] == 0 {
                ready.push(w);
            }
        }
    }
    ClassicalSchedule::new(proc, start)
}

/// The `BL-EST` list scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlEstScheduler;

impl BlEstScheduler {
    /// The classical (time-based) schedule before BSP conversion.
    pub fn classical_schedule(&self, dag: &Dag, machine: &Machine) -> ClassicalSchedule {
        list_schedule(dag, machine, Selection::BottomLevelFirst)
    }
}

impl Scheduler for BlEstScheduler {
    fn name(&self) -> &'static str {
        "BL-EST"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        self.classical_schedule(dag, machine).to_bsp(dag)
    }
}

/// The `ETF` (earliest task first) list scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct EtfScheduler;

impl EtfScheduler {
    /// The classical (time-based) schedule before BSP conversion.
    pub fn classical_schedule(&self, dag: &Dag, machine: &Machine) -> ClassicalSchedule {
        list_schedule(dag, machine, Selection::EarliestTaskFirst)
    }
}

impl Scheduler for EtfScheduler {
    fn name(&self) -> &'static str {
        "ETF"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        if dag.n() == 0 {
            return BspSchedule::trivial(dag);
        }
        self.classical_schedule(dag, machine).to_bsp(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fork_join() -> Dag {
        // 0 fans out to 1..=4, which join into 5.
        let mut edges = Vec::new();
        for v in 1..=4 {
            edges.push((0, v));
            edges.push((v, 5));
        }
        Dag::from_edges(6, &edges, vec![1, 4, 4, 4, 4, 1], vec![1; 6]).unwrap()
    }

    #[test]
    fn both_schedulers_produce_valid_schedules() {
        let dag = fork_join();
        let machine = Machine::uniform(4, 1, 2);
        for sched in [
            BlEstScheduler.schedule(&dag, &machine),
            EtfScheduler.schedule(&dag, &machine),
        ] {
            assert!(sched.validate(&dag, &machine).is_ok());
        }
    }

    #[test]
    fn classical_schedules_are_consistent() {
        let dag = fork_join();
        let machine = Machine::uniform(4, 1, 2);
        assert!(BlEstScheduler
            .classical_schedule(&dag, &machine)
            .is_consistent(&dag));
        assert!(EtfScheduler
            .classical_schedule(&dag, &machine)
            .is_consistent(&dag));
    }

    #[test]
    fn parallelism_is_used_when_communication_is_cheap() {
        let dag = fork_join();
        let machine = Machine::uniform(4, 1, 0);
        let cs = EtfScheduler.classical_schedule(&dag, &machine);
        let used: std::collections::HashSet<usize> = cs.proc.iter().copied().collect();
        assert!(used.len() >= 2);
        // With free communication the four middle tasks run in parallel.
        assert!(cs.makespan(&dag) < 1 + 16 + 1);
    }

    #[test]
    fn expensive_communication_discourages_spreading() {
        // If sending data costs far more than the work, EST keeps the chain
        // on one processor.
        let dag =
            Dag::from_edges(3, &[(0, 1), (1, 2)], vec![1, 1, 1], vec![100, 100, 100]).unwrap();
        let machine = Machine::uniform(4, 5, 0);
        let cs = EtfScheduler.classical_schedule(&dag, &machine);
        assert_eq!(cs.proc[0], cs.proc[1]);
        assert_eq!(cs.proc[1], cs.proc[2]);
    }

    #[test]
    fn blest_prefers_critical_path_nodes() {
        // Node 1 heads a long chain, node 2 is a leaf; BL-EST must schedule 1
        // before 2 even though both are ready.
        let dag = Dag::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 3), (3, 4)],
            vec![1, 1, 1, 1, 1],
            vec![1; 5],
        )
        .unwrap();
        let machine = Machine::uniform(1, 1, 1);
        let cs = BlEstScheduler.classical_schedule(&dag, &machine);
        assert!(cs.start[1] < cs.start[2]);
    }

    #[test]
    fn numa_average_lambda_increases_est_delays() {
        let dag = fork_join();
        let uniform = Machine::uniform(8, 1, 2);
        let numa = Machine::numa_binary_tree(8, 1, 2, 4);
        let cs_uniform = EtfScheduler.classical_schedule(&dag, &uniform);
        let cs_numa = EtfScheduler.classical_schedule(&dag, &numa);
        // Higher communication penalties can only keep the makespan equal or
        // push work onto fewer processors (never finish earlier).
        assert!(cs_numa.makespan(&dag) >= cs_uniform.makespan(&dag));
    }
}
