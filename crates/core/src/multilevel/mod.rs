//! The multilevel (coarsen–solve–refine) scheduler of §4.5 / Figure 4,
//! implemented *incrementally* end to end.
//!
//! The DAG is first coarsened by repeated acyclic edge contractions
//! ([`coarsen`]), the base pipeline of Figure 3 (without `ILPcs`) schedules
//! the coarse DAG, and the contraction steps are then undone in reverse
//! order, running a bounded `HC` refinement after every few uncontractions.
//! Finally `HCcs` and `ILPcs` optimize the communication schedule of the
//! fully uncoarsened solution, since the coarse DAG only over-estimates
//! communication volumes.
//!
//! As in the paper, the scheduler is run for several coarsening ratios
//! (30 % and 15 % by default) and the cheapest resulting schedule is kept;
//! the per-ratio runs are independent and execute in parallel on the rayon
//! pool.
//!
//! ## The incremental engine
//!
//! Both halves of the outer loop are incremental:
//!
//! * **Coarsening** ([`coarsen`] / [`coarsen_with`]) is *round-based batch
//!   contraction* on the persistent [`bsp_model::QuotientDag`]: each round
//!   scans every active cluster for its minimum-rank contractable out-edge
//!   (in parallel lanes when the thread budget allows — the result is
//!   lane-count independent by construction), selects an endpoint-disjoint
//!   batch in the paper's canonical order, and applies the whole batch with
//!   one rank re-anchoring — flat candidate arrays, no `BTreeSet`, no
//!   per-contraction pool repair.  [`CoarsenStats`] (rounds, batch widths,
//!   conflicts, phase times) surfaces through [`PhaseTimings`] into the
//!   bench reports.
//! * **Uncoarsening** hands the same `QuotientDag` to the
//!   [`IncrementalRefiner`], which keeps one warm
//!   [`crate::hill_climb::HcState`] across all refinement phases: every
//!   uncontraction is an `O(deg)` split patch (one cluster becomes two at the
//!   same processor/superstep) and every phase is a work-list search seeded
//!   with only the nodes the splits actually disturbed.  Per-phase cost is
//!   `O(local change)`; the old implementation rebuilt the quotient DAG,
//!   re-projected the assignment, and reconstructed the search state from
//!   scratch — `O(n + m)` — for every phase.
//!
//! The pre-rearchitecture implementation is preserved verbatim as
//! `bsp_bench::legacy_multilevel`; `exp_multilevel --speedup` benchmarks the
//! two against each other and writes `BENCH_multilevel.json`.

mod coarsen;
mod engine;

pub use coarsen::{
    coarsen, coarsen_with, BatchCoarsener, Clustering, CoarsenConfig, CoarsenStats, Coarsening,
    Contraction,
};
pub use engine::IncrementalRefiner;

use crate::hill_climb::{hccs_improve, HillClimbConfig};
use crate::ilp::ilp_cs_improve;
use crate::pipeline::{Pipeline, PipelineConfig};
use crate::Scheduler;
use bsp_model::{Assignment, BspSchedule, Dag, Machine};
use rayon::prelude::*;
use std::time::Duration;

/// Configuration of the multilevel scheduler.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Coarsening ratios to try (fraction of the original node count the
    /// coarse DAG is reduced to).  The best resulting schedule is kept —
    /// the paper's `C_opt` variant of `{0.3, 0.15}`.
    pub coarsen_ratios: Vec<f64>,
    /// DAGs with fewer nodes than this are not coarsened at all; the base
    /// pipeline runs directly (the paper excludes the *tiny* dataset for the
    /// same reason).
    pub min_nodes_to_coarsen: usize,
    /// Number of uncontraction steps between two refinement phases (paper: 5).
    pub refine_interval: usize,
    /// Adaptive widening of the refinement interval: at an uncoarsening
    /// level with `a` active nodes, a phase runs every
    /// `max(refine_interval, a / refine_interval_scale)` uncontractions
    /// (`0` disables the scaling and keeps the fixed paper interval).  Near
    /// full size a refinement phase costs `O(dirty set)` but still pays
    /// fixed per-phase costs (superstep compaction when a step drained,
    /// queue management), so running one every 5 splits of a 10^5-node DAG
    /// spends the tail of the solve on phase overhead; scaling the interval
    /// with the level size keeps the *number* of phases per doubling
    /// constant instead.  The accumulated dirty set still seeds the next
    /// phase in full, and the final full sweep is unaffected.
    ///
    /// The default (512) comes from sweeping the 10^4-node bench set:
    /// smaller scales (64–256) run fewer, larger phases and are 2–3x
    /// faster still, but let the final cost drift up to ~1.25x the
    /// non-adaptive result on the hardest cg/numa rows; 512 keeps every
    /// bench row within 1.05x while retaining most of the speedup.
    pub refine_interval_scale: usize,
    /// Coarsen-depth floor: never coarsen below this many clusters, even if
    /// `coarsen_ratios` asks for fewer (`0` disables).  Marginal analysis of
    /// the measured phase timings: one more contraction saves base-solve
    /// work proportional to the coarse size `t` (the base pipeline's sweeps
    /// are superlinear) but costs a fixed amount of uncontraction +
    /// refinement work, so below some absolute `t*` further coarsening is a
    /// net loss — an absolute floor, not a ratio.
    pub min_coarse_nodes: usize,
    /// Maximum number of accepted `HC` moves per refinement phase (paper: 100).
    pub refine_max_steps: usize,
    /// Time limit for each refinement phase.
    pub refine_time_limit: Duration,
    /// Configuration of the base pipeline used on the coarse DAG.  Its
    /// `use_ilp_cs` flag is forced off (Figure 4 runs `ILPcs` only after
    /// uncoarsening).
    pub base: PipelineConfig,
    /// Time limit of the final `HCcs` pass on the uncoarsened DAG.
    pub final_comm_time_limit: Duration,
    /// Total thread budget of one multilevel solve: the ratio portfolio fans
    /// out across it and each ratio run refines with `threads / #ratios`
    /// intra-search lanes (floored to serial below the parallel driver's
    /// break-even — see [`crate::parallel_budget`]), so the whole solve
    /// never uses more than `threads` cores.  `0` (the default) budgets one
    /// thread per available core; `1` runs everything — portfolio included —
    /// sequentially, which is what a serving worker with a one-core budget
    /// wants.
    pub threads: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_ratios: vec![0.3, 0.15],
            min_nodes_to_coarsen: 30,
            refine_interval: 5,
            refine_interval_scale: 512,
            min_coarse_nodes: 0,
            refine_max_steps: 100,
            refine_time_limit: Duration::from_millis(500),
            base: PipelineConfig::default(),
            final_comm_time_limit: Duration::from_secs(2),
            threads: 0,
        }
    }
}

impl MultilevelConfig {
    /// A small configuration suitable for unit tests and quick experiments.
    pub fn fast() -> Self {
        MultilevelConfig {
            coarsen_ratios: vec![0.3, 0.15],
            min_nodes_to_coarsen: 30,
            refine_interval: 5,
            refine_interval_scale: 512,
            min_coarse_nodes: 0,
            refine_max_steps: 50,
            refine_time_limit: Duration::from_millis(100),
            base: PipelineConfig::fast(),
            final_comm_time_limit: Duration::from_millis(200),
            threads: 0,
        }
    }

    /// Uses a single coarsening ratio (the paper's `C15` / `C30` variants).
    pub fn with_single_ratio(mut self, ratio: f64) -> Self {
        self.coarsen_ratios = vec![ratio];
        self
    }

    /// Sets the solve-wide thread budget (see [`MultilevelConfig::threads`])
    /// and returns the configuration.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the coarsen-depth floor (see [`MultilevelConfig::min_coarse_nodes`])
    /// and returns the configuration.  Deadline-bound serving requests use
    /// this to cap how deep — and therefore how long — coarsening runs.
    pub fn with_min_coarse_nodes(mut self, min_coarse_nodes: usize) -> Self {
        self.min_coarse_nodes = min_coarse_nodes;
        self
    }

    /// The concrete thread budget: `threads`, or one per available core when
    /// `0`.
    pub fn effective_threads(&self) -> usize {
        crate::resolve_threads(self.threads)
    }

    /// Intra-search lanes each ratio run refines with: the budget divided by
    /// the portfolio width, floored to serial below the parallel driver's
    /// break-even (a budget is a cap; under-using it is always legal).
    fn threads_per_ratio(&self) -> usize {
        crate::parallel_budget(self.effective_threads() / self.coarsen_ratios.len().max(1))
    }
}

/// Wall-clock breakdown of one coarsening-ratio run, by phase.  This is what
/// makes a refinement-dominated tail (the regime where multilevel speedup
/// decays on large instances) diagnosable from a bench row instead of a
/// profiler session.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Contracting the DAG down to the coarse target.
    pub coarsen_seconds: f64,
    /// The base pipeline on the coarse DAG.
    pub base_solve_seconds: f64,
    /// Undoing contractions (split patches), across all levels.
    pub uncontract_seconds: f64,
    /// The dirty-seeded interleaved refinement phases (excludes the final
    /// full sweep).
    pub refine_seconds: f64,
    /// Number of interleaved refinement phases that ran.
    pub refine_phases: usize,
    /// The final full refinement sweep over the uncoarsened DAG.
    pub final_sweep_seconds: f64,
    /// The final communication-schedule optimization (`HCcs` + optional
    /// `ILPcs`).
    pub final_comm_seconds: f64,
    /// Round/batch counters of the batch coarsener (see [`CoarsenStats`]).
    pub coarsen_stats: CoarsenStats,
}

impl PhaseTimings {
    /// Element-wise sum (for aggregating a portfolio's runs).
    pub fn add(&mut self, other: &PhaseTimings) {
        self.coarsen_seconds += other.coarsen_seconds;
        self.base_solve_seconds += other.base_solve_seconds;
        self.uncontract_seconds += other.uncontract_seconds;
        self.refine_seconds += other.refine_seconds;
        self.refine_phases += other.refine_phases;
        self.final_sweep_seconds += other.final_sweep_seconds;
        self.final_comm_seconds += other.final_comm_seconds;
        self.coarsen_stats.add(&other.coarsen_stats);
    }
}

/// Result of one coarsening-ratio run inside the multilevel scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioOutcome {
    /// Coarsening ratio used.
    pub ratio: f64,
    /// Number of clusters the DAG was coarsened to.
    pub coarse_nodes: usize,
    /// Cost of the final (uncoarsened, refined) schedule of this run.
    pub cost: u64,
    /// Where this run's wall-clock went.
    pub timings: PhaseTimings,
}

/// Report of a multilevel run.
#[derive(Debug, Clone)]
pub struct MultilevelReport {
    /// One entry per coarsening ratio attempted (empty when the DAG was too
    /// small to coarsen and the base pipeline ran directly).
    pub ratio_outcomes: Vec<RatioOutcome>,
    /// `true` if coarsening was skipped because the DAG is too small.
    pub used_base_only: bool,
    /// Cost of the selected schedule.
    pub final_cost: u64,
    /// The selected schedule.
    pub schedule: BspSchedule,
}

impl MultilevelReport {
    /// Phase timings summed across the portfolio's ratio runs (CPU-time-like:
    /// parallel ratio runs overlap on the wall clock).
    pub fn total_timings(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for outcome in &self.ratio_outcomes {
            total.add(&outcome.timings);
        }
        total
    }
}

/// The multilevel scheduler (Figure 4).
#[derive(Debug, Clone, Default)]
pub struct MultilevelScheduler {
    config: MultilevelConfig,
}

impl MultilevelScheduler {
    /// Creates a multilevel scheduler with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelScheduler { config }
    }

    /// The configuration this scheduler runs with.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }

    /// Runs the multilevel scheduler and returns the final schedule.
    pub fn run(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        self.run_report(dag, machine).schedule
    }

    /// Runs the multilevel scheduler and returns the schedule together with
    /// per-ratio statistics.
    pub fn run_report(&self, dag: &Dag, machine: &Machine) -> MultilevelReport {
        let base_only =
            dag.n() < self.config.min_nodes_to_coarsen || self.config.coarsen_ratios.is_empty();
        // The base pipeline inherits this solve's thread budget — the whole
        // budget when it runs alone, each portfolio member's share otherwise.
        // Without this the coarse solves would fan their init branches out to
        // available_parallelism underneath whatever budget the caller set.
        let base_budget = if base_only {
            self.config.effective_threads()
        } else {
            self.config.threads_per_ratio()
        };
        let base_pipeline = Pipeline::new(PipelineConfig {
            use_ilp_cs: false,
            ..self.config.base.clone().with_thread_budget(base_budget)
        });
        if base_only {
            let mut schedule = base_pipeline.run(dag, machine);
            self.final_comm_optimization(dag, machine, &mut schedule);
            let final_cost = schedule.cost(dag, machine);
            return MultilevelReport {
                ratio_outcomes: Vec::new(),
                used_base_only: true,
                final_cost,
                schedule,
            };
        }

        // The per-ratio runs are completely independent — fan them out on the
        // rayon pool and keep the cheapest result (ties favour the first
        // configured ratio, as the sequential loop did).  A thread budget of
        // one runs the portfolio sequentially instead: a serving worker that
        // was handed a single core must not fan out underneath its caller.
        let runs: Vec<(BspSchedule, usize, PhaseTimings)> = if self.config.effective_threads() > 1 {
            self.config
                .coarsen_ratios
                .par_iter()
                .map(|&ratio| self.run_single_ratio(dag, machine, &base_pipeline, ratio))
                .collect()
        } else {
            self.config
                .coarsen_ratios
                .iter()
                .map(|&ratio| self.run_single_ratio(dag, machine, &base_pipeline, ratio))
                .collect()
        };
        let mut ratio_outcomes = Vec::new();
        let mut best: Option<BspSchedule> = None;
        let mut best_cost = u64::MAX;
        for (&ratio, (schedule, coarse_nodes, timings)) in
            self.config.coarsen_ratios.iter().zip(runs)
        {
            let cost = schedule.cost(dag, machine);
            ratio_outcomes.push(RatioOutcome {
                ratio,
                coarse_nodes,
                cost,
                timings,
            });
            if cost < best_cost {
                best_cost = cost;
                best = Some(schedule);
            }
        }
        let schedule = best.expect("at least one coarsening ratio configured");
        MultilevelReport {
            ratio_outcomes,
            used_base_only: false,
            final_cost: best_cost,
            schedule,
        }
    }

    /// One full coarsen–solve–refine run at a single coarsening ratio.
    /// Returns the final schedule and the coarse node count.
    ///
    /// The uncoarsening side is fully incremental: the [`IncrementalRefiner`]
    /// keeps one warm hill-climbing state over the persistent quotient graph,
    /// so nothing is rebuilt between refinement phases.  Because every split
    /// places both halves at the merged cluster's processor and superstep,
    /// the engine's final assignment *is* the original-node assignment once
    /// uncoarsening completes — no member projection pass is needed either.
    fn run_single_ratio(
        &self,
        dag: &Dag,
        machine: &Machine,
        base_pipeline: &Pipeline,
        ratio: f64,
    ) -> (BspSchedule, usize, PhaseTimings) {
        let mut timings = PhaseTimings::default();
        // Coarsen-depth policy: the ratio's target, floored by
        // `min_coarse_nodes` — past that point one more contraction costs
        // more projected uncontraction/refinement work than it saves in the
        // base solve (see the config field's docs).
        let target = ((dag.n() as f64 * ratio).round() as usize)
            .max(self.config.min_coarse_nodes)
            .clamp(2, dag.n().saturating_sub(1).max(2));
        let clock = std::time::Instant::now();
        let coarsening = coarsen_with(
            dag,
            target,
            &CoarsenConfig {
                threads: self.config.threads_per_ratio(),
                ..CoarsenConfig::default()
            },
        );
        timings.coarsen_seconds = clock.elapsed().as_secs_f64();
        timings.coarsen_stats = coarsening.stats;
        let (clustering, quotient) = coarsening.into_parts();
        let coarse_nodes = clustering.num_clusters();

        // Solve on the coarse DAG (the one from-scratch quotient build of the
        // whole run: the base pipeline's schedulers want an immutable `Dag`).
        let clock = std::time::Instant::now();
        let (coarse_dag, reps) = clustering.quotient_dag(dag);
        let coarse_schedule = base_pipeline.run(&coarse_dag, machine);
        timings.base_solve_seconds = clock.elapsed().as_secs_f64();

        // Thread the coarse schedule onto the quotient's representatives.
        let mut proc = vec![0usize; dag.n()];
        let mut step = vec![0usize; dag.n()];
        for (i, &rep) in reps.iter().enumerate() {
            proc[rep] = coarse_schedule.proc(i);
            step[rep] = coarse_schedule.superstep(i);
        }
        let mut refiner = IncrementalRefiner::new(
            machine,
            quotient,
            Assignment {
                proc,
                superstep: step,
            },
        )
        .expect("the base pipeline produces lazily-feasible schedules");

        // Uncoarsen step by step, refining every `refine_interval` steps.
        // Uncontractions themselves always run to completion (the assignment
        // is only meaningful over the original node space once fully
        // uncoarsened); under cancellation the refinement phases between them
        // degenerate to no-ops, so the walk stays cheap.
        let refine_config = HillClimbConfig {
            time_limit: self.config.refine_time_limit,
            max_steps: self.config.refine_max_steps,
            cancel: self.config.base.effective_cancel(),
            // Each portfolio member refines with its share of the solve-wide
            // budget, so #ratios × refine-lanes never exceeds it.
            threads: self.config.threads_per_ratio(),
        };
        let mut since_refine = 0usize;
        // Adaptive interval: one phase every `max(refine_interval,
        // active / refine_interval_scale)` splits (see the config docs) —
        // the split batch a phase absorbs grows with the level, keeping the
        // number of phases per size doubling constant.
        let mut active = coarse_nodes;
        loop {
            let clock = std::time::Instant::now();
            let more = refiner.uncontract_one().is_some();
            timings.uncontract_seconds += clock.elapsed().as_secs_f64();
            since_refine += 1;
            active += 1;
            let fully_uncoarsened = !more;
            if fully_uncoarsened {
                // Mirror the previous implementation's last phase: one global
                // refinement pass over the fully uncoarsened DAG.
                let clock = std::time::Instant::now();
                refiner.refine_full(&refine_config);
                timings.final_sweep_seconds = clock.elapsed().as_secs_f64();
                break;
            }
            // `checked_div` doubles as the `scale == 0` disable switch.
            let interval = match active.checked_div(self.config.refine_interval_scale) {
                Some(scaled) => self.config.refine_interval.max(scaled),
                None => self.config.refine_interval,
            };
            if since_refine >= interval {
                let clock = std::time::Instant::now();
                refiner.refine(&refine_config);
                timings.refine_seconds += clock.elapsed().as_secs_f64();
                timings.refine_phases += 1;
                since_refine = 0;
            }
        }

        let mut schedule = BspSchedule::from_assignment_lazy(dag, refiner.into_assignment());
        schedule.normalize(dag);
        let clock = std::time::Instant::now();
        self.final_comm_optimization(dag, machine, &mut schedule);
        timings.final_comm_seconds = clock.elapsed().as_secs_f64();
        // A broken uncoarsening projection must not ship silently in release
        // builds: validate the one final schedule of this ratio run and name
        // the offending edge if anything went wrong.
        if let Err(err) = schedule.validate(dag, machine) {
            panic!(
                "multilevel run at coarsening ratio {ratio} produced an invalid schedule: {err}"
            );
        }
        (schedule, coarse_nodes, timings)
    }

    /// The communication-schedule optimization that Figure 4 runs after
    /// uncoarsening: `HCcs` followed by `ILPcs` (when the base pipeline has
    /// its ILP stage enabled).  `HCcs` runs with each ratio run's share of
    /// the thread budget (the pass is called once per portfolio member).
    fn final_comm_optimization(&self, dag: &Dag, machine: &Machine, schedule: &mut BspSchedule) {
        let cancel = self.config.base.effective_cancel();
        let hccs_cfg = HillClimbConfig {
            time_limit: self.config.final_comm_time_limit,
            max_steps: usize::MAX,
            cancel: cancel.clone(),
            threads: self.config.threads_per_ratio(),
        };
        hccs_improve(dag, machine, schedule, &hccs_cfg);
        if self.config.base.use_ilp {
            let ilp_config = crate::ilp::IlpConfig {
                cancel,
                ..self.config.base.ilp.clone()
            };
            ilp_cs_improve(dag, machine, schedule, &ilp_config);
        }
    }
}

impl Scheduler for MultilevelScheduler {
    fn name(&self) -> &'static str {
        "Multilevel"
    }

    fn schedule(&self, dag: &Dag, machine: &Machine) -> BspSchedule {
        self.run(dag, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::TrivialScheduler;
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    fn fast_ml() -> MultilevelScheduler {
        MultilevelScheduler::new(MultilevelConfig::fast())
    }

    #[test]
    fn multilevel_returns_valid_schedules() {
        let dag = cg(&IterConfig {
            n: 12,
            density: 0.25,
            iterations: 2,
            seed: 5,
        });
        for machine in [
            Machine::uniform(4, 3, 5),
            Machine::numa_binary_tree(8, 1, 5, 4),
        ] {
            let report = fast_ml().run_report(&dag, &machine);
            assert!(report.schedule.validate(&dag, &machine).is_ok());
            assert_eq!(report.final_cost, report.schedule.cost(&dag, &machine));
        }
    }

    #[test]
    fn small_dags_fall_back_to_the_base_pipeline() {
        let dag = spmv(&SpmvConfig {
            n: 4,
            density: 0.4,
            seed: 2,
        });
        let machine = Machine::uniform(4, 1, 5);
        let report = fast_ml().run_report(&dag, &machine);
        assert!(report.used_base_only);
        assert!(report.ratio_outcomes.is_empty());
        assert!(report.schedule.validate(&dag, &machine).is_ok());
    }

    #[test]
    fn multilevel_tries_every_configured_ratio_and_keeps_the_best() {
        let dag = cg(&IterConfig {
            n: 10,
            density: 0.3,
            iterations: 2,
            seed: 9,
        });
        let machine = Machine::numa_binary_tree(8, 1, 5, 4);
        let report = fast_ml().run_report(&dag, &machine);
        assert!(!report.used_base_only);
        assert_eq!(report.ratio_outcomes.len(), 2);
        let min_ratio_cost = report.ratio_outcomes.iter().map(|o| o.cost).min().unwrap();
        assert_eq!(report.final_cost, min_ratio_cost);
        for outcome in &report.ratio_outcomes {
            assert!(outcome.coarse_nodes < dag.n());
        }
    }

    #[test]
    fn multilevel_is_competitive_with_trivial_under_heavy_numa() {
        // A communication-heavy instance under an aggressive NUMA hierarchy:
        // the regime the multilevel scheduler was designed for (§7.3).  The
        // paper reports that the multilevel scheduler beats the trivial
        // single-processor schedule in almost all (but not literally all)
        // cases, so here we only require it to stay within a small factor of
        // the trivial cost — far below what a NUMA-oblivious spread-out
        // schedule would pay.
        let dag = cg(&IterConfig {
            n: 14,
            density: 0.3,
            iterations: 3,
            seed: 11,
        });
        let machine = Machine::numa_binary_tree(16, 1, 5, 4);
        let ml_cost = fast_ml().run(&dag, &machine).cost(&dag, &machine);
        let trivial_cost = TrivialScheduler
            .schedule(&dag, &machine)
            .cost(&dag, &machine);
        assert!(
            ml_cost <= trivial_cost.saturating_mul(3) / 2,
            "multilevel {ml_cost} far worse than trivial {trivial_cost}"
        );
    }

    #[test]
    fn single_ratio_configuration_runs_one_outcome() {
        let dag = spmv(&SpmvConfig {
            n: 16,
            density: 0.25,
            seed: 4,
        });
        let machine = Machine::uniform(4, 5, 5);
        let ml = MultilevelScheduler::new(MultilevelConfig::fast().with_single_ratio(0.3));
        let report = ml.run_report(&dag, &machine);
        assert_eq!(report.ratio_outcomes.len(), 1);
        assert!((report.ratio_outcomes[0].ratio - 0.3).abs() < 1e-9);
    }
}
