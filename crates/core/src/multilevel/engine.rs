//! The incremental uncoarsen-and-refine engine.
//!
//! [`IncrementalRefiner`] owns the persistent [`QuotientDag`] a coarsening
//! run left behind, together with a warm [`HcState`] over it.  Undoing one
//! contraction is a three-step *split delta* instead of a rebuild:
//!
//! 1. [`HcState::pre_split`] removes the merged cluster's lazy-communication
//!    contributions from the tallies (pre-split graph),
//! 2. [`QuotientDag::uncontract_one`] splits the cluster in `O(deg)`,
//! 3. [`HcState::post_split`] activates the split-off half at the same
//!    processor and superstep and adds both halves' contributions back.
//!
//! Each refinement phase then runs the work-list search [`hc_search`] seeded
//! with only the *dirty* nodes — the split halves, their quotient neighbours,
//! and the nodes of every superstep whose tallies a split touched — so a
//! phase costs `O(local change)`, not `O(n + m)`.  The previous
//! implementation rebuilt the quotient DAG (`DagBuilder` + `BTreeSet` edge
//! dedup), re-projected the assignment, and constructed a fresh `HcState`
//! for every phase.

use crate::hill_climb::{
    hc_search, HcState, HillClimbConfig, HillClimbOutcome, ParallelHc, SearchScratch,
};
use bsp_model::{Assignment, DagView, Machine, NodeId, QuotientDag, ValidityError};

/// Warm uncoarsening state: a mutable quotient graph plus the hill-climbing
/// state tracking its current assignment, patched in lockstep.
#[derive(Debug)]
pub struct IncrementalRefiner<'a> {
    machine: &'a Machine,
    quotient: QuotientDag,
    state: HcState<'a>,
    scratch: SearchScratch,
    /// Nodes whose best move may have changed since the last refinement
    /// phase; seeds the next phase's work-list.
    dirty: Vec<usize>,
    dirty_mark: Vec<bool>,
    /// Supersteps whose tallies a split touched since the last refinement
    /// phase.  Memberships are expanded to nodes *once per phase*
    /// ([`IncrementalRefiner::seed_dirty_steps`]), not once per split: with
    /// the paper's interval of 5 (and the adaptive interval above it) the
    /// same step is typically touched by several splits of one batch, and
    /// per-split expansion made uncontraction cost `O(step size)` each time.
    dirty_steps: Vec<usize>,
    dirty_step_mark: Vec<bool>,
    /// Batch-speculative parallel driver, created on the first refinement
    /// phase that asks for more than one thread and reused (lanes and all)
    /// across every later phase, so warm parallel phases allocate nothing.
    parallel: Option<ParallelHc>,
}

impl<'a> IncrementalRefiner<'a> {
    /// Builds the engine from a coarsened quotient and an assignment over its
    /// node space (entries of inactive nodes are ignored; leave them `(0, 0)`).
    /// The assignment must be feasible for the lazy communication schedule;
    /// otherwise the offending edge is reported.
    pub fn new(
        machine: &'a Machine,
        quotient: QuotientDag,
        assignment: Assignment,
    ) -> Result<Self, ValidityError> {
        let n = quotient.n();
        let state = HcState::new(&quotient, machine, assignment)?;
        let mut scratch = SearchScratch::new();
        scratch.reserve(n);
        let num_steps = state.num_supersteps();
        Ok(IncrementalRefiner {
            machine,
            quotient,
            state,
            scratch,
            dirty: Vec::with_capacity(n),
            dirty_mark: vec![false; n],
            dirty_steps: Vec::with_capacity(num_steps + 16),
            dirty_step_mark: vec![false; num_steps + 16],
            parallel: None,
        })
    }

    /// The quotient graph at the current uncoarsening level.
    pub fn quotient(&self) -> &QuotientDag {
        &self.quotient
    }

    /// Cost of the current assignment under the lazy communication schedule.
    pub fn cost(&self) -> u64 {
        self.state.total_cost()
    }

    /// A snapshot of the current assignment (see [`IncrementalRefiner::new`]
    /// for the convention on inactive entries).
    pub fn assignment(&self) -> Assignment {
        self.state.assignment()
    }

    /// `true` once every contraction has been undone.
    pub fn fully_uncoarsened(&self) -> bool {
        self.quotient.num_contractions() == 0
    }

    /// Undoes one contraction, patching the hill-climbing state in `O(deg)`
    /// (see the module docs), and marks the affected nodes dirty for the next
    /// refinement phase.  Returns the `(kept, removed)` pair, or `None` when
    /// already fully uncoarsened.
    pub fn uncontract_one(&mut self) -> Option<(NodeId, NodeId)> {
        let (kept, _) = self.quotient.peek_uncontract()?;
        self.state.pre_split(&self.quotient, kept);
        let (kept, removed) = self
            .quotient
            .uncontract_one()
            .expect("peeked contraction exists");
        self.state.post_split(&self.quotient, kept, removed);

        // Dirty-set rule, mirroring the in-search re-enqueue policy: the
        // split halves, their quotient neighbours, and every node of a
        // superstep whose communication tallies the split touched.  The
        // touched *steps* are only recorded here; membership expansion is
        // deferred to the next phase so a step several splits of one batch
        // touch is expanded once (node supersteps do not change between
        // phases — only phases move nodes — so deferred expansion marks the
        // same nodes per-split expansion would).
        let Self {
            quotient,
            state,
            dirty,
            dirty_mark,
            dirty_steps,
            dirty_step_mark,
            ..
        } = self;
        let mut mark = |v: usize| {
            if !dirty_mark[v] {
                dirty_mark[v] = true;
                dirty.push(v);
            }
        };
        for half in [kept, removed] {
            mark(half);
            for &u in quotient.predecessors(half) {
                mark(u);
            }
            for &w in quotient.successors(half) {
                mark(w);
            }
        }
        for &s in state.last_affected_steps() {
            if s >= dirty_step_mark.len() {
                dirty_step_mark.resize(s + 16, false);
            }
            if !dirty_step_mark[s] {
                dirty_step_mark[s] = true;
                dirty_steps.push(s);
            }
        }
        Some((kept, removed))
    }

    /// Expands the accumulated dirty steps into dirty nodes.  Must run
    /// *before* [`HcState::compact_steps`]: compaction renumbers supersteps,
    /// and the recorded indices refer to the pre-compaction numbering.
    fn seed_dirty_steps(&mut self) {
        let Self {
            state,
            dirty,
            dirty_mark,
            dirty_steps,
            dirty_step_mark,
            ..
        } = self;
        for &s in dirty_steps.iter() {
            dirty_step_mark[s] = false;
            for &x in state.nodes_in_superstep(s) {
                if !dirty_mark[x] {
                    dirty_mark[x] = true;
                    dirty.push(x);
                }
            }
        }
        dirty_steps.clear();
    }

    /// Runs one warm-started refinement phase: the work-list search seeded
    /// with the dirty set accumulated since the previous phase.  No
    /// verification sweep — the phase examines only nodes whose neighbourhood
    /// actually changed (plus whatever its own accepted moves dirty).
    ///
    /// Supersteps the previous phase drained are compacted first (the
    /// counterpart of the `normalize` the old rebuild-per-phase flow ran);
    /// that rebuild is `O(n)` but fires only when a step actually emptied.
    pub fn refine(&mut self, config: &HillClimbConfig) -> HillClimbOutcome {
        self.seed_dirty_steps();
        self.state.compact_steps(&self.quotient);
        for &v in &self.dirty {
            self.dirty_mark[v] = false;
            self.scratch.enqueue(v);
        }
        self.dirty.clear();
        self.search(config, false)
    }

    /// Runs the seeded work-list search with the driver
    /// [`HillClimbConfig::threads`] selects: the serial first-improvement
    /// loop, or the batch-speculative parallel driver (kept warm across
    /// phases).
    fn search(&mut self, config: &HillClimbConfig, full_sweep: bool) -> HillClimbOutcome {
        let threads = config.effective_threads();
        if threads > 1 {
            if self
                .parallel
                .as_ref()
                .is_none_or(|p| p.threads() != threads)
            {
                self.parallel = Some(ParallelHc::new(threads));
            }
            let driver = self.parallel.as_mut().expect("created above");
            driver.search(
                &self.quotient,
                self.machine,
                &mut self.state,
                config,
                &mut self.scratch,
                full_sweep,
            )
        } else {
            hc_search(
                &self.quotient,
                self.machine,
                &mut self.state,
                config,
                &mut self.scratch,
                full_sweep,
            )
        }
    }

    /// Runs a *full* refinement phase: every active node is enqueued and the
    /// search sweeps to certification (or the configured limits).  The
    /// scheduler runs this once at the end of uncoarsening — the dirty-seeded
    /// phases are local by design, and one global pass over the final graph
    /// catches improvements whose enabling moves straddled phase boundaries.
    pub fn refine_full(&mut self, config: &HillClimbConfig) -> HillClimbOutcome {
        for &s in &self.dirty_steps {
            self.dirty_step_mark[s] = false;
        }
        self.dirty_steps.clear();
        self.state.compact_steps(&self.quotient);
        for &v in &self.dirty {
            self.dirty_mark[v] = false;
        }
        self.dirty.clear();
        self.scratch.enqueue_all(&self.quotient);
        self.search(config, true)
    }

    /// Consumes the engine and returns the final assignment.  Meaningful over
    /// the original node space once fully uncoarsened (every node then being
    /// its own cluster).
    pub fn into_assignment(self) -> Assignment {
        self.state.into_assignment()
    }
}
