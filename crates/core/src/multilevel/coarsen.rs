//! Acyclicity-preserving DAG coarsening by **round-based batch contraction**
//! (§4.5 and Appendix A.5 of the paper).
//!
//! Each contraction merges the endpoints of one edge `(u, v)` into a single
//! cluster.  An edge can only be contracted when there is no *other* directed
//! path from `u` to `v`, otherwise the quotient graph would acquire a cycle.
//! We use the sufficient criterion the paper points out: for every non-sink
//! cluster `u`, the out-neighbour with the smallest topological rank is always
//! safely contractable.  Among these candidate edges we prefer small merged
//! work weight `w(u) + w(v)` (the first third of the candidates sorted by it)
//! and, within that prefix, the largest communication weight `c(u)` — the
//! paper's selection rule.
//!
//! # Rounds and batches
//!
//! The previous implementation contracted **one edge at a time**, repairing a
//! `BTreeSet`-backed candidate pool after every contraction
//! (`O((deg u + deg v) · log n)` churn) and rebuilding the whole pool every 32
//! contractions when ranks were re-anchored.  [`BatchCoarsener`] replaces that
//! with a per-round schedule that touches every structure **once per round**:
//!
//! 1. **Scan** — one fresh Kahn sweep re-anchors the topological ranks
//!    (reusable buffers, no allocation), then every active cluster is scanned
//!    for its minimum-rank contractable out-edge.  The scan is embarrassingly
//!    parallel: with a thread budget `> 1` it fans out over compat-rayon
//!    lanes, each lane writing into its own pre-chunked slice of a flat
//!    positional output array — results are **identical for every lane
//!    count** by construction.
//! 2. **Select** — candidates are compacted into a flat array and the paper's
//!    rule is applied batch-wide: an `O(k)` partition (`select_nth_unstable`)
//!    isolates the first third by merged work weight, which is then ordered
//!    by descending comm weight.  Walking that canonical order, a greedy pass
//!    claims an **endpoint-disjoint** batch (the same discipline as
//!    `ParallelHc`'s cell claiming), capped so the round never overshoots the
//!    cluster target.  A final *rank-window* sweep classifies the claimed
//!    windows `[rank(u), rank(v)]` as nested/disjoint/crossing — see the
//!    lemma below for why all three are safe here — and counts the crossing
//!    pairs into [`CoarsenStats::window_crossings`].
//! 3. **Apply** — the batch is contracted against the persistent
//!    [`QuotientDag`] in canonical order.  Each edge is its source's
//!    minimum-rank successor and batch members are endpoint-disjoint, and a
//!    contraction can only *raise* the rank a neighbour observes (the merged
//!    cluster adopts the absorbed endpoint's rank), so every edge still
//!    satisfies the contraction precondition when its turn comes — checked by
//!    `QuotientDag::contract`'s debug assertions.
//!
//! # Why an endpoint-disjoint batch cannot create a cycle
//!
//! The worry for batch contraction is two selected edges closing a path
//! through each other (the classic counterexample: contract `u→v` and `x→y`
//! with paths `v→…→x` and `y→…→u`).  The paper's criterion rules this out
//! unconditionally — a *rank-monotonicity lemma*: ranks are a strict
//! topological numbering (re-anchored each round), and each selected `v` is
//! its source's *minimum-rank* successor, so every other out-edge of `u` and
//! every out-edge of `v` targets a rank **above** `rank(v)`.  The cluster
//! merged from `(u, v)` therefore exits only above its merge point
//! `rank(v)`, while it can be entered at a rank at most `rank(v)`: any path
//! between merged clusters strictly increases the merge ranks it visits and
//! can never return to where it started.  The same monotonicity keeps the
//! contraction precondition intact during sequential application: a batch
//! contraction only raises the ranks a neighbour observes and batch members
//! share no endpoints, so each member's target is still its source's
//! min-rank successor when its turn comes.  Batch safety needs
//! endpoint-disjointness and nothing else — crossing rank windows included.
//!
//! # The sequential quality tail
//!
//! Batch rounds buy their throughput by freezing the selection keys for a
//! whole round: every contraction of a batch is chosen against the *same*
//! snapshot, whereas the sequential rule repairs the pool after every single
//! merge.  On wide levels the two walks are statistically indistinguishable
//! (cluster counts, quotient edge counts, depth, and weight profiles agree to
//! within a percent), but the last few thousand clusters are exactly where
//! the coarse solve's search basin is decided, and there the snapshot drift
//! measurably perturbs final schedule costs on basin-sensitive instances.
//! [`CoarsenConfig::tail_width`] therefore bounds the batch engine from
//! below: rounds run while more than `max(target, tail_width)` clusters are
//! active, and the remaining gap down to the target is closed by the exact
//! pool-based sequential coarsener this module used to be — the
//! `BTreeSet`-backed [`CandidatePool`](self) with per-contraction repair and
//! rank re-anchoring every 32 contractions.  A run that starts at or below
//! the tail width reproduces the sequential coarsener bit for bit; a huge
//! run whose target sits above the tail width never leaves the batch engine.
//! Tail steps are accounted as width-1 rounds and additionally counted in
//! [`CoarsenStats::tail_contractions`].
//!
//! The contraction history is the same LIFO [`Contraction`] sequence either
//! engine emits, so uncoarsening and the warm incremental refiner are
//! untouched.  Per batch round the cost is `O(n + m)` for the sweep and scan
//! plus `O(k log k)` for ordering the prefix, and the number of rounds
//! shrinks geometrically with the batch widths (tracked in
//! [`CoarsenStats`]).

use bsp_model::{Dag, DagBuilder, DagView, NodeId, QuotientDag};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::ops::Bound::{Excluded, Unbounded};
use std::time::Instant;

/// One contraction step: the cluster represented by `removed` was merged into
/// the cluster represented by `kept`.  `moved` lists the original nodes that
/// changed cluster, which is all the information needed to undo the step.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// Representative (original node id) of the surviving cluster.
    pub kept: NodeId,
    /// Representative of the cluster that was absorbed.
    pub removed: NodeId,
    /// Original nodes that moved from `removed`'s cluster into `kept`'s.
    pub moved: Vec<NodeId>,
}

/// A clustering of the original DAG's nodes, produced by coarsening and
/// gradually undone while uncoarsening.
///
/// The representative list is maintained incrementally (swap-remove on
/// contraction, exact LIFO restore on uncontraction), so
/// [`Clustering::representatives`] is a slice borrow and
/// [`Clustering::quotient_dag`] needs no `O(n)` index array — both used to
/// allocate afresh on every refinement phase.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `cluster_of[v]` is the representative of the cluster containing `v`.
    cluster_of: Vec<NodeId>,
    /// Members of each cluster, indexed by representative (empty otherwise).
    members: Vec<Vec<NodeId>>,
    /// `true` for nodes that currently represent a cluster.
    active: Vec<bool>,
    /// Current representatives (deterministic but unspecified order).
    reps: Vec<NodeId>,
    /// Position of each representative inside `reps` (stale for inactive).
    rep_pos: Vec<usize>,
    /// Contraction history, oldest first.
    history: Vec<Contraction>,
}

impl Clustering {
    /// The discrete clustering: every node is its own cluster.
    pub fn identity(n: usize) -> Self {
        Clustering {
            cluster_of: (0..n).collect(),
            members: (0..n).map(|v| vec![v]).collect(),
            active: vec![true; n],
            reps: (0..n).collect(),
            rep_pos: (0..n).collect(),
            history: Vec::new(),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.reps.len()
    }

    /// Number of recorded contraction steps not yet undone.
    pub fn num_contractions(&self) -> usize {
        self.history.len()
    }

    /// Representative of the cluster containing original node `v`.
    pub fn cluster_of(&self, v: NodeId) -> NodeId {
        self.cluster_of[v]
    }

    /// Representatives of all clusters, in a deterministic (but unspecified)
    /// order; entry `i` corresponds to quotient node `i` of
    /// [`Clustering::quotient_dag`].  Maintained incrementally — no per-call
    /// allocation or scan.
    pub fn representatives(&self) -> &[NodeId] {
        &self.reps
    }

    /// Quotient node index of the cluster represented by `rep`.
    pub fn rep_index(&self, rep: NodeId) -> usize {
        debug_assert!(self.active[rep]);
        self.rep_pos[rep]
    }

    /// Original members of the cluster represented by `rep`.
    pub fn members(&self, rep: NodeId) -> &[NodeId] {
        &self.members[rep]
    }

    fn contract(&mut self, kept: NodeId, removed: NodeId) {
        debug_assert!(self.active[kept] && self.active[removed] && kept != removed);
        let moved = std::mem::take(&mut self.members[removed]);
        for &v in &moved {
            self.cluster_of[v] = kept;
        }
        self.members[kept].extend_from_slice(&moved);
        self.active[removed] = false;
        // Swap-remove `removed` from the representative list; the element
        // moved into its slot gets its position fixed up.
        let pos = self.rep_pos[removed];
        self.reps.swap_remove(pos);
        if pos < self.reps.len() {
            self.rep_pos[self.reps[pos]] = pos;
        }
        self.history.push(Contraction {
            kept,
            removed,
            moved,
        });
    }

    /// Undoes the most recent contraction step.  Returns `false` when the
    /// history is empty (the clustering is already fully uncoarsened).
    pub fn uncontract_one(&mut self) -> bool {
        let Some(Contraction {
            kept,
            removed,
            moved,
        }) = self.history.pop()
        else {
            return false;
        };
        // The moved nodes were appended to `kept`'s member list, so they form
        // its tail; split them back off.
        let keep_len = self.members[kept].len() - moved.len();
        let tail = self.members[kept].split_off(keep_len);
        debug_assert_eq!(tail, moved);
        for &v in &moved {
            self.cluster_of[v] = removed;
        }
        self.members[removed] = moved;
        self.active[removed] = true;
        // Exact inverse of the swap-remove: push `removed`, then swap it back
        // into its old slot (LIFO order guarantees the old occupant of the
        // last slot is the element the swap-remove displaced).
        let pos = self.rep_pos[removed];
        self.reps.push(removed);
        let last = self.reps.len() - 1;
        if pos != last {
            self.reps.swap(pos, last);
            self.rep_pos[self.reps[last]] = last;
            self.rep_pos[self.reps[pos]] = pos;
        }
        true
    }

    /// Builds the quotient DAG of the current clustering: one node per
    /// cluster, work/communication weights summed over the members, an edge
    /// between two clusters whenever the original DAG has an edge between
    /// members of the two.  Returns the quotient DAG together with the list of
    /// representatives, where representative `reps[i]` corresponds to quotient
    /// node `i`.
    ///
    /// This is the *from-scratch* construction: the multilevel scheduler calls
    /// it once per ratio run (to hand the base pipeline an immutable [`Dag`])
    /// and the property tests use it as the reference the incremental
    /// [`QuotientDag`] must stay isomorphic to.
    pub fn quotient_dag(&self, dag: &Dag) -> (Dag, Vec<NodeId>) {
        let mut builder = DagBuilder::new();
        for &r in &self.reps {
            let work = self.members[r].iter().map(|&v| dag.work(v)).sum();
            let comm = self.members[r].iter().map(|&v| dag.comm(v)).sum();
            builder.add_node(work, comm);
        }
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (a, b) in dag.edges() {
            let ca = self.rep_pos[self.cluster_of[a]];
            let cb = self.rep_pos[self.cluster_of[b]];
            if ca != cb && seen.insert((ca, cb)) {
                builder.add_edge(ca, cb);
            }
        }
        let quotient = builder
            .build()
            .expect("contractions preserve acyclicity, so the quotient is a DAG");
        (quotient, self.reps.clone())
    }
}

/// A coarsening result: the member-level [`Clustering`] and the structural
/// [`QuotientDag`], sharing one contraction history.  Undo steps through
/// [`Coarsening::uncontract_one`] to keep the two in sync, or split them with
/// [`Coarsening::into_parts`] when (like the multilevel engine) you only need
/// the quotient side during uncoarsening.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// Which original nodes form each cluster.
    pub clustering: Clustering,
    /// The cluster-level graph, positioned at the coarsest level.
    pub quotient: QuotientDag,
    /// Batch-round counters and phase timings of the run that produced this.
    pub stats: CoarsenStats,
}

impl Coarsening {
    /// Number of clusters at the current level.
    pub fn num_clusters(&self) -> usize {
        self.clustering.num_clusters()
    }

    /// Undoes the most recent contraction in both views.  Returns the
    /// `(kept, removed)` pair, or `None` when fully uncoarsened.
    pub fn uncontract_one(&mut self) -> Option<(NodeId, NodeId)> {
        let pair = self.quotient.uncontract_one()?;
        let undone = self.clustering.uncontract_one();
        debug_assert!(undone, "clustering and quotient histories diverged");
        Some(pair)
    }

    /// Splits the result into its parts (their histories stay aligned until
    /// one of them is uncontracted independently).
    pub fn into_parts(self) -> (Clustering, QuotientDag) {
        (self.clustering, self.quotient)
    }
}

/// Knobs of the batch coarsener.
#[derive(Debug, Clone)]
pub struct CoarsenConfig {
    /// Scan-lane budget: `1` scans serially, `0` uses one lane per available
    /// core, anything else that many lanes.  The result is identical for
    /// every value — lanes write to disjoint positional slots.
    pub threads: usize,
    /// Active-cluster count at (and below) which coarsening switches from
    /// batch rounds to the exact sequential pool tail (see the module docs).
    /// `0` disables the tail — pure batch rounds all the way to the target.
    pub tail_width: usize,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig {
            threads: 1,
            tail_width: 4096,
        }
    }
}

/// Counters and phase timings of one coarsening run, reported per round.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoarsenStats {
    /// Rounds that applied at least one contraction.
    pub rounds: usize,
    /// Total contractions applied (equals the history length).
    pub contractions: usize,
    /// Largest batch applied in a single round.
    pub max_batch: usize,
    /// Canonical-order candidates skipped because an endpoint was already
    /// claimed by an earlier candidate of the same round.
    pub endpoint_conflicts: usize,
    /// Crossing rank-window pairs detected by the window sweep.  Crossing
    /// windows are the configuration that would be unsafe for arbitrary edge
    /// contractions; for min-rank-successor candidates the rank-monotonicity
    /// lemma (see the module docs) proves them benign, so the sweep counts
    /// them for observability instead of deferring.
    pub window_crossings: usize,
    /// Contractions applied by the sequential quality tail (each also counts
    /// as a width-1 round in `rounds` / `contractions`).
    pub tail_contractions: usize,
    /// Wall-clock of the rank sweeps + min-rank-successor scans.
    pub scan_seconds: f64,
    /// Wall-clock of candidate ordering + batch selection.
    pub select_seconds: f64,
    /// Wall-clock of applying batches to the quotient and clustering.
    pub apply_seconds: f64,
}

impl CoarsenStats {
    /// Aggregates another run's stats into this one (sums; `max_batch` takes
    /// the maximum), for portfolio-level reporting.
    pub fn add(&mut self, other: &CoarsenStats) {
        self.rounds += other.rounds;
        self.contractions += other.contractions;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.endpoint_conflicts += other.endpoint_conflicts;
        self.window_crossings += other.window_crossings;
        self.tail_contractions += other.tail_contractions;
        self.scan_seconds += other.scan_seconds;
        self.select_seconds += other.select_seconds;
        self.apply_seconds += other.apply_seconds;
    }

    /// Mean batch width over the productive rounds.
    pub fn avg_batch(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.contractions as f64 / self.rounds as f64
        }
    }
}

/// A scanned candidate edge: `u`'s minimum-rank successor `v` with the
/// selection keys (merged work, source comm) frozen at scan time.  The
/// sentinel [`NO_CAND`] marks sinks.
#[derive(Debug, Clone, Copy)]
struct Cand {
    u: NodeId,
    v: NodeId,
    /// Merged work weight `w(u) + w(v)`.
    key: u64,
    /// Source communication weight `c(u)`.
    comm: u64,
}

/// Scan output for a sink (no contractable out-edge).
const NO_CAND: Cand = Cand {
    u: usize::MAX,
    v: usize::MAX,
    key: u64::MAX,
    comm: 0,
};

/// A claimed batch member, with both endpoint ranks frozen at selection time
/// for the rank-window guard.
#[derive(Debug, Clone, Copy)]
struct Pending {
    u: NodeId,
    v: NodeId,
    rank_u: usize,
    rank_v: usize,
}

/// Below this many active clusters a parallel scan costs more in lane
/// bring-up than it saves; the scan stays serial.
const PAR_SCAN_MIN_NODES: usize = 2048;

/// `u`'s candidate edge under the current ranks: the minimum-rank successor,
/// or [`NO_CAND`] for sinks.
#[inline]
fn scan_one(quotient: &QuotientDag, u: NodeId) -> Cand {
    let mut best = usize::MAX;
    let mut best_rank = usize::MAX;
    for &w in quotient.successors(u) {
        let r = quotient.rank(w);
        if r < best_rank {
            best_rank = r;
            best = w;
        }
    }
    if best == usize::MAX {
        return NO_CAND;
    }
    Cand {
        u,
        v: best,
        key: quotient.work(u) + quotient.work(best),
        comm: quotient.comm(u),
    }
}

/// One registered tail candidate edge: `u`'s minimum-rank successor `v`, with
/// the selection keys frozen at registration time (so index removals match).
#[derive(Debug, Clone, Copy)]
struct CandEntry {
    v: NodeId,
    /// Merged work weight `w(u) + w(v)`.
    key: u64,
    /// Source communication weight `c(u)`.
    comm: u64,
}

/// The sequential tail's candidate pool — the paper's selection rule
/// maintained incrementally, reinstated verbatim from the pre-batch
/// coarsener: candidates are split into two ordered buckets by merged work
/// weight — the `prefix` bucket holds exactly the `⌈k/3⌉` smallest — and the
/// prefix additionally carries a max-comm index, so selection is an
/// `O(log n)` lookup instead of a fresh `O(k log k)` sort per contraction.
#[derive(Debug, Default)]
struct CandidatePool {
    /// All candidates, ordered by `(merged work, node)`.
    all: BTreeSet<(u64, NodeId)>,
    /// The first-third bucket: the `⌈|all|/3⌉` smallest elements of `all`.
    prefix: BTreeSet<(u64, NodeId)>,
    /// Max-comm index over `prefix`: `(comm, merged work, node)`.
    by_comm: BTreeSet<(u64, u64, NodeId)>,
    /// Per-node registered entry (`None` for sinks / inactive nodes).
    entries: Vec<Option<CandEntry>>,
}

impl CandidatePool {
    fn new(n: usize) -> Self {
        CandidatePool {
            entries: vec![None; n],
            ..Default::default()
        }
    }

    /// Restores the bucket invariant `|prefix| = ⌈|all|/3⌉` by moving boundary
    /// elements between the buckets (`O(1)` moves amortized per update).
    fn rebalance(&mut self) {
        let target = self.all.len().div_ceil(3);
        while self.prefix.len() > target {
            let &(key, u) = self.prefix.iter().next_back().expect("non-empty");
            self.prefix.remove(&(key, u));
            let comm = self.entries[u].expect("prefix member is registered").comm;
            self.by_comm.remove(&(comm, key, u));
        }
        while self.prefix.len() < target {
            let next = match self.prefix.iter().next_back() {
                Some(&max) => self.all.range((Excluded(max), Unbounded)).next().copied(),
                None => self.all.iter().next().copied(),
            };
            let Some((key, u)) = next else { break };
            self.prefix.insert((key, u));
            let comm = self.entries[u].expect("candidate is registered").comm;
            self.by_comm.insert((comm, key, u));
        }
    }

    /// Drops `u`'s candidate, if any.
    fn remove(&mut self, u: NodeId) {
        if let Some(e) = self.entries[u].take() {
            self.all.remove(&(e.key, u));
            if self.prefix.remove(&(e.key, u)) {
                self.by_comm.remove(&(e.comm, e.key, u));
            }
        }
        self.rebalance();
    }

    /// Registers (or re-registers) `u`'s candidate edge `u -> v`.
    fn set(&mut self, u: NodeId, entry: CandEntry) {
        if let Some(e) = self.entries[u].take() {
            self.all.remove(&(e.key, u));
            if self.prefix.remove(&(e.key, u)) {
                self.by_comm.remove(&(e.comm, e.key, u));
            }
        }
        self.all.insert((entry.key, u));
        let belongs = match self.prefix.iter().next_back() {
            Some(&max) => (entry.key, u) < max,
            None => true,
        };
        if belongs {
            self.prefix.insert((entry.key, u));
            self.by_comm.insert((entry.comm, entry.key, u));
        }
        self.entries[u] = Some(entry);
        self.rebalance();
    }

    /// The paper's pick: the largest-`c(u)` candidate within the first third
    /// by merged work weight.
    fn select(&self) -> Option<(NodeId, NodeId)> {
        let &(_, _, u) = self.by_comm.iter().next_back()?;
        Some((
            u,
            self.entries[u].expect("indexed candidate is registered").v,
        ))
    }
}

/// Re-derives `u`'s candidate edge from the current quotient and updates the
/// pool: the minimum-rank successor for non-sinks, nothing for sinks and
/// inactive nodes.
fn refresh_candidate(quotient: &QuotientDag, pool: &mut CandidatePool, u: NodeId) {
    match quotient.min_rank_successor(u) {
        Some(v) => pool.set(
            u,
            CandEntry {
                v,
                key: quotient.work(u) + quotient.work(v),
                comm: quotient.comm(u),
            },
        ),
        None => pool.remove(u),
    }
}

/// Tail contractions between rank re-anchorings.  The incrementally
/// maintained ranks stay *valid* forever, but their gaps drift away from the
/// evolving quotient; re-anchoring every so many contractions keeps the
/// min-rank-successor candidates structurally meaningful.  A refresh
/// invalidates every candidate, so the pool is rebuilt afterwards.
const RANK_REFRESH_INTERVAL: usize = 32;

/// The round-based batch coarsener (see the module docs for the three-step
/// round schedule).  Drive it with [`BatchCoarsener::round`] until it returns
/// `0`, or step [`BatchCoarsener::scan_and_select`] /
/// [`BatchCoarsener::apply_pending`] separately (the tests do, to check
/// per-round invariants and that steady-state scans allocate nothing), then
/// take the result with [`BatchCoarsener::finish`].
#[derive(Debug)]
pub struct BatchCoarsener {
    clustering: Clustering,
    quotient: QuotientDag,
    target: usize,
    threads: usize,
    tail_width: usize,
    /// The sequential tail's candidate pool, built lazily on the first tail
    /// step (never, when the target sits above the tail width).
    pool: Option<CandidatePool>,
    /// Tail contractions since the last rank re-anchoring.
    since_refresh: usize,
    /// Active cluster ids, ascending; pruned in place after each apply.
    actives: Vec<NodeId>,
    /// Positional scan output: slot `i` belongs to `actives[i]`.
    slots: Vec<Cand>,
    /// Compacted candidates of the current round.
    cands: Vec<Cand>,
    /// The selected batch, in canonical application order.
    pending: Vec<Pending>,
    /// Rank windows `(rank_u, rank_v)` of the selected batch, sorted for the
    /// crossing-classification sweep.
    windows: Vec<(usize, usize)>,
    /// Open window stack (closing ranks) for the sweep.
    win_stack: Vec<usize>,
    /// Endpoint-claim flags, cleared via `pending` after every selection.
    used: Vec<bool>,
    /// Scratch for the per-round Kahn rank sweep.
    indeg: Vec<usize>,
    kahn_queue: Vec<NodeId>,
    stats: CoarsenStats,
}

impl BatchCoarsener {
    /// Positions the coarsener at the discrete clustering of `dag`, aiming
    /// for (at most) `target_clusters` clusters.
    pub fn new(dag: &Dag, target_clusters: usize, config: &CoarsenConfig) -> Self {
        let n = dag.n();
        BatchCoarsener {
            clustering: Clustering::identity(n),
            quotient: QuotientDag::from_dag(dag),
            target: target_clusters.max(1),
            threads: crate::resolve_threads(config.threads),
            tail_width: config.tail_width,
            pool: None,
            since_refresh: 0,
            actives: (0..n).collect(),
            slots: vec![NO_CAND; n],
            cands: Vec::with_capacity(n),
            pending: Vec::with_capacity(n),
            windows: Vec::with_capacity(n),
            win_stack: Vec::with_capacity(n),
            used: vec![false; n],
            indeg: Vec::with_capacity(n),
            kahn_queue: Vec::with_capacity(n),
            stats: CoarsenStats::default(),
        }
    }

    /// The current quotient graph.
    pub fn quotient(&self) -> &QuotientDag {
        &self.quotient
    }

    /// The current clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> CoarsenStats {
        self.stats
    }

    /// Number of clusters at the current level.
    pub fn num_clusters(&self) -> usize {
        self.clustering.num_clusters()
    }

    /// Steps 1–2 of a round: re-anchor ranks, scan every active cluster for
    /// its candidate edge, and select the conflict-free batch in canonical
    /// order.  Returns the batch size; `0` means the coarsener is done (the
    /// target is reached or no contractable edge remains).
    ///
    /// With warm buffers this performs no heap allocation when the scan-lane
    /// budget is `1` (the counting-allocator test holds it to that); a
    /// parallel scan builds one `threads`-element chunk list per round.
    pub fn scan_and_select(&mut self) -> usize {
        debug_assert!(self.pending.is_empty(), "apply the previous batch first");
        let active = self.quotient.num_active();
        // Batch rounds stop at the tail floor; [`BatchCoarsener::round`]
        // closes the remaining gap with sequential tail steps.
        let floor = self.target.max(self.tail_width);
        if active <= floor {
            return 0;
        }
        let budget = active - floor;

        let scan_start = Instant::now();
        self.quotient
            .recompute_ranks_into(&mut self.indeg, &mut self.kahn_queue);
        let k = self.actives.len();
        debug_assert_eq!(k, active);
        {
            let quotient = &self.quotient;
            let actives = &self.actives;
            let slots = &mut self.slots;
            if self.threads > 1 && k >= PAR_SCAN_MIN_NODES {
                // Static pre-chunking by the *configured* lane budget with
                // positional writes: however the runtime schedules the
                // chunks, slot `i` always receives `scan_one(actives[i])`,
                // so the round's output is lane-count independent.
                let chunk = k.div_ceil(self.threads);
                let mut jobs: Vec<(&[NodeId], &mut [Cand])> = actives
                    .chunks(chunk)
                    .zip(slots[..k].chunks_mut(chunk))
                    .collect();
                jobs.par_iter_mut().for_each(|job| {
                    for (slot, &u) in job.0.iter().enumerate() {
                        job.1[slot] = scan_one(quotient, u);
                    }
                });
            } else {
                for (slot, &u) in actives.iter().enumerate() {
                    slots[slot] = scan_one(quotient, u);
                }
            }
        }
        self.stats.scan_seconds += scan_start.elapsed().as_secs_f64();

        let select_start = Instant::now();
        self.cands.clear();
        self.cands
            .extend(self.slots[..k].iter().filter(|c| c.v != usize::MAX));
        let kc = self.cands.len();
        if kc == 0 {
            self.stats.select_seconds += select_start.elapsed().as_secs_f64();
            return 0;
        }

        // The paper's rule, batch-wide: the first third by merged work
        // weight, walked by descending comm weight.  `(key, u)` and
        // `(comm, key, u)` are total orders (each `u` appears once), so the
        // partition and the walk order are deterministic.
        let prefix = kc.div_ceil(3);
        if prefix < kc {
            self.cands
                .select_nth_unstable_by(prefix - 1, |a, b| (a.key, a.u).cmp(&(b.key, b.u)));
        }
        self.cands[..prefix].sort_unstable_by(|a, b| {
            (Reverse(a.comm), a.key, a.u).cmp(&(Reverse(b.comm), b.key, b.u))
        });

        // Greedy endpoint-disjoint claiming in canonical order, capped so the
        // round cannot overshoot the target.
        {
            let Self {
                quotient,
                cands,
                pending,
                windows,
                win_stack,
                used,
                stats,
                ..
            } = self;
            for c in &cands[..prefix] {
                if pending.len() >= budget {
                    break;
                }
                if used[c.u] || used[c.v] {
                    stats.endpoint_conflicts += 1;
                    continue;
                }
                used[c.u] = true;
                used[c.v] = true;
                pending.push(Pending {
                    u: c.u,
                    v: c.v,
                    rank_u: quotient.rank(c.u),
                    rank_v: quotient.rank(c.v),
                });
            }
            for p in pending.iter() {
                used[p.u] = false;
                used[p.v] = false;
            }

            // Rank-window sweep: contracting `(u, v)` merges the rank window
            // `[rank_u, rank_v]`.  Two selected windows that *cross*
            // (partially overlap) are the configuration that could close a
            // path through another selected contraction for an *arbitrary*
            // edge batch — but every candidate here is its source's
            // minimum-rank successor, and the rank-monotonicity lemma (see
            // the module docs) makes even crossing windows safe: any path
            // between merged clusters exits each one strictly above its
            // merge point, so it can never return.  The sweep therefore
            // only classifies the batch — one sort plus a stack of open
            // windows counts the crossing pairs into
            // [`CoarsenStats::window_crossings`] — while safety is enforced
            // where it is provable: `QuotientDag::contract` debug-asserts
            // the min-rank-successor precondition for every batch member as
            // it applies.  All window endpoints are distinct ranks of
            // distinct nodes (the batch is endpoint-disjoint), so the sweep
            // order is total and the count lane-count independent.
            windows.clear();
            windows.extend(pending.iter().map(|p| (p.rank_u, p.rank_v)));
            windows.sort_unstable();
            win_stack.clear();
            for &(ru, rv) in windows.iter() {
                while win_stack.last().is_some_and(|&open_rv| open_rv < ru) {
                    win_stack.pop();
                }
                match win_stack.last() {
                    // `ru` lies inside the open window but `rv` does not:
                    // the two windows cross.
                    Some(&open_rv) if rv > open_rv => stats.window_crossings += 1,
                    _ => win_stack.push(rv),
                }
            }
            debug_assert!(!pending.is_empty(), "claiming emptied a batch");
        }
        self.stats.select_seconds += select_start.elapsed().as_secs_f64();
        self.pending.len()
    }

    /// Step 3 of a round: contracts the selected batch, in canonical order,
    /// against both the quotient and the clustering.  Returns the number of
    /// contractions applied.
    pub fn apply_pending(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let apply_start = Instant::now();
        let mut pending = std::mem::take(&mut self.pending);
        for p in &pending {
            // Endpoint-disjointness keeps every batch member's target its
            // source's minimum-rank successor while earlier members apply
            // (a contraction only raises the ranks a neighbour observes);
            // `QuotientDag::contract` debug-asserts exactly that.
            self.quotient.contract(p.u, p.v);
            self.clustering.contract(p.u, p.v);
        }
        let applied = pending.len();
        pending.clear();
        self.pending = pending;
        {
            let quotient = &self.quotient;
            self.actives.retain(|&u| quotient.is_active(u));
        }
        self.stats.rounds += 1;
        self.stats.contractions += applied;
        self.stats.max_batch = self.stats.max_batch.max(applied);
        self.stats.apply_seconds += apply_start.elapsed().as_secs_f64();
        applied
    }

    /// One sequential tail step: the exact pool-based coarsener the batch
    /// engine replaced on wide levels, reinstated for the basin-sensitive
    /// final stretch (see the module docs).  Selects the pool's pick,
    /// contracts it, and repairs the pool; re-anchors ranks (and rebuilds the
    /// pool) every [`RANK_REFRESH_INTERVAL`] contractions.  Returns `1`, or
    /// `0` when the target is reached or no contractable edge remains.
    fn tail_step(&mut self) -> usize {
        if self.quotient.num_active() <= self.target {
            return 0;
        }
        let n = self.used.len();
        let scan_start = Instant::now();
        if self.pool.is_none() {
            // First tail step: register every cluster's candidate under the
            // current ranks.  For a run that never batched these are the
            // construction-time ranks, so the whole run is bit-identical to
            // the sequential coarsener this tail reinstates; after batch
            // rounds they are the last round's re-anchoring plus rank
            // adoptions — exactly the mid-interval state the sequential loop
            // tolerates between its own refreshes.
            let mut pool = CandidatePool::new(n);
            for u in 0..n {
                refresh_candidate(&self.quotient, &mut pool, u);
            }
            self.pool = Some(pool);
            self.since_refresh = 0;
        }
        let pool = self.pool.as_mut().expect("pool built above");
        if self.since_refresh >= RANK_REFRESH_INTERVAL {
            self.since_refresh = 0;
            self.quotient
                .recompute_ranks_into(&mut self.indeg, &mut self.kahn_queue);
            for u in 0..n {
                refresh_candidate(&self.quotient, pool, u);
            }
        }
        self.stats.scan_seconds += scan_start.elapsed().as_secs_f64();

        let select_start = Instant::now();
        let Some((u, v)) = pool.select() else {
            self.stats.select_seconds += select_start.elapsed().as_secs_f64();
            return 0;
        };
        self.stats.select_seconds += select_start.elapsed().as_secs_f64();

        let apply_start = Instant::now();
        self.quotient.contract(u, v);
        self.clustering.contract(u, v);
        self.since_refresh += 1;
        // The absorbed cluster can no longer be a candidate source; the
        // merged cluster and everything pointing at either endpoint may have
        // a new minimum-rank successor, merged work key, or comm weight.
        pool.remove(v);
        refresh_candidate(&self.quotient, pool, u);
        for &w in self.quotient.predecessors(u) {
            refresh_candidate(&self.quotient, pool, w);
        }
        self.stats.rounds += 1;
        self.stats.contractions += 1;
        self.stats.tail_contractions += 1;
        self.stats.max_batch = self.stats.max_batch.max(1);
        self.stats.apply_seconds += apply_start.elapsed().as_secs_f64();
        1
    }

    /// One full round — a batch round above the tail floor
    /// `max(target, tail_width)`, a sequential tail step below it.  Returns
    /// the number of contractions applied; `0` means coarsening is complete.
    pub fn round(&mut self) -> usize {
        if self.quotient.num_active() > self.target.max(self.tail_width) {
            // No batch candidate means no active cluster has an out-edge at
            // all, so the tail cannot contract anything either: done.
            if self.scan_and_select() == 0 {
                return 0;
            }
            return self.apply_pending();
        }
        self.tail_step()
    }

    /// Runs any remaining rounds and returns the [`Coarsening`].
    pub fn finish(mut self) -> Coarsening {
        while self.round() > 0 {}
        Coarsening {
            clustering: self.clustering,
            quotient: self.quotient,
            stats: self.stats,
        }
    }
}

/// Coarsens `dag` down to (at most) `target_clusters` clusters, or until no
/// contractable edge remains, with explicit [`CoarsenConfig`] knobs.  Returns
/// the [`Coarsening`] — the member-level clustering (with its full
/// contraction history) plus the persistent [`QuotientDag`] positioned at the
/// coarsest level, ready to be uncoarsened step by step.
pub fn coarsen_with(dag: &Dag, target_clusters: usize, config: &CoarsenConfig) -> Coarsening {
    BatchCoarsener::new(dag, target_clusters, config).finish()
}

/// [`coarsen_with`] under the default configuration (serial scan).
pub fn coarsen(dag: &Dag, target_clusters: usize) -> Coarsening {
    coarsen_with(dag, target_clusters, &CoarsenConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    fn diamond() -> Dag {
        Dag::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
        )
        .unwrap()
    }

    #[test]
    fn identity_clustering_quotient_is_the_original_dag() {
        let dag = diamond();
        let clustering = Clustering::identity(dag.n());
        let (q, reps) = clustering.quotient_dag(&dag);
        assert_eq!(q.n(), dag.n());
        assert_eq!(q.num_edges(), dag.num_edges());
        assert_eq!(reps, vec![0, 1, 2, 3]);
        assert_eq!(q.work_weights(), dag.work_weights());
    }

    #[test]
    fn coarsening_reaches_the_target_and_preserves_weight_totals() {
        let dag = spmv(&SpmvConfig {
            n: 20,
            density: 0.25,
            seed: 1,
        });
        let target = dag.n() * 3 / 10;
        let coarsening = coarsen(&dag, target);
        let clustering = &coarsening.clustering;
        assert!(clustering.num_clusters() <= target.max(1) + 1);
        assert_eq!(clustering.num_clusters(), coarsening.quotient.num_active());
        let (q, _) = clustering.quotient_dag(&dag);
        assert_eq!(q.total_work(), dag.total_work());
        assert_eq!(q.total_comm(), dag.total_comm());
        // Quotient must be a DAG (builder would have panicked otherwise) and
        // every original node must belong to exactly one cluster.
        let mut seen = vec![false; dag.n()];
        for &rep in clustering.representatives() {
            for &v in clustering.members(rep) {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn every_intermediate_quotient_is_acyclic() {
        let dag = cg(&IterConfig {
            n: 8,
            density: 0.3,
            iterations: 2,
            seed: 7,
        });
        let mut coarsening = coarsen(&dag, dag.n() / 5);
        // Walk the whole uncoarsening path; quotient_dag panics on a cycle.
        loop {
            let (q, _) = coarsening.clustering.quotient_dag(&dag);
            assert!(q.topological_order().is_some());
            if coarsening.uncontract_one().is_none() {
                break;
            }
        }
        assert_eq!(coarsening.num_clusters(), dag.n());
    }

    #[test]
    fn uncontracting_everything_restores_the_identity_clustering() {
        let dag = spmv(&SpmvConfig {
            n: 12,
            density: 0.3,
            seed: 3,
        });
        let mut coarsening = coarsen(&dag, 3);
        while coarsening.uncontract_one().is_some() {}
        let clustering = &coarsening.clustering;
        for v in 0..dag.n() {
            assert_eq!(clustering.cluster_of(v), v);
            assert_eq!(clustering.members(v), &[v]);
        }
        assert_eq!(clustering.num_clusters(), dag.n());
        assert_eq!(clustering.num_contractions(), 0);
        assert_eq!(coarsening.quotient.num_contractions(), 0);
    }

    #[test]
    fn representative_indexing_is_consistent_after_every_step() {
        let dag = cg(&IterConfig {
            n: 10,
            density: 0.3,
            iterations: 2,
            seed: 13,
        });
        let mut coarsening = coarsen(&dag, 4);
        loop {
            let clustering = &coarsening.clustering;
            let reps = clustering.representatives();
            assert_eq!(reps.len(), clustering.num_clusters());
            for (i, &r) in reps.iter().enumerate() {
                assert_eq!(clustering.rep_index(r), i, "rep {r} mis-indexed");
            }
            if coarsening.uncontract_one().is_none() {
                break;
            }
        }
    }

    #[test]
    fn chain_contracts_to_a_single_cluster() {
        let dag = Dag::from_edge_list_unit_weights(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let coarsening = coarsen(&dag, 1);
        assert_eq!(coarsening.num_clusters(), 1);
        let (q, _) = coarsening.clustering.quotient_dag(&dag);
        assert_eq!(q.n(), 1);
        assert_eq!(q.total_work(), 5);
    }

    #[test]
    fn graph_without_edges_cannot_be_coarsened() {
        let dag = Dag::from_edge_list_unit_weights(4, &[]).unwrap();
        let coarsening = coarsen(&dag, 1);
        assert_eq!(coarsening.num_clusters(), 4);
        assert_eq!(coarsening.stats.contractions, 0);
    }

    #[test]
    fn incremental_quotient_matches_the_from_scratch_build_while_uncoarsening() {
        let dag = cg(&IterConfig {
            n: 9,
            density: 0.35,
            iterations: 2,
            seed: 21,
        });
        let mut coarsening = coarsen(&dag, dag.n() / 4);
        loop {
            let clustering = &coarsening.clustering;
            let quotient = &coarsening.quotient;
            let (reference, reps) = clustering.quotient_dag(&dag);
            assert_eq!(quotient.num_active(), reference.n());
            // Same nodes with the same summed weights...
            for (i, &r) in reps.iter().enumerate() {
                assert!(quotient.is_active(r));
                assert_eq!(quotient.work(r), reference.work(i), "work of rep {r}");
                assert_eq!(quotient.comm(r), reference.comm(i), "comm of rep {r}");
            }
            // ...and the same edge set (multiplicities collapsed).
            let mut incr: Vec<(usize, usize)> = quotient
                .edges()
                .map(|(a, b, _)| (clustering.rep_index(a), clustering.rep_index(b)))
                .collect();
            incr.sort_unstable();
            let mut refr: Vec<(usize, usize)> = reference.edges().collect();
            refr.sort_unstable();
            assert_eq!(incr, refr);
            if coarsening.uncontract_one().is_none() {
                break;
            }
        }
    }

    #[test]
    fn batch_rounds_never_overshoot_the_target() {
        let dag = spmv(&SpmvConfig {
            n: 60,
            density: 0.15,
            seed: 5,
        });
        for target in [1, 2, 7, 20, 45] {
            // `tail_width: 0` so the overshoot guard under test is the batch
            // budget cap, not the one-at-a-time tail.
            let mut c = BatchCoarsener::new(
                &dag,
                target,
                &CoarsenConfig {
                    threads: 1,
                    tail_width: 0,
                },
            );
            while c.round() > 0 {
                assert!(c.num_clusters() >= target, "target {target} overshot");
            }
            let stats = c.stats();
            let done = c.finish();
            assert!(done.num_clusters() >= target.max(1));
            assert_eq!(stats.contractions, dag.n() - done.num_clusters());
        }
    }

    #[test]
    fn stats_count_rounds_and_batches_consistently() {
        let dag = spmv(&SpmvConfig {
            n: 50,
            density: 0.2,
            seed: 9,
        });
        let coarsening = coarsen(&dag, 10);
        let s = coarsening.stats;
        assert_eq!(s.contractions, coarsening.clustering.num_contractions());
        assert!(s.rounds >= 1);
        assert!(s.max_batch >= 1);
        assert!(s.max_batch <= s.contractions);
        assert!(s.avg_batch() >= 1.0);
    }

    #[test]
    fn hybrid_tail_engages_below_the_tail_width_and_the_stats_account_for_it() {
        let dag = spmv(&SpmvConfig {
            n: 300,
            density: 0.05,
            seed: 23,
        });
        let (target, tail_width) = (40, 120);
        let mut c = coarsen_with(
            &dag,
            target,
            &CoarsenConfig {
                threads: 1,
                tail_width,
            },
        );
        assert_eq!(c.num_clusters(), target, "instance must reach the target");
        let s = c.stats;
        // Batch rounds stop exactly at the tail floor; the sequential tail
        // closes the remaining gap one contraction at a time.
        assert_eq!(s.tail_contractions, tail_width - target);
        assert_eq!(s.contractions, dag.n() - target);
        assert!(s.max_batch > 1, "batch phase never ran");
        // The mixed history unwinds cleanly back to the identity clustering.
        while c.uncontract_one().is_some() {}
        assert_eq!(c.num_clusters(), dag.n());
        assert_eq!(c.clustering.num_contractions(), 0);

        let pure_batch = coarsen_with(
            &dag,
            target,
            &CoarsenConfig {
                threads: 1,
                tail_width: 0,
            },
        );
        assert_eq!(pure_batch.stats.tail_contractions, 0);
    }

    #[test]
    fn coarsen_with_is_lane_count_independent() {
        let dag = cg(&IterConfig {
            n: 40,
            density: 0.2,
            iterations: 3,
            seed: 11,
        });
        // `tail_width: 0` keeps the whole run in batch rounds — the lane
        // independence under test is the batch scan's.
        let serial = coarsen_with(
            &dag,
            25,
            &CoarsenConfig {
                threads: 1,
                tail_width: 0,
            },
        );
        let wide = coarsen_with(
            &dag,
            25,
            &CoarsenConfig {
                threads: 5,
                tail_width: 0,
            },
        );
        let mut a = serial;
        let mut b = wide;
        loop {
            match (a.uncontract_one(), b.uncontract_one()) {
                (None, None) => break,
                (pa, pb) => assert_eq!(pa, pb, "contraction histories diverged"),
            }
        }
    }
}
