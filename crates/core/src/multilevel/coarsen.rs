//! Acyclicity-preserving DAG coarsening by iterative edge contraction
//! (§4.5 and Appendix A.5 of the paper), incrementally.
//!
//! Each contraction step merges the endpoints of one edge `(u, v)` into a
//! single cluster.  An edge can only be contracted when there is no *other*
//! directed path from `u` to `v`, otherwise the quotient graph would acquire a
//! cycle.  We use the sufficient criterion the paper points out: for every
//! non-sink cluster `u`, the out-neighbour with the smallest topological rank
//! is always safely contractable.  Among these candidate edges we prefer small
//! merged work weight `w(u) + w(v)` (the first third of the candidates sorted
//! by it) and, within that prefix, the largest communication weight `c(u)` —
//! the paper's selection rule.
//!
//! Unlike the original implementation — `BTreeSet` adjacency, a full Kahn
//! rank recomputation and an `O(k log k)` candidate sort *per contraction* —
//! this coarsener runs on the persistent [`QuotientDag`] (flat sorted-vec
//! adjacency, `O(1)` incremental ranks) and keeps the candidate pool in
//! [`CandidatePool`]: two ordered buckets (the first-third *prefix* by merged
//! work weight, and the rest) plus a max-comm index over the prefix.  A
//! contraction therefore costs `O((deg(u) + deg(v)) · log n)` instead of
//! `O(n + m + k log k)`, and the quotient it leaves behind is reused verbatim
//! by the refinement loop — no rebuild between coarsening and uncoarsening.

use bsp_model::{Dag, DagBuilder, DagView, NodeId, QuotientDag};
use std::collections::BTreeSet;
use std::ops::Bound::{Excluded, Unbounded};

/// One contraction step: the cluster represented by `removed` was merged into
/// the cluster represented by `kept`.  `moved` lists the original nodes that
/// changed cluster, which is all the information needed to undo the step.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// Representative (original node id) of the surviving cluster.
    pub kept: NodeId,
    /// Representative of the cluster that was absorbed.
    pub removed: NodeId,
    /// Original nodes that moved from `removed`'s cluster into `kept`'s.
    pub moved: Vec<NodeId>,
}

/// A clustering of the original DAG's nodes, produced by coarsening and
/// gradually undone while uncoarsening.
///
/// The representative list is maintained incrementally (swap-remove on
/// contraction, exact LIFO restore on uncontraction), so
/// [`Clustering::representatives`] is a slice borrow and
/// [`Clustering::quotient_dag`] needs no `O(n)` index array — both used to
/// allocate afresh on every refinement phase.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `cluster_of[v]` is the representative of the cluster containing `v`.
    cluster_of: Vec<NodeId>,
    /// Members of each cluster, indexed by representative (empty otherwise).
    members: Vec<Vec<NodeId>>,
    /// `true` for nodes that currently represent a cluster.
    active: Vec<bool>,
    /// Current representatives (deterministic but unspecified order).
    reps: Vec<NodeId>,
    /// Position of each representative inside `reps` (stale for inactive).
    rep_pos: Vec<usize>,
    /// Contraction history, oldest first.
    history: Vec<Contraction>,
}

impl Clustering {
    /// The discrete clustering: every node is its own cluster.
    pub fn identity(n: usize) -> Self {
        Clustering {
            cluster_of: (0..n).collect(),
            members: (0..n).map(|v| vec![v]).collect(),
            active: vec![true; n],
            reps: (0..n).collect(),
            rep_pos: (0..n).collect(),
            history: Vec::new(),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.reps.len()
    }

    /// Number of recorded contraction steps not yet undone.
    pub fn num_contractions(&self) -> usize {
        self.history.len()
    }

    /// Representative of the cluster containing original node `v`.
    pub fn cluster_of(&self, v: NodeId) -> NodeId {
        self.cluster_of[v]
    }

    /// Representatives of all clusters, in a deterministic (but unspecified)
    /// order; entry `i` corresponds to quotient node `i` of
    /// [`Clustering::quotient_dag`].  Maintained incrementally — no per-call
    /// allocation or scan.
    pub fn representatives(&self) -> &[NodeId] {
        &self.reps
    }

    /// Quotient node index of the cluster represented by `rep`.
    pub fn rep_index(&self, rep: NodeId) -> usize {
        debug_assert!(self.active[rep]);
        self.rep_pos[rep]
    }

    /// Original members of the cluster represented by `rep`.
    pub fn members(&self, rep: NodeId) -> &[NodeId] {
        &self.members[rep]
    }

    fn contract(&mut self, kept: NodeId, removed: NodeId) {
        debug_assert!(self.active[kept] && self.active[removed] && kept != removed);
        let moved = std::mem::take(&mut self.members[removed]);
        for &v in &moved {
            self.cluster_of[v] = kept;
        }
        self.members[kept].extend_from_slice(&moved);
        self.active[removed] = false;
        // Swap-remove `removed` from the representative list; the element
        // moved into its slot gets its position fixed up.
        let pos = self.rep_pos[removed];
        self.reps.swap_remove(pos);
        if pos < self.reps.len() {
            self.rep_pos[self.reps[pos]] = pos;
        }
        self.history.push(Contraction {
            kept,
            removed,
            moved,
        });
    }

    /// Undoes the most recent contraction step.  Returns `false` when the
    /// history is empty (the clustering is already fully uncoarsened).
    pub fn uncontract_one(&mut self) -> bool {
        let Some(Contraction {
            kept,
            removed,
            moved,
        }) = self.history.pop()
        else {
            return false;
        };
        // The moved nodes were appended to `kept`'s member list, so they form
        // its tail; split them back off.
        let keep_len = self.members[kept].len() - moved.len();
        let tail = self.members[kept].split_off(keep_len);
        debug_assert_eq!(tail, moved);
        for &v in &moved {
            self.cluster_of[v] = removed;
        }
        self.members[removed] = moved;
        self.active[removed] = true;
        // Exact inverse of the swap-remove: push `removed`, then swap it back
        // into its old slot (LIFO order guarantees the old occupant of the
        // last slot is the element the swap-remove displaced).
        let pos = self.rep_pos[removed];
        self.reps.push(removed);
        let last = self.reps.len() - 1;
        if pos != last {
            self.reps.swap(pos, last);
            self.rep_pos[self.reps[last]] = last;
            self.rep_pos[self.reps[pos]] = pos;
        }
        true
    }

    /// Builds the quotient DAG of the current clustering: one node per
    /// cluster, work/communication weights summed over the members, an edge
    /// between two clusters whenever the original DAG has an edge between
    /// members of the two.  Returns the quotient DAG together with the list of
    /// representatives, where representative `reps[i]` corresponds to quotient
    /// node `i`.
    ///
    /// This is the *from-scratch* construction: the multilevel scheduler calls
    /// it once per ratio run (to hand the base pipeline an immutable [`Dag`])
    /// and the property tests use it as the reference the incremental
    /// [`QuotientDag`] must stay isomorphic to.
    pub fn quotient_dag(&self, dag: &Dag) -> (Dag, Vec<NodeId>) {
        let mut builder = DagBuilder::new();
        for &r in &self.reps {
            let work = self.members[r].iter().map(|&v| dag.work(v)).sum();
            let comm = self.members[r].iter().map(|&v| dag.comm(v)).sum();
            builder.add_node(work, comm);
        }
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (a, b) in dag.edges() {
            let ca = self.rep_pos[self.cluster_of[a]];
            let cb = self.rep_pos[self.cluster_of[b]];
            if ca != cb && seen.insert((ca, cb)) {
                builder.add_edge(ca, cb);
            }
        }
        let quotient = builder
            .build()
            .expect("contractions preserve acyclicity, so the quotient is a DAG");
        (quotient, self.reps.clone())
    }
}

/// A coarsening result: the member-level [`Clustering`] and the structural
/// [`QuotientDag`], sharing one contraction history.  Undo steps through
/// [`Coarsening::uncontract_one`] to keep the two in sync, or split them with
/// [`Coarsening::into_parts`] when (like the multilevel engine) you only need
/// the quotient side during uncoarsening.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// Which original nodes form each cluster.
    pub clustering: Clustering,
    /// The cluster-level graph, positioned at the coarsest level.
    pub quotient: QuotientDag,
}

impl Coarsening {
    /// Number of clusters at the current level.
    pub fn num_clusters(&self) -> usize {
        self.clustering.num_clusters()
    }

    /// Undoes the most recent contraction in both views.  Returns the
    /// `(kept, removed)` pair, or `None` when fully uncoarsened.
    pub fn uncontract_one(&mut self) -> Option<(NodeId, NodeId)> {
        let pair = self.quotient.uncontract_one()?;
        let undone = self.clustering.uncontract_one();
        debug_assert!(undone, "clustering and quotient histories diverged");
        Some(pair)
    }

    /// Splits the result into its parts (their histories stay aligned until
    /// one of them is uncontracted independently).
    pub fn into_parts(self) -> (Clustering, QuotientDag) {
        (self.clustering, self.quotient)
    }
}

/// One registered candidate edge: `u`'s minimum-rank successor `v`, with the
/// selection keys frozen at registration time (so index removals match).
#[derive(Debug, Clone, Copy)]
struct CandEntry {
    v: NodeId,
    /// Merged work weight `w(u) + w(v)`.
    key: u64,
    /// Source communication weight `c(u)`.
    comm: u64,
}

/// The candidate pool of the paper's selection rule, maintained
/// incrementally: the candidates are split into two ordered buckets by merged
/// work weight — the `prefix` bucket holds exactly the `⌈k/3⌉` smallest — and
/// the prefix additionally carries a max-comm index, so selection is an
/// `O(log n)` lookup instead of a fresh `O(k log k)` sort per contraction.
#[derive(Debug, Default)]
struct CandidatePool {
    /// All candidates, ordered by `(merged work, node)`.
    all: BTreeSet<(u64, NodeId)>,
    /// The first-third bucket: the `⌈|all|/3⌉` smallest elements of `all`.
    prefix: BTreeSet<(u64, NodeId)>,
    /// Max-comm index over `prefix`: `(comm, merged work, node)`.
    by_comm: BTreeSet<(u64, u64, NodeId)>,
    /// Per-node registered entry (`None` for sinks / inactive nodes).
    entries: Vec<Option<CandEntry>>,
}

impl CandidatePool {
    fn new(n: usize) -> Self {
        CandidatePool {
            entries: vec![None; n],
            ..Default::default()
        }
    }

    /// Restores the bucket invariant `|prefix| = ⌈|all|/3⌉` by moving boundary
    /// elements between the buckets (`O(1)` moves amortized per update).
    fn rebalance(&mut self) {
        let target = self.all.len().div_ceil(3);
        while self.prefix.len() > target {
            let &(key, u) = self.prefix.iter().next_back().expect("non-empty");
            self.prefix.remove(&(key, u));
            let comm = self.entries[u].expect("prefix member is registered").comm;
            self.by_comm.remove(&(comm, key, u));
        }
        while self.prefix.len() < target {
            let next = match self.prefix.iter().next_back() {
                Some(&max) => self.all.range((Excluded(max), Unbounded)).next().copied(),
                None => self.all.iter().next().copied(),
            };
            let Some((key, u)) = next else { break };
            self.prefix.insert((key, u));
            let comm = self.entries[u].expect("candidate is registered").comm;
            self.by_comm.insert((comm, key, u));
        }
    }

    /// Drops `u`'s candidate, if any.
    fn remove(&mut self, u: NodeId) {
        if let Some(e) = self.entries[u].take() {
            self.all.remove(&(e.key, u));
            if self.prefix.remove(&(e.key, u)) {
                self.by_comm.remove(&(e.comm, e.key, u));
            }
        }
        self.rebalance();
    }

    /// Registers (or re-registers) `u`'s candidate edge `u -> v`.
    fn set(&mut self, u: NodeId, entry: CandEntry) {
        if let Some(e) = self.entries[u].take() {
            self.all.remove(&(e.key, u));
            if self.prefix.remove(&(e.key, u)) {
                self.by_comm.remove(&(e.comm, e.key, u));
            }
        }
        self.all.insert((entry.key, u));
        let belongs = match self.prefix.iter().next_back() {
            Some(&max) => (entry.key, u) < max,
            None => true,
        };
        if belongs {
            self.prefix.insert((entry.key, u));
            self.by_comm.insert((entry.comm, entry.key, u));
        }
        self.entries[u] = Some(entry);
        self.rebalance();
    }

    /// The paper's pick: the largest-`c(u)` candidate within the first third
    /// by merged work weight.
    fn select(&self) -> Option<(NodeId, NodeId)> {
        let &(_, _, u) = self.by_comm.iter().next_back()?;
        Some((
            u,
            self.entries[u].expect("indexed candidate is registered").v,
        ))
    }
}

/// Re-derives `u`'s candidate edge from the current quotient and updates the
/// pool: the minimum-rank successor for non-sinks, nothing for sinks and
/// inactive nodes.
fn refresh_candidate(quotient: &QuotientDag, pool: &mut CandidatePool, u: NodeId) {
    match quotient.min_rank_successor(u) {
        Some(v) => pool.set(
            u,
            CandEntry {
                v,
                key: quotient.work(u) + quotient.work(v),
                comm: quotient.comm(u),
            },
        ),
        None => pool.remove(u),
    }
}

/// Coarsens `dag` down to (at most) `target_clusters` clusters, or until no
/// contractable edge remains.  Returns the [`Coarsening`] — the member-level
/// clustering (with its full contraction history) plus the persistent
/// [`QuotientDag`] positioned at the coarsest level, ready to be uncoarsened
/// step by step.
pub fn coarsen(dag: &Dag, target_clusters: usize) -> Coarsening {
    let n = dag.n();
    let mut clustering = Clustering::identity(n);
    let mut quotient = QuotientDag::from_dag(dag);
    if n == 0 {
        return Coarsening {
            clustering,
            quotient,
        };
    }
    let target = target_clusters.max(1);
    let mut pool = CandidatePool::new(n);
    for u in 0..n {
        refresh_candidate(&quotient, &mut pool, u);
    }
    // The incrementally maintained ranks stay *valid* forever, but their gaps
    // drift away from the evolving quotient; re-anchoring them every so many
    // contractions keeps the min-rank-successor candidates structurally
    // meaningful at ~1/RANK_REFRESH_INTERVAL of the old per-contraction
    // sweep's cost.  A refresh invalidates every candidate, so the pool is
    // rebuilt from scratch afterwards.
    const RANK_REFRESH_INTERVAL: usize = 32;
    let mut since_refresh = 0usize;
    while quotient.num_active() > target {
        if since_refresh >= RANK_REFRESH_INTERVAL {
            since_refresh = 0;
            quotient.recompute_ranks();
            for u in 0..n {
                refresh_candidate(&quotient, &mut pool, u);
            }
        }
        let Some((u, v)) = pool.select() else {
            break;
        };
        quotient.contract(u, v);
        clustering.contract(u, v);
        since_refresh += 1;
        // The absorbed cluster can no longer be a candidate source; the
        // merged cluster and everything pointing at either endpoint may have
        // a new minimum-rank successor, merged work key, or comm weight.
        pool.remove(v);
        refresh_candidate(&quotient, &mut pool, u);
        for &w in quotient.predecessors(u) {
            refresh_candidate(&quotient, &mut pool, w);
        }
    }
    Coarsening {
        clustering,
        quotient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    fn diamond() -> Dag {
        Dag::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
        )
        .unwrap()
    }

    #[test]
    fn identity_clustering_quotient_is_the_original_dag() {
        let dag = diamond();
        let clustering = Clustering::identity(dag.n());
        let (q, reps) = clustering.quotient_dag(&dag);
        assert_eq!(q.n(), dag.n());
        assert_eq!(q.num_edges(), dag.num_edges());
        assert_eq!(reps, vec![0, 1, 2, 3]);
        assert_eq!(q.work_weights(), dag.work_weights());
    }

    #[test]
    fn coarsening_reaches_the_target_and_preserves_weight_totals() {
        let dag = spmv(&SpmvConfig {
            n: 20,
            density: 0.25,
            seed: 1,
        });
        let target = dag.n() * 3 / 10;
        let coarsening = coarsen(&dag, target);
        let clustering = &coarsening.clustering;
        assert!(clustering.num_clusters() <= target.max(1) + 1);
        assert_eq!(clustering.num_clusters(), coarsening.quotient.num_active());
        let (q, _) = clustering.quotient_dag(&dag);
        assert_eq!(q.total_work(), dag.total_work());
        assert_eq!(q.total_comm(), dag.total_comm());
        // Quotient must be a DAG (builder would have panicked otherwise) and
        // every original node must belong to exactly one cluster.
        let mut seen = vec![false; dag.n()];
        for &rep in clustering.representatives() {
            for &v in clustering.members(rep) {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn every_intermediate_quotient_is_acyclic() {
        let dag = cg(&IterConfig {
            n: 8,
            density: 0.3,
            iterations: 2,
            seed: 7,
        });
        let mut coarsening = coarsen(&dag, dag.n() / 5);
        // Walk the whole uncoarsening path; quotient_dag panics on a cycle.
        loop {
            let (q, _) = coarsening.clustering.quotient_dag(&dag);
            assert!(q.topological_order().is_some());
            if coarsening.uncontract_one().is_none() {
                break;
            }
        }
        assert_eq!(coarsening.num_clusters(), dag.n());
    }

    #[test]
    fn uncontracting_everything_restores_the_identity_clustering() {
        let dag = spmv(&SpmvConfig {
            n: 12,
            density: 0.3,
            seed: 3,
        });
        let mut coarsening = coarsen(&dag, 3);
        while coarsening.uncontract_one().is_some() {}
        let clustering = &coarsening.clustering;
        for v in 0..dag.n() {
            assert_eq!(clustering.cluster_of(v), v);
            assert_eq!(clustering.members(v), &[v]);
        }
        assert_eq!(clustering.num_clusters(), dag.n());
        assert_eq!(clustering.num_contractions(), 0);
        assert_eq!(coarsening.quotient.num_contractions(), 0);
    }

    #[test]
    fn representative_indexing_is_consistent_after_every_step() {
        let dag = cg(&IterConfig {
            n: 10,
            density: 0.3,
            iterations: 2,
            seed: 13,
        });
        let mut coarsening = coarsen(&dag, 4);
        loop {
            let clustering = &coarsening.clustering;
            let reps = clustering.representatives();
            assert_eq!(reps.len(), clustering.num_clusters());
            for (i, &r) in reps.iter().enumerate() {
                assert_eq!(clustering.rep_index(r), i, "rep {r} mis-indexed");
            }
            if coarsening.uncontract_one().is_none() {
                break;
            }
        }
    }

    #[test]
    fn chain_contracts_to_a_single_cluster() {
        let dag = Dag::from_edge_list_unit_weights(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let coarsening = coarsen(&dag, 1);
        assert_eq!(coarsening.num_clusters(), 1);
        let (q, _) = coarsening.clustering.quotient_dag(&dag);
        assert_eq!(q.n(), 1);
        assert_eq!(q.total_work(), 5);
    }

    #[test]
    fn graph_without_edges_cannot_be_coarsened() {
        let dag = Dag::from_edge_list_unit_weights(4, &[]).unwrap();
        let coarsening = coarsen(&dag, 1);
        assert_eq!(coarsening.num_clusters(), 4);
    }

    #[test]
    fn incremental_quotient_matches_the_from_scratch_build_while_uncoarsening() {
        let dag = cg(&IterConfig {
            n: 9,
            density: 0.35,
            iterations: 2,
            seed: 21,
        });
        let mut coarsening = coarsen(&dag, dag.n() / 4);
        loop {
            let clustering = &coarsening.clustering;
            let quotient = &coarsening.quotient;
            let (reference, reps) = clustering.quotient_dag(&dag);
            assert_eq!(quotient.num_active(), reference.n());
            // Same nodes with the same summed weights...
            for (i, &r) in reps.iter().enumerate() {
                assert!(quotient.is_active(r));
                assert_eq!(quotient.work(r), reference.work(i), "work of rep {r}");
                assert_eq!(quotient.comm(r), reference.comm(i), "comm of rep {r}");
            }
            // ...and the same edge set (multiplicities collapsed).
            let mut incr: Vec<(usize, usize)> = quotient
                .edges()
                .map(|(a, b, _)| (clustering.rep_index(a), clustering.rep_index(b)))
                .collect();
            incr.sort_unstable();
            let mut refr: Vec<(usize, usize)> = reference.edges().collect();
            refr.sort_unstable();
            assert_eq!(incr, refr);
            if coarsening.uncontract_one().is_none() {
                break;
            }
        }
    }
}
