//! Acyclicity-preserving DAG coarsening by iterative edge contraction
//! (§4.5 and Appendix A.5 of the paper).
//!
//! Each contraction step merges the endpoints of one edge `(u, v)` into a
//! single cluster.  An edge can only be contracted when there is no *other*
//! directed path from `u` to `v`, otherwise the quotient graph would acquire a
//! cycle.  We use the sufficient criterion the paper points out: for every
//! non-sink cluster `u`, the out-neighbour with the smallest topological rank
//! is always safely contractable.  Among these candidate edges we prefer small
//! merged work weight `w(u) + w(v)` (the first third of the candidates sorted
//! by it) and, within that prefix, the largest communication weight `c(u)` —
//! exactly the paper's selection rule.

use bsp_model::{Dag, DagBuilder, NodeId};
use std::collections::BTreeSet;

/// One contraction step: the cluster represented by `removed` was merged into
/// the cluster represented by `kept`.  `moved` lists the original nodes that
/// changed cluster, which is all the information needed to undo the step.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// Representative (original node id) of the surviving cluster.
    pub kept: NodeId,
    /// Representative of the cluster that was absorbed.
    pub removed: NodeId,
    /// Original nodes that moved from `removed`'s cluster into `kept`'s.
    pub moved: Vec<NodeId>,
}

/// A clustering of the original DAG's nodes, produced by coarsening and
/// gradually undone while uncoarsening.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `cluster_of[v]` is the representative of the cluster containing `v`.
    cluster_of: Vec<NodeId>,
    /// Members of each cluster, indexed by representative (empty otherwise).
    members: Vec<Vec<NodeId>>,
    /// `true` for nodes that currently represent a cluster.
    active: Vec<bool>,
    /// Number of clusters.
    num_clusters: usize,
    /// Contraction history, oldest first.
    history: Vec<Contraction>,
}

impl Clustering {
    /// The discrete clustering: every node is its own cluster.
    pub fn identity(n: usize) -> Self {
        Clustering {
            cluster_of: (0..n).collect(),
            members: (0..n).map(|v| vec![v]).collect(),
            active: vec![true; n],
            num_clusters: n,
            history: Vec::new(),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of recorded contraction steps not yet undone.
    pub fn num_contractions(&self) -> usize {
        self.history.len()
    }

    /// Representative of the cluster containing original node `v`.
    pub fn cluster_of(&self, v: NodeId) -> NodeId {
        self.cluster_of[v]
    }

    /// Representatives of all clusters, in increasing node-id order.
    pub fn representatives(&self) -> Vec<NodeId> {
        (0..self.active.len()).filter(|&v| self.active[v]).collect()
    }

    /// Original members of the cluster represented by `rep`.
    pub fn members(&self, rep: NodeId) -> &[NodeId] {
        &self.members[rep]
    }

    fn contract(&mut self, kept: NodeId, removed: NodeId) {
        debug_assert!(self.active[kept] && self.active[removed] && kept != removed);
        let moved = std::mem::take(&mut self.members[removed]);
        for &v in &moved {
            self.cluster_of[v] = kept;
        }
        self.members[kept].extend_from_slice(&moved);
        self.active[removed] = false;
        self.num_clusters -= 1;
        self.history.push(Contraction {
            kept,
            removed,
            moved,
        });
    }

    /// Undoes the most recent contraction step.  Returns `false` when the
    /// history is empty (the clustering is already fully uncoarsened).
    pub fn uncontract_one(&mut self) -> bool {
        let Some(Contraction {
            kept,
            removed,
            moved,
        }) = self.history.pop()
        else {
            return false;
        };
        // The moved nodes were appended to `kept`'s member list, so they form
        // its tail; split them back off.
        let keep_len = self.members[kept].len() - moved.len();
        let tail = self.members[kept].split_off(keep_len);
        debug_assert_eq!(tail, moved);
        for &v in &moved {
            self.cluster_of[v] = removed;
        }
        self.members[removed] = moved;
        self.active[removed] = true;
        self.num_clusters += 1;
        true
    }

    /// Builds the quotient DAG of the current clustering: one node per
    /// cluster, work/communication weights summed over the members, an edge
    /// between two clusters whenever the original DAG has an edge between
    /// members of the two.  Returns the quotient DAG together with the list of
    /// representatives, where representative `reps[i]` corresponds to quotient
    /// node `i`.
    pub fn quotient_dag(&self, dag: &Dag) -> (Dag, Vec<NodeId>) {
        let reps = self.representatives();
        let mut index = vec![usize::MAX; dag.n()];
        for (i, &r) in reps.iter().enumerate() {
            index[r] = i;
        }
        let mut builder = DagBuilder::new();
        for &r in &reps {
            let work = self.members[r].iter().map(|&v| dag.work(v)).sum();
            let comm = self.members[r].iter().map(|&v| dag.comm(v)).sum();
            builder.add_node(work, comm);
        }
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (a, b) in dag.edges() {
            let ca = index[self.cluster_of[a]];
            let cb = index[self.cluster_of[b]];
            if ca != cb && seen.insert((ca, cb)) {
                builder.add_edge(ca, cb);
            }
        }
        let quotient = builder
            .build()
            .expect("contractions preserve acyclicity, so the quotient is a DAG");
        (quotient, reps)
    }
}

/// A mutable quotient graph used only while coarsening; adjacency is kept
/// incrementally so each contraction step costs `O(deg(u) + deg(v))` plus the
/// `O(n + m)` topological-rank recomputation.
struct QuotientGraph {
    succs: Vec<BTreeSet<NodeId>>,
    preds: Vec<BTreeSet<NodeId>>,
    work: Vec<u64>,
    comm: Vec<u64>,
    active: Vec<bool>,
    n_active: usize,
}

impl QuotientGraph {
    fn new(dag: &Dag) -> Self {
        let n = dag.n();
        let mut succs = vec![BTreeSet::new(); n];
        let mut preds = vec![BTreeSet::new(); n];
        for (u, v) in dag.edges() {
            succs[u].insert(v);
            preds[v].insert(u);
        }
        QuotientGraph {
            succs,
            preds,
            work: dag.work_weights().to_vec(),
            comm: dag.comm_weights().to_vec(),
            active: vec![true; n],
            n_active: n,
        }
    }

    /// Kahn topological rank over the active clusters (inactive entries are 0).
    fn topological_rank(&self) -> Vec<usize> {
        let n = self.active.len();
        let mut indeg: Vec<usize> = (0..n)
            .map(|v| {
                if self.active[v] {
                    self.preds[v].len()
                } else {
                    0
                }
            })
            .collect();
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&v| self.active[v] && indeg[v] == 0)
            .collect();
        let mut rank = vec![0usize; n];
        let mut next_rank = 0usize;
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            rank[v] = next_rank;
            next_rank += 1;
            for &w in &self.succs[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        debug_assert_eq!(next_rank, self.n_active, "quotient graph must stay acyclic");
        rank
    }

    /// Candidate edges for contraction: for every non-sink cluster `u`, the
    /// out-neighbour with the smallest topological rank.  Such an edge never
    /// has an alternative `u → v` path, so contracting it keeps the graph
    /// acyclic.
    fn candidate_edges(&self) -> Vec<(NodeId, NodeId)> {
        let rank = self.topological_rank();
        let mut candidates = Vec::new();
        for u in 0..self.active.len() {
            if !self.active[u] || self.succs[u].is_empty() {
                continue;
            }
            let v = *self.succs[u]
                .iter()
                .min_by_key(|&&w| rank[w])
                .expect("non-empty successor set");
            candidates.push((u, v));
        }
        candidates
    }

    /// Merges cluster `v` into cluster `u` (the edge `u → v` must exist).
    fn contract(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(self.succs[u].contains(&v));
        self.succs[u].remove(&v);
        self.preds[v].remove(&u);
        let v_succs: Vec<NodeId> = self.succs[v].iter().copied().collect();
        for w in v_succs {
            self.preds[w].remove(&v);
            if w != u {
                self.succs[u].insert(w);
                self.preds[w].insert(u);
            }
        }
        let v_preds: Vec<NodeId> = self.preds[v].iter().copied().collect();
        for w in v_preds {
            self.succs[w].remove(&v);
            if w != u {
                self.succs[w].insert(u);
                self.preds[u].insert(w);
            }
        }
        self.succs[v].clear();
        self.preds[v].clear();
        self.work[u] += self.work[v];
        self.comm[u] += self.comm[v];
        self.active[v] = false;
        self.n_active -= 1;
    }
}

/// Coarsens `dag` down to (at most) `target_clusters` clusters, or until no
/// contractable edge remains, and returns the resulting clustering (with its
/// full contraction history, so it can be uncoarsened step by step).
pub fn coarsen(dag: &Dag, target_clusters: usize) -> Clustering {
    let mut clustering = Clustering::identity(dag.n());
    if dag.n() == 0 {
        return clustering;
    }
    let mut graph = QuotientGraph::new(dag);
    let target = target_clusters.max(1);
    while graph.n_active > target {
        let mut candidates = graph.candidate_edges();
        if candidates.is_empty() {
            break;
        }
        // Paper rule: sort by merged work weight, keep the first third, pick
        // the edge with the largest communication weight of its source.
        candidates.sort_by_key(|&(u, v)| graph.work[u] + graph.work[v]);
        let prefix = candidates.len().div_ceil(3);
        let &(u, v) = candidates[..prefix]
            .iter()
            .max_by_key(|&&(u, _)| graph.comm[u])
            .expect("prefix is non-empty");
        graph.contract(u, v);
        clustering.contract(u, v);
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use dag_gen::fine::{cg, spmv, IterConfig, SpmvConfig};

    fn diamond() -> Dag {
        Dag::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
        )
        .unwrap()
    }

    #[test]
    fn identity_clustering_quotient_is_the_original_dag() {
        let dag = diamond();
        let clustering = Clustering::identity(dag.n());
        let (q, reps) = clustering.quotient_dag(&dag);
        assert_eq!(q.n(), dag.n());
        assert_eq!(q.num_edges(), dag.num_edges());
        assert_eq!(reps, vec![0, 1, 2, 3]);
        assert_eq!(q.work_weights(), dag.work_weights());
    }

    #[test]
    fn coarsening_reaches_the_target_and_preserves_weight_totals() {
        let dag = spmv(&SpmvConfig {
            n: 20,
            density: 0.25,
            seed: 1,
        });
        let target = dag.n() * 3 / 10;
        let clustering = coarsen(&dag, target);
        assert!(clustering.num_clusters() <= target.max(1) + 1);
        let (q, _) = clustering.quotient_dag(&dag);
        assert_eq!(q.total_work(), dag.total_work());
        assert_eq!(q.total_comm(), dag.total_comm());
        // Quotient must be a DAG (builder would have panicked otherwise) and
        // every original node must belong to exactly one cluster.
        let mut seen = vec![false; dag.n()];
        for rep in clustering.representatives() {
            for &v in clustering.members(rep) {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn every_intermediate_quotient_is_acyclic() {
        let dag = cg(&IterConfig {
            n: 8,
            density: 0.3,
            iterations: 2,
            seed: 7,
        });
        let mut clustering = coarsen(&dag, dag.n() / 5);
        // Walk the whole uncoarsening path; quotient_dag panics on a cycle.
        loop {
            let (q, _) = clustering.quotient_dag(&dag);
            assert!(q.topological_order().is_some());
            if !clustering.uncontract_one() {
                break;
            }
        }
        assert_eq!(clustering.num_clusters(), dag.n());
    }

    #[test]
    fn uncontracting_everything_restores_the_identity_clustering() {
        let dag = spmv(&SpmvConfig {
            n: 12,
            density: 0.3,
            seed: 3,
        });
        let mut clustering = coarsen(&dag, 3);
        while clustering.uncontract_one() {}
        for v in 0..dag.n() {
            assert_eq!(clustering.cluster_of(v), v);
            assert_eq!(clustering.members(v), &[v]);
        }
        assert_eq!(clustering.num_clusters(), dag.n());
        assert_eq!(clustering.num_contractions(), 0);
    }

    #[test]
    fn chain_contracts_to_a_single_cluster() {
        let dag = Dag::from_edge_list_unit_weights(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let clustering = coarsen(&dag, 1);
        assert_eq!(clustering.num_clusters(), 1);
        let (q, _) = clustering.quotient_dag(&dag);
        assert_eq!(q.n(), 1);
        assert_eq!(q.total_work(), 5);
    }

    #[test]
    fn graph_without_edges_cannot_be_coarsened() {
        let dag = Dag::from_edge_list_unit_weights(4, &[]).unwrap();
        let clustering = coarsen(&dag, 1);
        assert_eq!(clustering.num_clusters(), 4);
    }
}
