//! Property test for the [`bsp_serve::ScheduleCache`] invariants under
//! random operation sequences (the repo's proptest idiom: deterministic
//! seeded cases, failure messages naming the case for exact replay).
//!
//! After **every** operation the cache must satisfy
//! [`ScheduleCache::check_invariants`]:
//! * `bytes_used` equals the sum of live entry footprints;
//! * the byte budget is never exceeded;
//! * `by_structure` points at a live entry with that structure fingerprint
//!   whenever *any* live entry has it (the eviction-repoint regression
//!   class: before PR 4 evicting a newer sibling orphaned the older one);
//! * the LRU list, `by_full` and the free list are mutually consistent.
//!
//! On top of the structural invariants, two behavioural properties: a key
//! that was never inserted never hits, and a fitting insert is immediately
//! retrievable (inserts only ever evict *other* entries).

use bsp_model::{Assignment, BspSchedule, Dag};
use bsp_serve::{schedule_footprint, ScheduleCache};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::sync::Arc;

fn schedule_of(n: usize) -> Arc<BspSchedule> {
    let dag = Dag::from_edge_list_unit_weights(n, &[]).unwrap();
    Arc::new(BspSchedule::from_assignment_lazy(
        &dag,
        Assignment::trivial(n),
    ))
}

#[test]
fn random_operation_sequences_preserve_every_cache_invariant() {
    const CASES: u64 = 24;
    const OPS: usize = 400;
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0xCAC4E + case);
        // A budget of a few small entries forces constant eviction; small
        // key spaces force alias collisions and in-place replacements.
        let per_entry = schedule_footprint(&schedule_of(8));
        let budget = per_entry * (2 + (case as usize % 5));
        let mut cache = ScheduleCache::new(budget);
        let mut ever_inserted: HashSet<u128> = HashSet::new();
        for op in 0..OPS {
            match rng.gen_range(0u32..100) {
                // Insert (or replace in place).
                0..=49 => {
                    let full = u128::from(rng.gen_range(0u64..24));
                    let structure = rng.gen_range(0u64..6);
                    let n = rng.gen_range(1usize..40);
                    let schedule = schedule_of(n);
                    let fits = schedule_footprint(&schedule) <= budget;
                    cache.insert(full, structure, Arc::clone(&schedule), 7);
                    if fits {
                        ever_inserted.insert(full);
                        // A fitting insert never evicts itself.
                        let (hit, cost) = cache
                            .lookup_exact(full)
                            .unwrap_or_else(|| panic!("case {case} op {op}: lost fresh insert"));
                        assert!(Arc::ptr_eq(&hit, &schedule), "case {case} op {op}");
                        assert_eq!(cost, 7, "case {case} op {op}");
                    }
                }
                // Exact lookup: never hits a key that was never inserted.
                50..=79 => {
                    let full = u128::from(rng.gen_range(0u64..32));
                    if cache.lookup_exact(full).is_some() {
                        assert!(
                            ever_inserted.contains(&full),
                            "case {case} op {op}: phantom hit for {full:#x}"
                        );
                    }
                }
                // Warm lookup + outcome attribution.
                80..=94 => {
                    let structure = rng.gen_range(0u64..8);
                    if cache.lookup_warm(structure).is_some() {
                        if rng.gen_bool(0.5) {
                            cache.note_warm_hit();
                        } else {
                            cache.note_warm_fallback();
                        }
                    }
                }
                _ => cache.note_miss(),
            }
            if let Err(violation) = cache.check_invariants() {
                panic!("case {case} op {op}: {violation}");
            }
        }
        let stats = cache.stats();
        assert!(
            stats.insertions + stats.hits + stats.misses > 0,
            "case {case} exercised nothing"
        );
    }
}
