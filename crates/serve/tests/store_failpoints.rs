//! Fault injection through the *service* layer: a [`FailPoint`] armed on the
//! store while real requests flow through [`ScheduleService::handle`].
//!
//! The store's own unit tests pin down frame-level recovery; these tests pin
//! down the contract the serving stack builds on top of it:
//!
//! * a torn write (crash mid-frame) costs exactly that one schedule — the
//!   next boot serves everything else and solves the torn one cold, never
//!   serving garbage;
//! * a crash *between* the durable flush and the in-memory index update
//!   loses nothing — the frame is on disk and the next boot adopts it;
//! * every injected failure is visible in the `STATS` counters a fleet
//!   dashboard would watch (`store_write_errors`, `store_dropped_corrupt`).

use bsp_model::{Dag, Machine};
use bsp_serve::{
    FailPoint, RequestOptions, ScheduleRequest, ScheduleService, ScheduleSource, ServiceConfig,
    StoreConfig,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bsp-store-failpoint-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn service_at(dir: &Path) -> ScheduleService {
    ScheduleService::try_new(ServiceConfig {
        local_search_budget: Duration::from_millis(40),
        warm_budget: Duration::from_millis(40),
        store: Some(StoreConfig::at(dir.to_path_buf())),
        ..Default::default()
    })
    .expect("open service over the store")
}

fn chain_request(id: u64, n: usize, work: u64) -> ScheduleRequest {
    let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    ScheduleRequest {
        id,
        dag: Dag::from_edges(n, &edges, vec![work; n], vec![1; n]).unwrap(),
        machine: Machine::uniform(4, 1, 2),
        options: RequestOptions::new(),
    }
}

#[test]
fn a_torn_write_costs_one_schedule_and_is_counted_never_served() {
    let dir = temp_dir("torn");
    // Different node counts: structurally distinct, so neither request can
    // warm-start off the other and every first solve is honestly `Cold`.
    let survivor = chain_request(1, 12, 3);
    let torn = chain_request(2, 10, 5);
    {
        let service = service_at(&dir);
        assert_eq!(
            service.handle(&survivor).unwrap().source,
            ScheduleSource::Cold
        );
        service.flush_store();
        // Arm the fail point: the next offered frame is cut short after 7
        // bytes — exactly a crash inside the frame body.
        service
            .store()
            .expect("store-backed service")
            .set_fail_point(FailPoint::AfterBytes(7));
        assert_eq!(service.handle(&torn).unwrap().source, ScheduleSource::Cold);
        service.flush_store();
        let stats = service.stats();
        assert_eq!(stats.store.write_errors, 1, "the injected tear is counted");
        assert_eq!(stats.store.appended, 1, "only the survivor reached disk");
    }
    {
        let service = service_at(&dir);
        let stats = service.stats();
        assert_eq!(stats.store.loaded, 1, "the survivor was adopted");
        // The torn frame was physically discarded during recovery — it can
        // surface as `dropped_corrupt` (damaged tail) but never as an entry.
        assert_eq!(
            service.handle(&survivor).unwrap().source,
            ScheduleSource::CacheExact,
            "the cleanly flushed schedule is served from the recovered store"
        );
        let replay = service.handle(&torn).unwrap();
        assert_ne!(
            replay.source,
            ScheduleSource::CacheExact,
            "the torn schedule must be re-solved, not served from damage"
        );
        assert!(replay.schedule.validate(&torn.dag, &torn.machine).is_ok());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_between_flush_and_index_update_loses_nothing() {
    let dir = temp_dir("index-gap");
    let request = chain_request(1, 12, 3);
    let expected_cost;
    {
        let service = service_at(&dir);
        service
            .store()
            .expect("store-backed service")
            .set_fail_point(FailPoint::BeforeIndexUpdate);
        let reply = service.handle(&request).unwrap();
        expected_cost = reply.cost;
        service.flush_store();
        let stats = service.stats();
        assert_eq!(stats.store.appended, 1, "the frame is durable");
        assert_eq!(
            stats.store.write_errors, 1,
            "the missed index update is still surfaced as a write error"
        );
    }
    {
        let service = service_at(&dir);
        assert_eq!(service.stats().store.loaded, 1);
        let replay = service.handle(&request).unwrap();
        assert_eq!(
            replay.source,
            ScheduleSource::CacheExact,
            "a frame that reached the disk is recovered even if the writer \
             died before indexing it"
        );
        assert_eq!(replay.cost, expected_cost);
        assert!(replay
            .schedule
            .validate(&request.dag, &request.machine)
            .is_ok());
    }
    let _ = fs::remove_dir_all(&dir);
}
