//! The crash harness: a real `bsp_served` process, `SIGKILL`, restart, and
//! the proof that nothing the server acknowledged as durable is lost — and
//! nothing damaged is ever served.
//!
//! In-process tests cannot prove crash safety: graceful `Drop` impls always
//! run.  Here the shard is a child process spawned from the
//! `CARGO_BIN_EXE_bsp_served` build artifact, killed with `SIGKILL` (no
//! signal handler, no flush, no `Drop`), restarted on the same store
//! directory, and interrogated over the real wire protocol.
//!
//! The durability contract under test: `store_appended` (visible in `STATS`)
//! counts frames that were written *and* fsynced — every one of them must be
//! recovered by the next boot, served as an exact cache hit, and validate.

#![cfg(unix)]

use bsp_model::{Dag, Machine};
use bsp_serve::{
    Client, Mode, Placement, RequestOptions, Router, RouterConfig, ScheduleSource, Server,
    ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsp-crash-kill-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running `bsp_served` child: kill it hard or stop it politely.
struct Shard {
    child: Child,
    addr: SocketAddr,
}

impl Shard {
    /// Spawns `bsp_served --addr <addr> --store-dir <dir>` and waits for its
    /// `READY` line.  Retries the spawn while the requested port is still in
    /// the kernel's hands after a kill.
    fn spawn(addr: &str, store_dir: &Path) -> Shard {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut child = Command::new(env!("CARGO_BIN_EXE_bsp_served"))
                .args(["--addr", addr, "--workers", "2"])
                .arg("--store-dir")
                .arg(store_dir)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn bsp_served");
            let mut line = String::new();
            let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
            reader.read_line(&mut line).expect("read READY line");
            if let Some(rest) = line.trim().strip_prefix("READY ") {
                child.stdout = Some(reader.into_inner());
                return Shard {
                    child,
                    addr: rest.parse().expect("parse READY address"),
                };
            }
            // Bind failed (EOF on stdout) — the port is not free yet.
            let _ = child.wait();
            assert!(
                Instant::now() < deadline,
                "bsp_served never came up on {addr}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// `SIGKILL`: the address space disappears mid-whatever.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL bsp_served");
        self.child.wait().expect("reap killed bsp_served");
    }

    /// Graceful stop via the stdin protocol (flushes the store).
    fn stop(mut self) {
        let mut stdin = self.child.stdin.take().expect("piped stdin");
        let _ = stdin.write_all(b"STOP\n");
        drop(stdin);
        self.child.wait().expect("reap stopped bsp_served");
    }
}

fn dag_with_seed(seed: u64) -> Dag {
    // The chain's length varies with the seed: placement routes by structure
    // key, so distinct seeds need distinct DAG shapes to spread over shards.
    let n = 4 + (seed as usize % 32);
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    Dag::from_edges(n, &edges, vec![seed + 1; n], vec![2; n]).unwrap()
}

/// Polls the server's `STATS` until `store_appended` reaches `want`.
fn wait_for_appended(addr: SocketAddr, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let appended = Client::connect(addr)
            .ok()
            .and_then(|mut c| c.stats().ok())
            .map_or(0, |s| s.store.appended);
        if appended >= want {
            return appended;
        }
        assert!(
            Instant::now() < deadline,
            "store_appended stuck at {appended}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_sigkilled_server_serves_every_acknowledged_schedule_after_restart() {
    let dir = temp_dir("direct");
    let machine = Machine::uniform(4, 1, 2);
    let options = RequestOptions::new().with_mode(Mode::HeuristicsOnly);
    let dags: Vec<Dag> = (0..6).map(dag_with_seed).collect();

    let shard = Shard::spawn("127.0.0.1:0", &dir);
    let addr = shard.addr;
    let mut costs = Vec::new();
    {
        let mut client = Client::connect(addr).expect("connect");
        for dag in &dags {
            let reply = client.schedule(dag, &machine, &options).expect("cold");
            assert!(reply.schedule.validate(dag, &machine).is_ok());
            costs.push(reply.cost);
        }
    }
    // Wait until every frame is acknowledged durable, *then* pull the plug.
    let acknowledged = wait_for_appended(addr, dags.len() as u64);
    shard.kill();

    // Same port, same store directory, brand-new process.
    let restarted = Shard::spawn(&addr.to_string(), &dir);
    let mut client = Client::connect(restarted.addr).expect("reconnect");
    let stats = client.stats().expect("stats after restart");
    assert_eq!(
        stats.store.loaded, acknowledged,
        "every acknowledged append was recovered and adopted"
    );
    assert!(stats.store.recovered_bytes > 0);
    assert_eq!(
        stats.store.dropped_corrupt, 0,
        "a quiesced kill leaves no damaged tail"
    );
    // Replay every request by fingerprint only: the restarted server must
    // hold them all, at the exact pre-crash costs.
    for (dag, &cost) in dags.iter().zip(&costs) {
        client.assume_cached(dag, &machine);
        let reply = client.schedule(dag, &machine, &options).expect("replay");
        assert_eq!(reply.source, ScheduleSource::CacheExact);
        assert_eq!(reply.cost, cost, "recovered schedule, recovered cost");
        assert!(reply.schedule.validate(dag, &machine).is_ok());
    }
    assert_eq!(
        client.fp_fallbacks(),
        0,
        "no fingerprint replay fell back — recovery was complete"
    );

    restarted.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_router_fronted_shard_killed_mid_burst_recovers_and_rejoins() {
    // The deployment-level version: shard 0 is a store-backed bsp_served
    // process, shard 1 an in-process survivor.  Shard 0 is SIGKILLed in the
    // middle of a write burst; every in-flight and subsequent request must
    // still be answered (failover), and after a restart on the same store
    // directory the health probe rejoins the shard with its durable cache
    // intact.
    let dir = temp_dir("router");
    let machine = Machine::uniform(4, 1, 2);
    let options = RequestOptions::new().with_mode(Mode::HeuristicsOnly);

    let shard0 = Shard::spawn("127.0.0.1:0", &dir);
    let shard0_addr = shard0.addr;
    let survivor = Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind survivor")
        .spawn()
        .expect("spawn survivor");
    let addrs = [shard0_addr, survivor.addr()];
    let router_config = RouterConfig {
        health_probe_interval: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    let router = Router::bind("127.0.0.1:0", &addrs, router_config)
        .expect("bind router")
        .spawn()
        .expect("spawn router");

    // A burst of requests all homed on shard 0 by the placement policy, so
    // the kill lands on keys whose durability is shard 0's job.
    let placement = Placement::new(2);
    let owned: Vec<Dag> = (0..64)
        .filter(|&seed| {
            let key = bsp_model::request_key(&dag_with_seed(seed), &machine);
            placement.structure_owner(key.structure) == 0
        })
        .take(6)
        .map(dag_with_seed)
        .collect();
    assert!(owned.len() >= 4, "enough seeds route to shard 0");

    let mut client = Client::connect(router.addr()).expect("connect via router");
    let mid = owned.len() / 2;
    for dag in &owned[..mid] {
        let reply = client.schedule(dag, &machine, &options).expect("pre-kill");
        assert!(reply.schedule.validate(dag, &machine).is_ok());
    }
    // Only what the shard acknowledged as fsynced is promised to survive.
    let acknowledged = wait_for_appended(shard0_addr, mid as u64);
    shard0.kill();

    // Mid-burst: the remaining owned requests must keep completing through
    // failover, valid every time.
    for dag in &owned[mid..] {
        let reply = client
            .schedule(dag, &machine, &options)
            .expect("failover request");
        assert!(reply.schedule.validate(dag, &machine).is_ok());
    }

    // Restart shard 0 on its old address and store; the probe must rejoin it
    // with no traffic.
    let restarted = Shard::spawn(&shard0_addr.to_string(), &dir);
    let deadline = Instant::now() + Duration::from_secs(5);
    while router.live_shards() != vec![0, 1] {
        assert!(
            Instant::now() < deadline,
            "health probe did not rejoin the restarted shard"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The restarted shard recovered everything it had acknowledged...
    let mut direct = Client::connect(restarted.addr).expect("connect to restarted shard");
    let stats = direct.stats().expect("stats");
    assert!(
        stats.store.loaded >= acknowledged,
        "restarted shard adopted {} of {acknowledged} acknowledged frames",
        stats.store.loaded
    );
    // ...and serves them as exact hits through the router again.
    let mut replayer = Client::connect(router.addr()).expect("reconnect via router");
    for dag in &owned[..mid] {
        replayer.assume_cached(dag, &machine);
        let reply = replayer.schedule(dag, &machine, &options).expect("replay");
        assert_eq!(
            reply.source,
            ScheduleSource::CacheExact,
            "pre-kill schedules survive the crash and the rejoin"
        );
        assert!(reply.schedule.validate(dag, &machine).is_ok());
    }
    assert_eq!(replayer.fp_fallbacks(), 0);

    drop(client);
    drop(direct);
    drop(replayer);
    router.shutdown();
    restarted.stop();
    survivor.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
