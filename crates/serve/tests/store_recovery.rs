//! Randomized corruption recovery: for *any* prefix truncation or single-bit
//! flip of a segment file, [`Store::open`] recovers exactly the maximal
//! checksum-valid prefix of frames, and never an entry past the damage.
//!
//! This is the property the torn-write design rests on: a crash can garble
//! at most the tail of the active segment, and recovery = "keep the longest
//! clean prefix".  The seeded cases below sweep damage positions across the
//! whole file — segment header, frame length headers, checksums, bodies,
//! frame boundaries — rather than hand-picking a few offsets.

use bsp_model::record::{encode_record, StoreRecord};
use bsp_model::{Assignment, Machine};
use bsp_serve::store::SEGMENT_HEADER_BYTES;
use bsp_serve::{Store, StoreConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::path::PathBuf;

const CASES: u64 = 48;
const RECORDS: usize = 6;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bsp-store-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn record(fp: u128, payload: usize) -> StoreRecord {
    StoreRecord {
        full_fp: fp,
        structure_fp: (fp as u64).wrapping_mul(3),
        cost: 9,
        machine: Machine::uniform(2, 1, 1),
        dag_bytes: vec![(fp as u8).wrapping_add(7); payload],
        assignment: Assignment {
            proc: vec![0, 1],
            superstep: vec![0, 0],
        },
    }
}

/// Writes `RECORDS` distinct-fingerprint frames into a fresh store and
/// returns the pristine segment bytes plus each frame's *end* offset within
/// the file (absolute, segment header included).
fn pristine_segment(rng: &mut ChaCha8Rng) -> (Vec<u8>, Vec<u64>) {
    let dir = temp_dir("pristine");
    let mut ends = Vec::new();
    let mut offset = SEGMENT_HEADER_BYTES;
    {
        let (store, recovered) = Store::open(StoreConfig::at(&dir)).expect("open fresh store");
        assert!(recovered.is_empty());
        for i in 0..RECORDS {
            let payload = rng.gen_range(1..200);
            let mut frame = Vec::new();
            encode_record(&record(i as u128 + 1, payload), &mut frame).expect("encode");
            offset += frame.len() as u64;
            ends.push(offset);
            store.offer(i as u128 + 1, frame);
        }
        store.flush();
    }
    // The first boot's active segment is seg 0; read it back raw.
    let bytes = fs::read(dir.join("seg-00000000.log")).expect("read pristine segment");
    assert_eq!(bytes.len() as u64, *ends.last().unwrap());
    let _ = fs::remove_dir_all(&dir);
    (bytes, ends)
}

/// Opens a store over a directory holding exactly `bytes` as segment 0 and
/// returns the recovered fingerprints in recovery order.
fn recover(case: u64, bytes: &[u8]) -> Vec<u128> {
    let dir = temp_dir(&format!("case-{case}"));
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("seg-00000000.log"), bytes).expect("write damaged segment");
    let (store, recovered) = Store::open(StoreConfig::at(&dir)).expect("recovery never errors");
    drop(store);
    // Recovery must be idempotent: a second boot over the physically
    // truncated directory yields the same survivors.
    let (store, again) = Store::open(StoreConfig::at(&dir)).expect("re-open after recovery");
    let fps: Vec<u128> = recovered.iter().map(|r| r.full_fp).collect();
    let fps_again: Vec<u128> = again.iter().map(|r| r.full_fp).collect();
    assert_eq!(
        fps, fps_again,
        "case {case}: recovery is not idempotent across reboots"
    );
    drop(store);
    let _ = fs::remove_dir_all(&dir);
    fps
}

/// The fingerprints recovery must yield when the first damaged byte is at
/// `damage`: every frame wholly before it, nothing after.
fn expected_prefix(ends: &[u64], damage: u64) -> Vec<u128> {
    if damage < SEGMENT_HEADER_BYTES {
        return Vec::new();
    }
    ends.iter()
        .enumerate()
        .take_while(|(_, &end)| end <= damage)
        .map(|(i, _)| i as u128 + 1)
        .collect()
}

#[test]
fn any_prefix_truncation_recovers_the_maximal_valid_prefix() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11C);
    let (bytes, ends) = pristine_segment(&mut rng);
    for case in 0..CASES {
        let cut = rng.gen_range(0..=bytes.len() as u64);
        let expected = expected_prefix(&ends, cut);
        let got = recover(case, &bytes[..cut as usize]);
        assert_eq!(
            got,
            expected,
            "case {case}: truncation at byte {cut} of {} (frame ends {ends:?})",
            bytes.len()
        );
    }
    // The two boundary cuts, always.
    assert!(recover(900, &[]).is_empty(), "empty file recovers nothing");
    assert_eq!(
        recover(901, &bytes),
        expected_prefix(&ends, bytes.len() as u64),
        "undamaged file recovers everything"
    );
}

#[test]
fn any_single_bit_flip_recovers_the_frames_before_the_damage() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17F);
    let (bytes, ends) = pristine_segment(&mut rng);
    for case in 0..CASES {
        let byte = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0..8u32);
        let mut damaged = bytes.clone();
        damaged[byte] ^= 1 << bit;
        // A flip inside the segment header drops the whole file; a flip
        // inside frame `i` invalidates frame `i` and truncates recovery
        // there — frames before it are untouched bytes and must survive.
        let expected = expected_prefix(&ends, byte as u64);
        let got = recover(1000 + case, &damaged);
        assert_eq!(
            got, expected,
            "case {case}: bit {bit} of byte {byte} flipped (frame ends {ends:?})"
        );
    }
}
