//! The placement policy: the **only** code in the workspace that maps a
//! request key to a shard.
//!
//! ## Why a policy layer
//!
//! Before this module, "which shard owns this request" was re-derived
//! independently in four places — the router's dispatch (`owner_shard` over
//! the full fingerprint), the FP replay path, the failover re-run, and the
//! store/cache adoption checks — and they only agreed by construction.
//! Full-key ranges also scatter *warm structural families* across shards:
//! [`bsp_model::RequestKey`] hashes structure+weights into both 64-bit
//! lanes of `full`, so two reweighted instances of the same DAG land on
//! unrelated shards and the warm alias on the shard that solved the first
//! one never fires for the second.  The serve bench measured that directly
//! (29 sharded vs 41 serial warm hits on the same workload).
//!
//! ## The policy
//!
//! [`Placement`] routes in three tiers, most specific first:
//!
//! 1. **Affinity** — a bounded directory remembers the home shard chosen
//!    for each structure key the router has seen.  Every later request of
//!    the family (exact replays included, via the structure token on the
//!    `FP` wire line) goes home, so a family's exact entries *and* its warm
//!    alias co-locate.
//! 2. **Load-aware cold placement** — the first sighting of a structure is
//!    owned by nobody's cache yet, so it may be steered to the shard with
//!    the lowest pooled queue-wait p50 (from the router's METRICS scrapes)
//!    instead of its range owner.  Steering is hysteretic: the range owner
//!    keeps the request unless it is **more than 2× and ≥ 10 ms** worse
//!    than the best shard, so a quiet cluster places purely by range and
//!    stays deterministic.  Stale scrapes (no refresh within 3 probe
//!    intervals, e.g. a shard in probe backoff) disable steering entirely.
//! 3. **Range ownership** — a multiply-shift range map over the structure
//!    key (`(structure * shards) >> 64`), the deterministic fallback that
//!    needs no state.  Legacy `FP` lines without a structure token fall
//!    back to the same map over the high lane of the full key — the
//!    pre-placement routing — so old clients keep their exact hits.
//!
//! The tie-break when full-key and structure-key owners disagree is
//! one-sided by design: **the structure owner always wins** for full
//! requests.  Exact-hit routing is preserved not by the full-key map but by
//! the per-entry cache population on the owning shard.
//!
//! ## Failover and restarts
//!
//! The directory is runtime state.  After a router restart it is empty:
//! replays probe the structure range owner, and a miss surfaces as the
//! ordinary `unknown-fp` dance (the client transparently resends the full
//! request, which re-homes the family).  During failover the router
//! re-runs on [`Placement::failover_successor`]; the directory keeps the
//! dead shard as home, so the family *re-homes automatically* once the
//! shard rejoins.
//!
//! ## Epochs
//!
//! A shard's durable store records the placement epoch
//! ([`PlacementScope::epoch`], a hash of the policy version and shard
//! count) it was written under.  When a store opens under a different
//! epoch, entries whose structure key the shard no longer owns are dropped
//! and compacted away (counted as `dropped_foreign`) — re-sharding is an
//! explicit, observable event instead of silently serving foreign keys.

use std::collections::HashMap;
use std::sync::Mutex;

/// Bump when the placement function changes shape incompatibly; part of the
/// store epoch, so a policy change re-filters durable state on next open.
pub const PLACEMENT_VERSION: u64 = 1;

/// Directory capacity: one entry per *structure* (not per request), so this
/// comfortably covers any realistic working set; beyond it, cold placements
/// stop being sticky and fall back to pure range ownership.
const DIRECTORY_CAP: usize = 65_536;

/// Steering hysteresis: the range owner keeps a cold request unless its
/// queue-wait p50 is worse than the best shard by **both** this factor...
const STEER_RATIO: u64 = 2;
/// ...and this absolute gap (µs).  Keeps idle clusters deterministic.
const STEER_MIN_GAP_US: u64 = 10_000;

/// Why the policy picked the shard it picked.  Rendered as the `decision`
/// label on `bsp_placement_total` and as `placement_<decision>` STATS keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Directory hit: the structure already has a home shard.
    Affinity,
    /// Cold structure steered off its range owner by the load signal.
    LoadSteered,
    /// Cold structure placed on its structure-range owner (no steer).
    RangeCold,
    /// FP replay with a structure token for an unknown structure: probe the
    /// structure range owner (a restart-emptied directory lands here).
    FpProbe,
    /// FP replay without a structure token (legacy wire): full-key range
    /// owner, the pre-placement routing.
    FpLegacy,
    /// The placed shard was dead; the request re-ran on the successor.
    Failover,
}

impl Decision {
    /// Every variant, for registering counters up front.
    pub const ALL: [Decision; 6] = [
        Decision::Affinity,
        Decision::LoadSteered,
        Decision::RangeCold,
        Decision::FpProbe,
        Decision::FpLegacy,
        Decision::Failover,
    ];

    /// The stable label used on metrics and the STATS tail.
    pub fn as_str(self) -> &'static str {
        match self {
            Decision::Affinity => "affinity",
            Decision::LoadSteered => "load_steered",
            Decision::RangeCold => "range_cold",
            Decision::FpProbe => "fp_probe",
            Decision::FpLegacy => "fp_legacy",
            Decision::Failover => "failover",
        }
    }
}

/// Per-shard pooled queue-wait p50s from the router's latest METRICS
/// scrape; `None` for shards that did not answer (dead, in probe backoff,
/// or not yet serving traffic).  Staleness is the *router's* judgement —
/// pass `None` for the whole view rather than an old one.
#[derive(Debug, Clone, Default)]
pub struct LoadView {
    /// Indexed by shard; `queue_wait_p50_us[s]` is shard `s`'s pooled
    /// `bsp_queue_wait_micros` p50 in microseconds.
    pub queue_wait_p50_us: Vec<Option<u64>>,
}

/// The placement policy plus its runtime affinity directory.
///
/// Pure functions ([`Placement::structure_owner`], [`Placement::full_owner`])
/// carry the deterministic range maps; [`Placement::place_request`] and
/// [`Placement::place_replay`] layer the directory and the load signal on
/// top.  One instance lives in the router's shared state.
#[derive(Debug)]
pub struct Placement {
    shards: usize,
    /// structure key → home shard, populated at cold placement.
    directory: Mutex<HashMap<u64, usize>>,
}

impl Placement {
    /// A policy over `shards` shards (`shards >= 1`).
    pub fn new(shards: usize) -> Placement {
        assert!(shards > 0, "placement needs at least one shard");
        Placement {
            shards,
            directory: Mutex::new(HashMap::new()),
        }
    }

    /// The shard count this policy partitions over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Deterministic structure-range owner: multiply-shift over the 64-bit
    /// structure key.  Every structure key maps to exactly one shard and
    /// the ranges are even to within one part in 2^64.
    pub fn structure_owner(&self, structure: u64) -> usize {
        range_owner(structure, self.shards)
    }

    /// Deterministic full-key range owner (the pre-placement routing), used
    /// only for legacy FP replays that carry no structure token.
    pub fn full_owner(&self, full: u128) -> usize {
        range_owner((full >> 64) as u64, self.shards)
    }

    /// Places a full scheduling request.  `load` is the router's current
    /// view when fresh, `None` when stale or probing is disabled.
    pub fn place_request(&self, structure: u64, load: Option<&LoadView>) -> (usize, Decision) {
        let mut directory = self.directory.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&home) = directory.get(&structure) {
            return (home, Decision::Affinity);
        }
        let owner = self.structure_owner(structure);
        let (shard, decision) = match load.and_then(|view| steer_target(view, owner)) {
            Some(best) => (best, Decision::LoadSteered),
            None => (owner, Decision::RangeCold),
        };
        if directory.len() < DIRECTORY_CAP {
            directory.insert(structure, shard);
        }
        (shard, decision)
    }

    /// Places a fingerprint replay.  With a structure token the directory
    /// decides (probing the structure range owner on a miss, **without**
    /// inserting — a replay proves nothing about where the entry lives);
    /// without one, the legacy full-key range map.
    pub fn place_replay(&self, full: u128, structure: Option<u64>) -> (usize, Decision) {
        match structure {
            Some(s) => {
                let directory = self.directory.lock().unwrap_or_else(|e| e.into_inner());
                match directory.get(&s) {
                    Some(&home) => (home, Decision::Affinity),
                    None => (self.structure_owner(s), Decision::FpProbe),
                }
            }
            None => (self.full_owner(full), Decision::FpLegacy),
        }
    }

    /// The shard a dead shard's traffic re-runs on.  The directory is
    /// deliberately *not* rewritten: the family re-homes when the owner
    /// rejoins.
    pub fn failover_successor(&self, dead: usize) -> usize {
        (dead + 1) % self.shards
    }

    /// The number of structures currently pinned in the affinity directory.
    pub fn directory_len(&self) -> usize {
        self.directory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

/// Multiply-shift range map: `(key * shards) >> 64`.  Total (every key has
/// an owner < `shards`) and even (ranges differ by at most one key).
fn range_owner(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((u128::from(key) * shards as u128) >> 64) as usize
}

/// Where a cold request should steer, if anywhere: the argmin-p50 shard,
/// but only when the owner's p50 is known and worse than the best by both
/// the ratio and the absolute hysteresis gap.  Shards with `None` p50
/// (dead / in backoff / unscraped) are never steered *to*; an owner with
/// `None` p50 is never steered *away from* (range ownership is the safe
/// default when the signal is partial).
fn steer_target(view: &LoadView, owner: usize) -> Option<usize> {
    let owner_p50 = view.queue_wait_p50_us.get(owner).copied().flatten()?;
    let (best, best_p50) = view
        .queue_wait_p50_us
        .iter()
        .enumerate()
        .filter_map(|(s, p50)| p50.map(|v| (s, v)))
        .min_by_key(|&(_, v)| v)?;
    if best == owner {
        return None;
    }
    if owner_p50 > best_p50.saturating_mul(STEER_RATIO)
        && owner_p50.saturating_sub(best_p50) >= STEER_MIN_GAP_US
    {
        Some(best)
    } else {
        None
    }
}

/// One shard's view of the policy: enough to answer "do I own this key?"
/// without the router's directory.  Handed to the service and store so
/// adoption and epoch-change compaction consult the same range map as the
/// router — the single-ownership-site property the module exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementScope {
    /// Total shards in the deployment.
    pub shards: usize,
    /// This shard's index.
    pub shard: usize,
}

impl PlacementScope {
    /// Whether this shard is the structure-range owner of `structure`.
    /// Affinity/steering can place *live* entries elsewhere (those are
    /// adopted and counted, not dropped); range ownership is what survives
    /// an epoch change.
    pub fn owns_structure(&self, structure: u64) -> bool {
        range_owner(structure, self.shards) == self.shard
    }

    /// The placement epoch: a deterministic hash of the policy version and
    /// the shard count.  Stores stamp it; a mismatch on open means the
    /// range map moved under the durable state.
    pub fn epoch(&self) -> u64 {
        // FNV-1a over the two u64s — stable across platforms and builds.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [PLACEMENT_VERSION, self.shards as u64] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: both range maps partition their key spaces totally and
    /// evenly, and the structure map is deterministic across instances
    /// (a restart builds the same map).
    #[test]
    fn placement_partitions_both_key_spaces_evenly_and_deterministically() {
        for shards in [1usize, 2, 3, 5, 8] {
            let placement = Placement::new(shards);
            let restarted = Placement::new(shards);
            let mut structure_counts = vec![0u32; shards];
            let mut full_counts = vec![0u32; shards];
            let samples = 10_000u64;
            for i in 0..samples {
                // Spread the probes across the key space, not just the
                // low end.
                let key = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let s = placement.structure_owner(key);
                assert!(s < shards, "structure owner in range");
                assert_eq!(
                    s,
                    restarted.structure_owner(key),
                    "structure map is deterministic across restarts"
                );
                structure_counts[s] += 1;
                let f = placement.full_owner(u128::from(key) << 64 | 0xdead);
                assert!(f < shards, "full owner in range");
                full_counts[f] += 1;
            }
            let expect = samples as u32 / shards as u32;
            for counts in [&structure_counts, &full_counts] {
                for &c in counts.iter() {
                    assert!(
                        c.abs_diff(expect) < expect / 4 + 50,
                        "even partition for {shards} shards: {counts:?}"
                    );
                }
            }
        }
        // Boundary keys are owned too (totality at the extremes).
        let p = Placement::new(3);
        assert_eq!(p.structure_owner(0), 0);
        assert_eq!(p.structure_owner(u64::MAX), 2);
        assert_eq!(p.full_owner(u128::MAX), 2);
    }

    #[test]
    fn affinity_sticks_and_survives_load_changes() {
        let p = Placement::new(4);
        let structure = 0xabcd_ef12_3456_7890u64;
        let (home, d) = p.place_request(structure, None);
        assert_eq!(d, Decision::RangeCold);
        assert_eq!(home, p.structure_owner(structure));
        // A later sighting is an affinity hit even with a hostile load view.
        let view = LoadView {
            queue_wait_p50_us: vec![Some(1); 4],
        };
        let (again, d) = p.place_request(structure, Some(&view));
        assert_eq!((again, d), (home, Decision::Affinity));
    }

    #[test]
    fn cold_requests_steer_only_past_the_hysteresis() {
        let p = Placement::new(2);
        // Structure owned by shard 1 (high key).
        let structure = u64::MAX - 7;
        assert_eq!(p.structure_owner(structure), 1);
        // Owner barely worse: no steer (ratio not met).
        let mild = LoadView {
            queue_wait_p50_us: vec![Some(10_000), Some(15_000)],
        };
        assert_eq!(
            p.place_replay(structure as u128, None).1,
            Decision::FpLegacy
        );
        let (shard, d) = p.place_request(structure, Some(&mild));
        assert_eq!((shard, d), (1, Decision::RangeCold));

        // Owner far worse on a *different* structure (same range owner):
        // steers to the idle shard.
        let p = Placement::new(2);
        let bad = LoadView {
            queue_wait_p50_us: vec![Some(1_000), Some(50_000)],
        };
        let (shard, d) = p.place_request(structure, Some(&bad));
        assert_eq!((shard, d), (0, Decision::LoadSteered));
        // ...and the steered home sticks.
        let (again, d) = p.place_request(structure, None);
        assert_eq!((again, d), (0, Decision::Affinity));
    }

    #[test]
    fn partial_or_missing_load_views_fall_back_to_range_ownership() {
        let p = Placement::new(2);
        let structure = u64::MAX - 99;
        assert_eq!(p.structure_owner(structure), 1);
        // Owner unscraped: never steered away from.
        let owner_unknown = LoadView {
            queue_wait_p50_us: vec![Some(5), None],
        };
        assert_eq!(
            p.place_request(structure, Some(&owner_unknown)),
            (1, Decision::RangeCold)
        );
        // Big gap but absolute threshold unmet: no steer.
        let p = Placement::new(2);
        let small_gap = LoadView {
            queue_wait_p50_us: vec![Some(10), Some(5_000)],
        };
        assert_eq!(
            p.place_request(structure, Some(&small_gap)),
            (1, Decision::RangeCold)
        );
    }

    #[test]
    fn replays_follow_the_directory_and_probe_on_misses() {
        let p = Placement::new(2);
        let structure = u64::MAX - 3;
        let full = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        // Unknown structure: probe its range owner, do not pin it.
        let (shard, d) = p.place_replay(full, Some(structure));
        assert_eq!((shard, d), (1, Decision::FpProbe));
        assert_eq!(p.directory_len(), 0);
        // After the family is homed (steered to 0), replays follow it.
        let view = LoadView {
            queue_wait_p50_us: vec![Some(1_000), Some(50_000)],
        };
        assert_eq!(
            p.place_request(structure, Some(&view)),
            (0, Decision::LoadSteered)
        );
        assert_eq!(
            p.place_replay(full, Some(structure)),
            (0, Decision::Affinity)
        );
        // Legacy replays (no token) use the full-key range map regardless.
        assert_eq!(p.place_replay(full, None).1, Decision::FpLegacy);
        assert_eq!(p.place_replay(full, None).0, p.full_owner(full));
    }

    #[test]
    fn scopes_agree_with_the_policy_and_epochs_track_the_shard_count() {
        let p = Placement::new(3);
        for i in 0..2_000u64 {
            let key = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let owner = p.structure_owner(key);
            for shard in 0..3 {
                let scope = PlacementScope { shards: 3, shard };
                assert_eq!(scope.owns_structure(key), shard == owner);
            }
        }
        let a = PlacementScope {
            shards: 2,
            shard: 0,
        };
        let b = PlacementScope {
            shards: 2,
            shard: 1,
        };
        let c = PlacementScope {
            shards: 3,
            shard: 0,
        };
        assert_eq!(
            a.epoch(),
            b.epoch(),
            "epoch is per-deployment, not per-shard"
        );
        assert_ne!(a.epoch(), c.epoch(), "resharding changes the epoch");
    }

    #[test]
    fn failover_successor_wraps_and_the_directory_keeps_the_old_home() {
        let p = Placement::new(2);
        assert_eq!(p.failover_successor(0), 1);
        assert_eq!(p.failover_successor(1), 0);
        let structure = 42u64;
        let (home, _) = p.place_request(structure, None);
        // Failover does not rewrite affinity: the family re-homes on rejoin.
        let _ = p.failover_successor(home);
        assert_eq!(p.place_request(structure, None), (home, Decision::Affinity));
    }
}
