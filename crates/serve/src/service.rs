//! The scheduling engine behind the wire layer: cache consultation,
//! deadline-aware anytime solving, and per-outcome latency metrics.
//!
//! [`ScheduleService::handle`] is the whole request lifecycle:
//!
//! 1. fingerprint the request ([`bsp_model::fingerprint`], allocation-free);
//! 2. **exact cache hit** → return the cached [`BspSchedule`] in `O(1)`.
//!    This path performs *zero heap allocation* (fingerprinting, the mutex,
//!    the LRU bump, the `Arc` clone and the histogram update all stay off
//!    the allocator) — certified by the repo's counting-allocator test;
//! 3. **warm hit** (same structure, different weights) → the cached
//!    assignment seeds `hc_improve`/`hccs_improve` instead of running the
//!    pipeline cold (PR 2's warm-start machinery, reused across requests);
//! 4. **miss** → run the configured pipeline.
//!
//! Every solve runs under a [`CancelToken`] that combines the request
//! deadline with the service's shutdown token, so a request always comes
//! back with its best-so-far *valid* schedule by its deadline, and shutdown
//! drains in-flight work promptly.  If a solver ever returned an invalid
//! schedule the service would fall back to the trivial schedule rather than
//! ship it — the service-boundary counterpart of the pipeline's debug
//! assertions.

use crate::cache::{CacheStats, ScheduleCache};
use crate::metrics::{LatencyHistogram, StoreStats};
use crate::obs::{write_sample, write_type, MetricsRegistry, SpanSet};
use crate::placement::PlacementScope;
use crate::protocol::{Mode, ScheduleRequest, ScheduleSource, ServeError};
use crate::store::{Store, StoreConfig};
use bsp_model::record::{encode_record, RecordError, StoreRecord};
use bsp_model::{request_key, BspSchedule, RequestKey};
use bsp_sched::cancel::CancelToken;
use bsp_sched::hill_climb::{hc_improve, hccs_improve, HillClimbConfig};
use bsp_sched::multilevel::{MultilevelConfig, MultilevelScheduler, PhaseTimings};
use bsp_sched::pipeline::{Pipeline, PipelineConfig};
use dag_gen::hyperdag::{read_hyperdag, write_hyperdag};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`ScheduleService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Byte budget of the schedule cache.
    pub cache_bytes: usize,
    /// `HC` + `HCcs` budget of a cold run (heuristics mode); clipped to the
    /// request deadline.
    pub local_search_budget: Duration,
    /// `HC` + `HCcs` budget of a warm-started run; clipped to the request
    /// deadline.  Smaller than the cold budget — a near-hit seed is already
    /// close to a local minimum.
    pub warm_budget: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Thread budget of one solve.  `1` (the default) runs each request
    /// fully sequentially — branch fan-out included — so a pool of workers
    /// never oversubscribes the host; the server derives this from its
    /// worker count (see `ServerConfig::solve_threads`).  `0` budgets one
    /// thread per available core (only sensible for a single-worker
    /// deployment).
    pub solve_threads: usize,
    /// The durable store under the cache ([`crate::store`]); `None` (the
    /// default) runs memory-only.  With a store, cache inserts write through
    /// asynchronously, evictions drop only the RAM copy, and startup replays
    /// the segments to pre-warm the cache.
    pub store: Option<StoreConfig>,
    /// This shard's view of the placement policy ([`crate::placement`]).
    /// `None` (the default) is the single-server deployment: no ownership
    /// to assert.  When set it is forwarded to the store (placement-epoch
    /// marker) and the adoption path counts recovered entries this shard is
    /// not the range owner of (`adopted_foreign`).
    pub placement: Option<PlacementScope>,
    /// Coarsen-depth floor for multilevel solves
    /// (`MultilevelConfig::min_coarse_nodes`): never coarsen a request's DAG
    /// below this many clusters.  `0` (the default) keeps the ratio targets.
    /// Deadline-bound deployments raise this so huge DAGs stop coarsening
    /// once the coarse solve is already cheap, instead of spending the
    /// deadline contracting further for marginal gain.
    pub min_coarse_nodes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_bytes: 64 << 20,
            local_search_budget: Duration::from_secs(2),
            warm_budget: Duration::from_millis(500),
            default_deadline: None,
            solve_threads: 1,
            store: None,
            placement: None,
            min_coarse_nodes: 0,
        }
    }
}

/// Latency histograms per schedule source, plus the total request count.
/// The histograms are shared with the service's [`MetricsRegistry`] (series
/// `bsp_request_latency_micros{source=…}`), so `STATS` quantiles and the
/// `METRICS` exposition read the same data.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Cold (full pipeline) requests.
    pub cold: Arc<LatencyHistogram>,
    /// Exact cache hits.
    pub exact: Arc<LatencyHistogram>,
    /// Warm-started requests.
    pub warm: Arc<LatencyHistogram>,
    /// `bsp_requests_total{source=…}` counters, same order of sources.
    requests: [Arc<AtomicU64>; 3],
}

const LATENCY_HELP: &str = "request handling latency in microseconds";
const REQUESTS_HELP: &str = "requests answered";

impl ServiceMetrics {
    /// Registers the per-source series in `registry` and returns the shared
    /// handles.  Recording through them is lock- and allocation-free.
    fn register(registry: &MetricsRegistry) -> Self {
        let hist = |source| {
            registry.histogram(
                "bsp_request_latency_micros",
                LATENCY_HELP,
                &[("source", source)],
            )
        };
        let counter =
            |source| registry.counter("bsp_requests_total", REQUESTS_HELP, &[("source", source)]);
        ServiceMetrics {
            cold: hist("cold"),
            exact: hist("exact"),
            warm: hist("warm"),
            requests: [counter("cold"), counter("exact"), counter("warm")],
        }
    }

    fn histogram(&self, source: ScheduleSource) -> &LatencyHistogram {
        match source {
            ScheduleSource::Cold => &self.cold,
            ScheduleSource::CacheExact => &self.exact,
            ScheduleSource::CacheWarm => &self.warm,
        }
    }

    /// Records one answered request: latency histogram + request counter.
    fn observe(&self, source: ScheduleSource, elapsed: Duration) {
        self.histogram(source).record(elapsed);
        let idx = match source {
            ScheduleSource::Cold => 0,
            ScheduleSource::CacheExact => 1,
            ScheduleSource::CacheWarm => 2,
        };
        self.requests[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time statistics snapshot, also the payload of the wire `STATS`
/// verb.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests answered (all sources).
    pub requests: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// `(p50, p99)` latency in µs of cold requests.
    pub cold_us: (u64, u64),
    /// `(p50, p99)` latency in µs of exact cache hits.
    pub exact_us: (u64, u64),
    /// `(p50, p99)` latency in µs of warm-started requests.
    pub warm_us: (u64, u64),
    /// Durable-store counters (all zero when running memory-only).
    pub store: StoreStats,
}

impl ServiceStats {
    /// Encodes the snapshot as the one-line wire form (without a newline).
    pub fn to_wire(&self) -> String {
        format!(
            "STATS requests {} hits {} misses {} warm_hits {} warm_fallbacks {} insertions {} \
             evictions {} bytes {} entries {} cold_p50_us {} cold_p99_us {} exact_p50_us {} \
             exact_p99_us {} warm_p50_us {} warm_p99_us {} store_loaded {} \
             store_recovered_bytes {} store_dropped_corrupt {} store_compactions {} \
             store_write_errors {} store_appended {} store_dropped_foreign {} \
             store_adopted_foreign {}",
            self.requests,
            self.cache.hits,
            self.cache.misses,
            self.cache.warm_hits,
            self.cache.warm_fallbacks,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.bytes_used,
            self.cache.entries,
            self.cold_us.0,
            self.cold_us.1,
            self.exact_us.0,
            self.exact_us.1,
            self.warm_us.0,
            self.warm_us.1,
            self.store.loaded,
            self.store.recovered_bytes,
            self.store.dropped_corrupt,
            self.store.compactions,
            self.store.write_errors,
            self.store.appended,
            self.store.dropped_foreign,
            self.store.adopted_foreign,
        )
    }

    /// Parses the wire form produced by [`ServiceStats::to_wire`].
    pub fn from_wire(line: &str) -> Result<Self, ServeError> {
        let mut it = line.split_whitespace();
        if it.next() != Some("STATS") {
            return Err(ServeError::Malformed {
                line: line.to_string(),
                reason: "expected STATS line".into(),
            });
        }
        let mut stats = ServiceStats::default();
        while let Some(key) = it.next() {
            let value: u64 =
                it.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ServeError::Malformed {
                        line: line.to_string(),
                        reason: format!("missing or bad value for {key}"),
                    })?;
            match key {
                "requests" => stats.requests = value,
                "hits" => stats.cache.hits = value,
                "misses" => stats.cache.misses = value,
                "warm_hits" => stats.cache.warm_hits = value,
                "warm_fallbacks" => stats.cache.warm_fallbacks = value,
                "insertions" => stats.cache.insertions = value,
                "evictions" => stats.cache.evictions = value,
                "bytes" => stats.cache.bytes_used = value as usize,
                "entries" => stats.cache.entries = value as usize,
                "cold_p50_us" => stats.cold_us.0 = value,
                "cold_p99_us" => stats.cold_us.1 = value,
                "exact_p50_us" => stats.exact_us.0 = value,
                "exact_p99_us" => stats.exact_us.1 = value,
                "warm_p50_us" => stats.warm_us.0 = value,
                "warm_p99_us" => stats.warm_us.1 = value,
                "store_loaded" => stats.store.loaded = value,
                "store_recovered_bytes" => stats.store.recovered_bytes = value,
                "store_dropped_corrupt" => stats.store.dropped_corrupt = value,
                "store_compactions" => stats.store.compactions = value,
                "store_write_errors" => stats.store.write_errors = value,
                "store_appended" => stats.store.appended = value,
                "store_dropped_foreign" => stats.store.dropped_foreign = value,
                "store_adopted_foreign" => stats.store.adopted_foreign = value,
                _ => {} // forward-compatible
            }
        }
        Ok(stats)
    }
}

/// The in-process reply of [`ScheduleService::handle`] (the wire layer turns
/// it into a [`crate::protocol::ScheduleResponse`]).
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// The schedule (shared with the cache on hits and after insertions).
    pub schedule: Arc<BspSchedule>,
    /// Its cost on the request's DAG and machine.
    pub cost: u64,
    /// Where it came from.
    pub source: ScheduleSource,
    /// Handling time (queueing excluded).
    pub elapsed: Duration,
}

/// The scheduling engine: cache + solvers + metrics.  Thread-safe; the
/// worker pool shares one instance behind an `Arc`.
#[derive(Debug)]
pub struct ScheduleService {
    config: ServiceConfig,
    cache: Mutex<ScheduleCache>,
    shutdown: CancelToken,
    registry: Arc<MetricsRegistry>,
    metrics: ServiceMetrics,
    store: Option<Store>,
}

impl ScheduleService {
    /// A fresh service.  With [`ServiceConfig::store`] set this opens the
    /// durable store (running crash recovery) and pre-warms the cache from
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the store directory cannot be opened; use
    /// [`ScheduleService::try_new`] to handle the error.
    pub fn new(config: ServiceConfig) -> Self {
        Self::try_new(config).expect("failed to open the durable schedule store")
    }

    /// [`ScheduleService::new`], minus the panic: opening or recovering the
    /// durable store surfaces as an `io::Error`.
    pub fn try_new(config: ServiceConfig) -> io::Result<Self> {
        let mut cache = ScheduleCache::new(config.cache_bytes);
        let store = match &config.store {
            Some(store_config) => {
                let mut store_config = store_config.clone();
                // The service's placement scope wins: the store's epoch
                // marker and the router's routing must agree on ownership.
                if store_config.placement.is_none() {
                    store_config.placement = config.placement;
                }
                let (store, recovered) = Store::open(store_config)?;
                for record in &recovered {
                    // Recovery trusts nothing: a checksum-valid record is
                    // re-validated end to end (fingerprints recomputed from
                    // the payload, schedule checked against the request)
                    // before the cache may serve it.
                    match adopt_record(record) {
                        Some((key, schedule, cost)) => {
                            cache.repopulate(key.full, key.structure, schedule, cost);
                            store.counters().loaded.fetch_add(1, Ordering::Relaxed);
                            // Within an epoch, foreign-structure residents
                            // (load-steered or failed-over families) are
                            // adopted — counted, never dropped.
                            if let Some(scope) = config.placement {
                                if !scope.owns_structure(key.structure) {
                                    store
                                        .counters()
                                        .adopted_foreign
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        None => {
                            store
                                .counters()
                                .dropped_corrupt
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Some(store)
            }
            None => None,
        };
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServiceMetrics::register(&registry);
        Ok(ScheduleService {
            config,
            cache: Mutex::new(cache),
            shutdown: CancelToken::new(),
            registry,
            metrics,
            store,
        })
    }

    /// The service's shutdown token; in-flight solves poll it.
    pub fn shutdown_token(&self) -> &CancelToken {
        &self.shutdown
    }

    /// Asks in-flight solves to wrap up; subsequent requests are refused
    /// with [`ServeError::ShuttingDown`].
    pub fn begin_shutdown(&self) {
        self.shutdown.cancel();
    }

    /// The per-outcome latency histograms.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The unified metrics registry.  The wire layers register their own
    /// series (queue wait, connection counters) here so one `METRICS` render
    /// covers the whole process.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Renders the full Prometheus-style text exposition: every registry
    /// series plus the cache and store counters sampled at call time.
    pub fn render_metrics(&self, out: &mut String) {
        self.registry.render(out);
        let cache = self.lock_cache().stats();
        out.push_str("# HELP bsp_cache_ops_total cache operations by kind\n");
        write_type(out, "bsp_cache_ops_total", "counter");
        for (op, value) in [
            ("eviction", cache.evictions),
            ("hit", cache.hits),
            ("insertion", cache.insertions),
            ("miss", cache.misses),
            ("warm_fallback", cache.warm_fallbacks),
            ("warm_hit", cache.warm_hits),
        ] {
            write_sample(out, "bsp_cache_ops_total", &format!("op=\"{op}\""), value);
        }
        write_type(out, "bsp_cache_bytes", "gauge");
        write_sample(out, "bsp_cache_bytes", "", cache.bytes_used as u64);
        write_type(out, "bsp_cache_entries", "gauge");
        write_sample(out, "bsp_cache_entries", "", cache.entries as u64);
        let store = self
            .store
            .as_ref()
            .map(|s| s.counters().snapshot())
            .unwrap_or_default();
        out.push_str("# HELP bsp_store_events_total durable-store events by kind\n");
        write_type(out, "bsp_store_events_total", "counter");
        for (event, value) in [
            ("adopted_foreign", store.adopted_foreign),
            ("appended", store.appended),
            ("compaction", store.compactions),
            ("dropped_corrupt", store.dropped_corrupt),
            ("dropped_foreign", store.dropped_foreign),
            ("loaded", store.loaded),
            ("write_error", store.write_errors),
        ] {
            write_sample(
                out,
                "bsp_store_events_total",
                &format!("event=\"{event}\""),
                value,
            );
        }
        write_type(out, "bsp_store_recovered_bytes_total", "counter");
        write_sample(
            out,
            "bsp_store_recovered_bytes_total",
            "",
            store.recovered_bytes,
        );
    }

    /// A statistics snapshot (cache counters + latency quantiles).
    pub fn stats(&self) -> ServiceStats {
        let cache = self.lock_cache().stats();
        let m = &self.metrics;
        ServiceStats {
            requests: m.cold.count() + m.exact.count() + m.warm.count(),
            cache,
            cold_us: m.cold.p50_p99_micros(),
            exact_us: m.exact.p50_p99_micros(),
            warm_us: m.warm.p50_p99_micros(),
            store: self
                .store
                .as_ref()
                .map(|s| s.counters().snapshot())
                .unwrap_or_default(),
        }
    }

    /// The durable store, when configured (tests arm fault injection through
    /// it).
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Blocks until every write offered to the store so far is on disk.
    /// No-op without a store.  Called on graceful shutdown; tests use it to
    /// make durability deterministic.
    pub fn flush_store(&self) {
        if let Some(store) = &self.store {
            store.flush();
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, ScheduleCache> {
        // A worker that panicked mid-insert cannot corrupt the cache beyond
        // dropping its own entry; serving stale-but-consistent data beats
        // refusing all traffic.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Handles one request end to end (see the module docs).
    pub fn handle(&self, request: &ScheduleRequest) -> Result<ServeReply, ServeError> {
        self.handle_traced(request, None)
    }

    /// [`ScheduleService::handle`] with request tracing: when `spans` is
    /// given, the handling phases (cache-lookup outcome, warm start, every
    /// solver phase) are recorded into it, microsecond offsets relative to
    /// the start of handling.  Recording is `Copy`-only — the exact-hit path
    /// stays allocation-free with tracing enabled, certified by the repo's
    /// counting-allocator test.
    pub fn handle_traced(
        &self,
        request: &ScheduleRequest,
        mut spans: Option<&mut SpanSet>,
    ) -> Result<ServeReply, ServeError> {
        let start = Instant::now();
        if self.shutdown.is_cancelled() {
            return Err(ServeError::ShuttingDown);
        }
        let key = request_key(&request.dag, &request.machine);

        let mut warm_seed = None;
        if request.options.use_cache {
            let mut cache = self.lock_cache();
            if let Some((schedule, cost)) = cache.lookup_exact(key.full) {
                drop(cache);
                let elapsed = start.elapsed();
                if let Some(spans) = spans.as_deref_mut() {
                    // No extra clock read: the exact hit *is* the lookup.
                    spans.push("cache_exact_hit", 0, 0, elapsed.as_micros() as u64);
                }
                self.metrics.observe(ScheduleSource::CacheExact, elapsed);
                return Ok(ServeReply {
                    schedule,
                    cost,
                    source: ScheduleSource::CacheExact,
                    elapsed,
                });
            }
            warm_seed = cache.lookup_warm(key.structure);
        }
        if let Some(spans) = spans.as_deref_mut() {
            let name = if warm_seed.is_some() {
                "cache_warm_hit"
            } else {
                "cache_miss"
            };
            spans.push(name, 0, 0, start.elapsed().as_micros() as u64);
        }

        let cancel = match request.options.deadline.or(self.config.default_deadline) {
            Some(budget) => self.shutdown.tightened(Instant::now() + budget),
            None => self.shutdown.clone(),
        };

        // Whether a warm seed was found AND accepted decides both the
        // response source and the cache attribution: a rejected seed is a
        // `warm_fallback`, never a `warm_hit`, so the `warm_hits` counter
        // always equals the warm histogram's population.
        let mut warm_fallback = false;
        let (schedule, source) = match &warm_seed {
            Some(seed) => {
                let warm_start = start.elapsed().as_micros() as u64;
                match self.solve_warm(request, seed, &cancel) {
                    Some(schedule) => {
                        if let Some(spans) = spans.as_deref_mut() {
                            let dur =
                                (start.elapsed().as_micros() as u64).saturating_sub(warm_start);
                            spans.push("warm_start", 0, warm_start, dur);
                        }
                        (schedule, ScheduleSource::CacheWarm)
                    }
                    // Structural-fingerprint collision or stale seed: fall
                    // back to a cold run rather than serving anything
                    // unchecked.
                    None => {
                        warm_fallback = true;
                        (
                            self.solve_cold(request, &cancel, &start, &mut spans),
                            ScheduleSource::Cold,
                        )
                    }
                }
            }
            None => (
                self.solve_cold(request, &cancel, &start, &mut spans),
                ScheduleSource::Cold,
            ),
        };

        // The solvers uphold validity by construction; this is the service
        // boundary's independent check so an invalid schedule can never
        // leave the process.
        let schedule = if schedule.validate(&request.dag, &request.machine).is_ok() {
            schedule
        } else {
            BspSchedule::trivial(&request.dag)
        };
        let cost = schedule.cost(&request.dag, &request.machine);
        let schedule = Arc::new(schedule);
        if request.options.use_cache {
            let insert_start = start.elapsed().as_micros() as u64;
            let mut cache = self.lock_cache();
            if warm_seed.is_some() {
                if warm_fallback {
                    cache.note_warm_fallback();
                } else {
                    cache.note_warm_hit();
                }
            }
            cache.insert(key.full, key.structure, Arc::clone(&schedule), cost);
            drop(cache);
            // Write-through is asynchronous and happens only on the solve
            // path (which already allocates); the exact-hit and FP-replay
            // paths stay allocation-free and never touch the store.
            self.offer_to_store(request, &schedule, cost, key);
            if let Some(spans) = spans {
                let dur = (start.elapsed().as_micros() as u64).saturating_sub(insert_start);
                spans.push("cache_insert", 0, insert_start, dur);
            }
        }
        let elapsed = start.elapsed();
        self.metrics.observe(source, elapsed);
        Ok(ServeReply {
            schedule,
            cost,
            source,
            elapsed,
        })
    }

    /// Handles a content-addressed replay (`FP <hex>`): the exact-hit path
    /// without any payload parsing.  Allocation-free on a hit, like
    /// [`ScheduleService::handle`]'s exact-hit path.  A miss returns
    /// [`ServeError::UnknownFingerprint`] so the client resends the full
    /// payload.
    pub fn handle_fingerprint(&self, fingerprint: u128) -> Result<ServeReply, ServeError> {
        self.handle_fingerprint_traced(fingerprint, None)
    }

    /// [`ScheduleService::handle_fingerprint`] with tracing; like
    /// [`ScheduleService::handle_traced`], recording stays allocation-free.
    pub fn handle_fingerprint_traced(
        &self,
        fingerprint: u128,
        spans: Option<&mut SpanSet>,
    ) -> Result<ServeReply, ServeError> {
        let start = Instant::now();
        if self.shutdown.is_cancelled() {
            return Err(ServeError::ShuttingDown);
        }
        let mut cache = self.lock_cache();
        match cache.lookup_exact(fingerprint) {
            Some((schedule, cost)) => {
                drop(cache);
                let elapsed = start.elapsed();
                if let Some(spans) = spans {
                    spans.push("cache_exact_hit", 0, 0, elapsed.as_micros() as u64);
                }
                self.metrics.observe(ScheduleSource::CacheExact, elapsed);
                Ok(ServeReply {
                    schedule,
                    cost,
                    source: ScheduleSource::CacheExact,
                    elapsed,
                })
            }
            None => {
                cache.note_miss();
                Err(ServeError::UnknownFingerprint)
            }
        }
    }

    /// Hands the freshly solved entry to the store's writer thread (never
    /// blocks; a full queue drops the write and counts a `write_error`).
    fn offer_to_store(
        &self,
        request: &ScheduleRequest,
        schedule: &Arc<BspSchedule>,
        cost: u64,
        key: RequestKey,
    ) {
        let Some(store) = &self.store else { return };
        let record = StoreRecord {
            full_fp: key.full,
            structure_fp: key.structure,
            cost,
            machine: request.machine.clone(),
            dag_bytes: write_hyperdag(&request.dag).into_bytes(),
            assignment: schedule.assignment.clone(),
        };
        let mut frame = Vec::new();
        match encode_record(&record, &mut frame) {
            Ok(()) => store.offer(key.full, frame),
            // Explicit-λ machines are not persisted (mirroring the wire
            // protocol); that is a policy, not a failure.
            Err(RecordError::Unsupported(_)) => {}
            Err(_) => {
                store
                    .counters()
                    .write_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Warm path: improve the cached assignment with `HC` + `HCcs` under the
    /// warm budget.  Returns `None` when the seed does not actually fit the
    /// request (fingerprint collision paranoia) so the caller can run cold.
    fn solve_warm(
        &self,
        request: &ScheduleRequest,
        seed: &BspSchedule,
        cancel: &CancelToken,
    ) -> Option<BspSchedule> {
        if seed.assignment.n() != request.dag.n() {
            return None;
        }
        let mut schedule = BspSchedule::from_assignment_lazy(&request.dag, seed.assignment.clone());
        if schedule.validate(&request.dag, &request.machine).is_err() {
            return None;
        }
        // The same 90/10 HC/HCcs split as the pipeline branches; the warm
        // improvement is a single search, so it gets the whole per-request
        // thread budget.
        let budget = self.config.warm_budget;
        let hc_cfg = HillClimbConfig {
            time_limit: budget.mul_f64(0.9),
            max_steps: usize::MAX,
            cancel: cancel.clone(),
            threads: self.config.solve_threads,
        };
        let hccs_cfg = HillClimbConfig {
            time_limit: budget.mul_f64(0.1),
            ..hc_cfg.clone()
        };
        hc_improve(&request.dag, &request.machine, &mut schedule, &hc_cfg);
        hccs_improve(&request.dag, &request.machine, &mut schedule, &hccs_cfg);
        Some(schedule)
    }

    /// Adds `micros` to the `bsp_solve_phase_micros_total{phase=…}` counter.
    /// Registration locks and may allocate — only ever called on the solve
    /// path, which allocates anyway.
    fn note_phase_micros(&self, phase: &'static str, micros: u64) {
        self.registry
            .counter(
                "bsp_solve_phase_micros_total",
                "cumulative solver time by phase in microseconds",
                &[("phase", phase)],
            )
            .fetch_add(micros, Ordering::Relaxed);
    }

    /// Cold path: the pipeline under the request's mode, deadline-aware and
    /// constrained to this worker's per-request thread budget (a budget of
    /// one runs the branch fan-out sequentially too, so `workers ×
    /// solve-threads` bounds the server's total parallelism).  Per-phase
    /// durations always feed the `bsp_solve_phase_micros_total` counters;
    /// with `spans` given they are also recorded under a `solve` span.
    fn solve_cold(
        &self,
        request: &ScheduleRequest,
        cancel: &CancelToken,
        start: &Instant,
        spans: &mut Option<&mut SpanSet>,
    ) -> BspSchedule {
        let solve_start = start.elapsed().as_micros() as u64;
        if request.options.mode == Mode::Multilevel {
            // The fast profile, re-budgeted from the service's knobs: serving
            // is latency-bounded, so the base solves get the same local-search
            // budget a heuristics-only request would, not the offline
            // pipeline's ILP budgets.
            let mut config = MultilevelConfig::fast()
                .with_threads(self.config.solve_threads)
                .with_min_coarse_nodes(self.config.min_coarse_nodes);
            config.base.hill_climb.time_limit = self.config.local_search_budget;
            config.base.cancel = cancel.clone();
            let report =
                MultilevelScheduler::new(config).run_report(&request.dag, &request.machine);
            let timings = report.total_timings();
            let solve_dur = (start.elapsed().as_micros() as u64).saturating_sub(solve_start);
            if let Some(spans) = spans.as_deref_mut() {
                spans.push("solve", 0, solve_start, solve_dur);
            }
            if report.used_base_only {
                // Too small to coarsen: the whole solve was one base run, and
                // the report carries no per-ratio timings to break down.
                self.note_phase_micros("ml_base_solve", solve_dur);
                if let Some(spans) = spans.as_deref_mut() {
                    spans.push("ml_base_solve", 1, solve_start, solve_dur);
                }
                return report.schedule;
            }
            // Ratio runs may overlap in wall-clock; the per-phase offsets
            // below are synthesized as if sequential, which preserves every
            // duration and the phase order.
            let mut offset = solve_start;
            for (name, dur_us) in ml_phase_durations(&timings) {
                self.note_phase_micros(name, dur_us);
                if let Some(spans) = spans.as_deref_mut() {
                    spans.push(name, 1, offset, dur_us);
                }
                offset = offset.saturating_add(dur_us);
            }
            return report.schedule;
        }
        let mut config = match request.options.mode {
            Mode::Default | Mode::Multilevel => PipelineConfig::default(),
            Mode::Fast => PipelineConfig::fast(),
            Mode::HeuristicsOnly => PipelineConfig::heuristics_only(),
        };
        if request.options.mode == Mode::HeuristicsOnly {
            config.hill_climb.time_limit = self.config.local_search_budget;
        }
        config = config.with_thread_budget(self.config.solve_threads);
        config.cancel = cancel.clone();
        config.collect_phases = true;
        let report = Pipeline::new(config).run_report(&request.dag, &request.machine);
        let solve_dur = (start.elapsed().as_micros() as u64).saturating_sub(solve_start);
        if let Some(spans) = spans.as_deref_mut() {
            spans.push("solve", 0, solve_start, solve_dur);
        }
        for sample in &report.phases {
            self.note_phase_micros(sample.name, sample.dur_us);
            if let Some(spans) = spans.as_deref_mut() {
                spans.push(
                    sample.name,
                    sample.depth.saturating_add(1),
                    solve_start.saturating_add(sample.start_us),
                    sample.dur_us,
                );
            }
        }
        report.schedule
    }
}

/// Flattens a multilevel [`PhaseTimings`] into `(phase, µs)` pairs, in
/// pipeline order.
fn ml_phase_durations(timings: &PhaseTimings) -> [(&'static str, u64); 6] {
    let us = |seconds: f64| (seconds * 1e6) as u64;
    [
        ("ml_coarsen", us(timings.coarsen_seconds)),
        ("ml_base_solve", us(timings.base_solve_seconds)),
        ("ml_uncontract", us(timings.uncontract_seconds)),
        ("ml_refine", us(timings.refine_seconds)),
        ("ml_final_sweep", us(timings.final_sweep_seconds)),
        ("ml_final_comm", us(timings.final_comm_seconds)),
    ]
}

/// Turns a checksum-valid recovered record into a cache entry — or `None`,
/// making it a `dropped_corrupt`.  Nothing in the record is trusted: the DAG
/// payload is re-parsed, both fingerprints are recomputed from it and must
/// match the stored keys, the assignment's shape is checked *before* any
/// array-indexing constructor can run, the rebuilt schedule passes the same
/// validity check every served schedule passes, and the cost is recomputed
/// rather than read back.  A corrupt or crafted record therefore costs one
/// lost cache entry, never a wrong answer.
fn adopt_record(record: &StoreRecord) -> Option<(RequestKey, Arc<BspSchedule>, u64)> {
    let text = std::str::from_utf8(&record.dag_bytes).ok()?;
    let dag = read_hyperdag(text).ok()?;
    let key = request_key(&dag, &record.machine);
    if key.full != record.full_fp || key.structure != record.structure_fp {
        return None;
    }
    // Shape guards ahead of `from_assignment_lazy`, which indexes the
    // assignment arrays by node id and allocates per superstep.
    if record.assignment.n() != dag.n() {
        return None;
    }
    if record.assignment.superstep.iter().any(|&s| s > dag.n()) {
        return None;
    }
    let schedule = BspSchedule::from_assignment_lazy(&dag, record.assignment.clone());
    if schedule.validate(&dag, &record.machine).is_err() {
        return None;
    }
    let cost = schedule.cost(&dag, &record.machine);
    Some((key, Arc::new(schedule), cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestOptions;
    use bsp_model::{Dag, Machine};

    fn request(dag: Dag, machine: Machine, options: RequestOptions) -> ScheduleRequest {
        ScheduleRequest {
            id: 1,
            dag,
            machine,
            options,
        }
    }

    fn chain(n: usize, work: u64) -> Dag {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Dag::from_edges(n, &edges, vec![work; n], vec![1; n]).unwrap()
    }

    #[test]
    fn identical_requests_hit_the_cache_exactly() {
        let service = ScheduleService::new(ServiceConfig {
            local_search_budget: Duration::from_millis(50),
            ..Default::default()
        });
        let req = request(
            chain(12, 3),
            Machine::uniform(4, 1, 2),
            RequestOptions::new(),
        );
        let first = service.handle(&req).unwrap();
        assert_eq!(first.source, ScheduleSource::Cold);
        let second = service.handle(&req).unwrap();
        assert_eq!(second.source, ScheduleSource::CacheExact);
        assert!(Arc::ptr_eq(&first.schedule, &second.schedule));
        assert_eq!(first.cost, second.cost);
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn reweighted_requests_warm_start() {
        let service = ScheduleService::new(ServiceConfig {
            local_search_budget: Duration::from_millis(50),
            warm_budget: Duration::from_millis(50),
            ..Default::default()
        });
        let machine = Machine::uniform(4, 1, 2);
        let cold = service
            .handle(&request(
                chain(12, 3),
                machine.clone(),
                RequestOptions::new(),
            ))
            .unwrap();
        assert_eq!(cold.source, ScheduleSource::Cold);
        let warm = service
            .handle(&request(chain(12, 5), machine, RequestOptions::new()))
            .unwrap();
        assert_eq!(warm.source, ScheduleSource::CacheWarm);
        assert_eq!(service.stats().cache.warm_hits, 1);
    }

    #[test]
    fn rejected_warm_seeds_count_as_fallbacks_not_warm_hits() {
        // Regression: a structurally matching seed that `solve_warm` rejects
        // used to count a `warm_hit` while the latency landed in the *cold*
        // histogram, so `warm_hits` and the warm histogram silently diverged.
        let service = ScheduleService::new(ServiceConfig {
            local_search_budget: Duration::from_millis(50),
            ..Default::default()
        });
        let req = request(
            chain(12, 3),
            Machine::uniform(4, 1, 2),
            RequestOptions::new(),
        );
        // Plant a colliding cache entry: same structural fingerprint as the
        // request, but a schedule for a different node count — exactly what a
        // structural-fingerprint collision looks like to the warm path.
        let key = request_key(&req.dag, &req.machine);
        let bogus_dag = chain(5, 1);
        let bogus = Arc::new(BspSchedule::trivial(&bogus_dag));
        service.lock_cache().insert(0xbad, key.structure, bogus, 0);

        let reply = service.handle(&req).unwrap();
        assert_eq!(
            reply.source,
            ScheduleSource::Cold,
            "rejected seed runs cold"
        );
        let stats = service.stats();
        assert_eq!(stats.cache.warm_fallbacks, 1);
        assert_eq!(
            stats.cache.warm_hits,
            service.metrics().warm.count(),
            "warm_hits must equal the warm histogram population"
        );
        assert_eq!(stats.cache.warm_hits, 0);
        assert_eq!(service.metrics().cold.count(), 1);
        // And the counter survives the wire roundtrip.
        let parsed = ServiceStats::from_wire(&stats.to_wire()).unwrap();
        assert_eq!(parsed.cache.warm_fallbacks, 1);
    }

    #[test]
    fn empty_dags_are_served_without_panicking() {
        let service = ScheduleService::new(ServiceConfig::default());
        let dag = Dag::from_edge_list_unit_weights(0, &[]).unwrap();
        let machine = Machine::uniform(2, 1, 1);
        let req = request(dag.clone(), machine.clone(), RequestOptions::new());
        let reply = service.handle(&req).unwrap();
        assert!(reply.schedule.validate(&dag, &machine).is_ok());
        // And the empty schedule is cacheable like any other.
        let hit = service.handle(&req).unwrap();
        assert_eq!(hit.source, ScheduleSource::CacheExact);
    }

    #[test]
    fn cache_off_requests_never_touch_the_cache() {
        let service = ScheduleService::new(ServiceConfig {
            local_search_budget: Duration::from_millis(20),
            ..Default::default()
        });
        let req = request(
            chain(8, 2),
            Machine::uniform(2, 1, 1),
            RequestOptions::new().with_cache(false),
        );
        for _ in 0..2 {
            let reply = service.handle(&req).unwrap();
            assert_eq!(reply.source, ScheduleSource::Cold);
        }
        assert_eq!(service.stats().cache.entries, 0);
    }

    #[test]
    fn shutdown_refuses_new_requests() {
        let service = ScheduleService::new(ServiceConfig::default());
        service.begin_shutdown();
        let req = request(
            chain(4, 1),
            Machine::uniform(2, 1, 1),
            RequestOptions::new(),
        );
        assert!(matches!(
            service.handle(&req),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn stats_roundtrip_through_the_wire_encoding() {
        let stats = ServiceStats {
            requests: 10,
            cache: CacheStats {
                hits: 4,
                misses: 5,
                warm_hits: 1,
                warm_fallbacks: 2,
                insertions: 6,
                evictions: 2,
                bytes_used: 12345,
                entries: 4,
            },
            cold_us: (1024, 8192),
            exact_us: (8, 16),
            warm_us: (256, 512),
            store: crate::metrics::StoreStats {
                loaded: 3,
                recovered_bytes: 4096,
                dropped_corrupt: 1,
                compactions: 2,
                write_errors: 5,
                appended: 9,
                dropped_foreign: 7,
                adopted_foreign: 3,
            },
        };
        let parsed = ServiceStats::from_wire(&stats.to_wire()).unwrap();
        assert_eq!(parsed, stats);
        assert!(ServiceStats::from_wire("NOPE").is_err());
    }

    fn store_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bsp-service-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn stored_config(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            local_search_budget: Duration::from_millis(50),
            store: Some(StoreConfig::at(dir)),
            ..Default::default()
        }
    }

    #[test]
    fn a_restarted_service_serves_exact_hits_from_the_store() {
        let dir = store_dir("restart");
        let machine = Machine::uniform(4, 1, 2);
        let (first_cost, first_stats) = {
            let service = ScheduleService::new(stored_config(&dir));
            let reply = service
                .handle(&request(
                    chain(12, 3),
                    machine.clone(),
                    RequestOptions::new(),
                ))
                .unwrap();
            assert_eq!(reply.source, ScheduleSource::Cold);
            service.flush_store();
            (reply.cost, service.stats())
        }; // drop: the writer drains and joins
        assert_eq!(first_stats.store.appended, 1);
        assert_eq!(first_stats.store.loaded, 0, "a fresh dir loads nothing");

        let service = ScheduleService::new(stored_config(&dir));
        let stats = service.stats();
        assert_eq!(stats.store.loaded, 1, "restart recovered the entry");
        assert_eq!(stats.cache.insertions, 0, "repopulation is not traffic");
        let reply = service
            .handle(&request(
                chain(12, 3),
                machine.clone(),
                RequestOptions::new(),
            ))
            .unwrap();
        assert_eq!(
            reply.source,
            ScheduleSource::CacheExact,
            "the recovered entry answers without solving"
        );
        assert_eq!(reply.cost, first_cost);
        assert!(reply.schedule.validate(&chain(12, 3), &machine).is_ok());
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_off_requests_never_reach_the_store() {
        let dir = store_dir("cache-off");
        {
            let service = ScheduleService::new(stored_config(&dir));
            let req = request(
                chain(8, 2),
                Machine::uniform(2, 1, 1),
                RequestOptions::new().with_cache(false),
            );
            service.handle(&req).unwrap();
            service.flush_store();
            assert_eq!(service.stats().store.appended, 0);
        }
        let service = ScheduleService::new(stored_config(&dir));
        assert_eq!(service.stats().store.loaded, 0);
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_record_is_dropped_on_restart_not_served() {
        let dir = store_dir("corrupt");
        {
            let service = ScheduleService::new(stored_config(&dir));
            for work in [3, 4] {
                service
                    .handle(&request(
                        chain(12, work),
                        Machine::uniform(4, 1, 2),
                        RequestOptions::new(),
                    ))
                    .unwrap();
            }
            service.flush_store();
        }
        // Flip one byte in the middle of the first segment's payload region.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().is_some_and(|n| n == "seg-00000000.log"))
            .expect("first segment exists");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg, bytes).unwrap();

        let service = ScheduleService::new(stored_config(&dir));
        let stats = service.stats();
        assert!(stats.store.dropped_corrupt >= 1, "the damage was noticed");
        assert!(
            stats.store.loaded < 2,
            "a corrupt record must not be adopted"
        );
        // Whatever *was* loaded still serves correctly.
        for work in [3, 4] {
            let dag = chain(12, work);
            let machine = Machine::uniform(4, 1, 2);
            let reply = service
                .handle(&request(
                    dag.clone(),
                    machine.clone(),
                    RequestOptions::new(),
                ))
                .unwrap();
            assert!(reply.schedule.validate(&dag, &machine).is_ok());
        }
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_is_honoured_with_a_valid_schedule() {
        let service = ScheduleService::new(ServiceConfig::default());
        let dag = chain(400, 7);
        let machine = Machine::uniform(8, 3, 5);
        let deadline = Duration::from_millis(60);
        let start = Instant::now();
        let reply = service
            .handle(&request(
                dag.clone(),
                machine.clone(),
                RequestOptions::new().with_deadline(deadline),
            ))
            .unwrap();
        let elapsed = start.elapsed();
        assert!(reply.schedule.validate(&dag, &machine).is_ok());
        // Anytime contract: the request returns promptly (2x covers the
        // non-cancellable fringes: initializers, final normalize, cost).
        assert!(
            elapsed < deadline * 2 + Duration::from_millis(50),
            "request took {elapsed:?} against a {deadline:?} deadline"
        );
    }
}
