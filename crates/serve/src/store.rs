//! The durable tier under the schedule cache: a per-shard, append-only,
//! content-addressed store of `(request, schedule)` records in checksummed
//! segment files.
//!
//! ## Design
//!
//! * **Append-only segments.**  Records ([`bsp_model::record`]) are framed
//!   with a length header and an FNV-64 checksum and appended to
//!   `seg-<seq>.log` files; nothing is ever mutated in place.  A segment
//!   rolls when it reaches [`StoreConfig::segment_bytes`].
//! * **Asynchronous write-through.**  [`Store::offer`] hands the encoded
//!   frame to a dedicated writer thread over a *bounded* channel and never
//!   blocks: when the queue is full the write is dropped (and counted in
//!   [`StoreCounters::write_errors`]) rather than stalling a response
//!   worker on disk I/O.  Durability is best-effort per entry; correctness
//!   never depends on it.
//! * **Crash recovery.**  [`Store::open`] scans every segment in sequence
//!   order, verifies each frame's checksum, **truncates the segment at the
//!   first torn or corrupt record**, and returns the surviving entries
//!   (newest version per fingerprint) for the service to re-validate and
//!   repopulate into the cache.  A damaged tail is physically truncated so
//!   it is not re-counted on the next boot — and can never surface as a
//!   served schedule.
//! * **Disk budget.**  The cache's LRU byte budget governs RAM only;
//!   evictions keep the on-disk copy.  When the segment files exceed
//!   [`StoreConfig::disk_budget_bytes`], the writer compacts: live entries
//!   are rewritten newest-first into fresh segments (oldest entries beyond
//!   the budget are dropped), superseded and torn frames disappear, and the
//!   old segments are deleted.
//! * **Placement epochs.**  When opened with a [`PlacementScope`], the
//!   store stamps the placement epoch (policy version + shard count) into a
//!   `placement.epoch` marker file.  A mismatch on a later open means the
//!   range map moved under the durable state (re-sharding): recovered
//!   entries whose structure key this shard no longer owns are dropped
//!   (counted in [`StoreCounters::dropped_foreign`]) and a startup
//!   compaction physically removes their frames, then the marker is
//!   rewritten.  Within an epoch, foreign-structure entries are *kept* —
//!   load steering and failover legitimately home families off their range
//!   owner — the service merely counts them as `adopted_foreign`.
//! * **Fault injection.**  A test-only [`FailPoint`] trips the next append
//!   mid-write ([`FailPoint::AfterBytes`]) or between the flush and the
//!   index update ([`FailPoint::BeforeIndexUpdate`]), so the recovery
//!   guarantees are tested properties, not design intentions.  The hooks
//!   are always compiled (integration tests and the kill harness need
//!   them) but inert unless armed.

use crate::metrics::StoreCounters;
use crate::placement::PlacementScope;
use bsp_model::record::{decode_record, RecordError, StoreRecord, FRAME_HEADER_BYTES};
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Magic + version prefix of every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"BSPSTOR1";
/// Bytes of the segment header (the 8-byte magic plus a `u32` version).
pub const SEGMENT_HEADER_BYTES: u64 = 12;
const SEGMENT_VERSION: u32 = 1;

/// Configuration of a shard's durable store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing).  One store
    /// per directory; the placement policy's range ownership means shards
    /// never share one.
    pub dir: PathBuf,
    /// Total segment-file byte budget; exceeding it triggers compaction.
    pub disk_budget_bytes: u64,
    /// Roll the active segment when it reaches this size.
    pub segment_bytes: u64,
    /// Bound of the writer channel; a full queue drops the write instead of
    /// blocking the response worker.
    pub queue_depth: usize,
    /// This shard's view of the placement policy; enables the placement
    /// epoch marker (see the module docs).  `None` (the default, and the
    /// single-server deployment) keeps every recovered entry.
    pub placement: Option<PlacementScope>,
}

impl StoreConfig {
    /// A store rooted at `dir` with default budgets (128 MB on disk, 8 MB
    /// segments, a 256-entry writer queue).
    pub fn at<P: Into<PathBuf>>(dir: P) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            disk_budget_bytes: 128 << 20,
            segment_bytes: 8 << 20,
            queue_depth: 256,
            placement: None,
        }
    }
}

/// A test-only fault injected into the writer's append path.  One-shot: the
/// armed fault trips on the next append and disarms itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailPoint {
    /// No fault (the production state).
    #[default]
    Disabled,
    /// Write only the first `N` bytes of the next frame, flush, then fail —
    /// a torn write, exactly what `kill -9` mid-`write` leaves behind.
    AfterBytes(usize),
    /// Write and flush the whole frame, then fail before the in-memory
    /// index records it — the entry is durable but invisible to compaction,
    /// the crash window between flush and index update.
    BeforeIndexUpdate,
}

enum Job {
    Append { full_fp: u128, frame: Vec<u8> },
    Barrier(mpsc::Sender<()>),
}

/// Handle to a shard's durable store: an `offer`-only front backed by the
/// writer thread.  Dropping the handle drains the queue and joins the
/// writer (remaining queued appends are written out).
#[derive(Debug)]
pub struct Store {
    tx: Option<SyncSender<Job>>,
    writer: Option<JoinHandle<()>>,
    counters: Arc<StoreCounters>,
    fail: Arc<Mutex<FailPoint>>,
}

/// Where a live record lives on disk (for compaction).
#[derive(Debug, Clone, Copy)]
struct LiveRef {
    seq: u64,
    offset: u64,
    len: u64,
}

impl Store {
    /// Opens (or creates) the store at `config.dir`, runs crash recovery on
    /// every segment, and returns the handle plus the recovered entries —
    /// newest version per full fingerprint, in write order — for the caller
    /// to re-validate and repopulate into its cache.
    pub fn open(config: StoreConfig) -> io::Result<(Store, Vec<StoreRecord>)> {
        let counters = Arc::new(StoreCounters::default());
        fs::create_dir_all(&config.dir)?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            if let Some(seq) = segment_seq(&entry.path()) {
                segments.push((seq, entry.path()));
            }
        }
        segments.sort_by_key(|&(seq, _)| seq);

        // Scan in sequence order; within a segment, frames are in write
        // order, so "newest version per fingerprint" is simply "last seen".
        let mut index: HashMap<u128, LiveRef> = HashMap::new();
        let mut records: Vec<(u128, StoreRecord)> = Vec::new();
        let mut total_bytes = 0u64;
        for &(seq, ref path) in &segments {
            let valid_len = scan_segment(path, seq, &counters, &mut index, &mut records)?;
            total_bytes += valid_len;
        }
        let mut seen: HashMap<u128, usize> = HashMap::new();
        let mut entries: Vec<StoreRecord> = Vec::new();
        for (fp, record) in records {
            match seen.get(&fp) {
                Some(&at) => entries[at] = record,
                None => {
                    seen.insert(fp, entries.len());
                    entries.push(record);
                }
            }
        }

        // Placement epoch check: a marker mismatch means the range map
        // moved under this durable state — drop the entries this shard no
        // longer owns and compact their frames away once the writer is up.
        let mut compact_on_start = false;
        if let Some(scope) = config.placement {
            let marker = config.dir.join("placement.epoch");
            let current = scope.epoch();
            let recorded: Option<u64> = fs::read_to_string(&marker)
                .ok()
                .and_then(|s| s.trim().parse().ok());
            match recorded {
                Some(epoch) if epoch == current => {}
                recorded => {
                    if recorded.is_some() {
                        let before = entries.len();
                        entries.retain(|r| {
                            let owned = scope.owns_structure(r.structure_fp);
                            if !owned {
                                index.remove(&r.full_fp);
                            }
                            owned
                        });
                        let dropped = (before - entries.len()) as u64;
                        if dropped > 0 {
                            counters
                                .dropped_foreign
                                .fetch_add(dropped, Ordering::Relaxed);
                            compact_on_start = true;
                        }
                    }
                    fs::write(&marker, format!("{current}\n"))?;
                }
            }
        }

        // A fresh active segment per boot: recovery never appends to an old
        // file, so a boot right after a torn write cannot interleave with
        // the damage it just truncated.
        let next_seq = segments.last().map_or(0, |&(seq, _)| seq + 1);
        let (active, active_len) = create_segment(&config.dir, next_seq)?;
        total_bytes += active_len;

        let fail = Arc::new(Mutex::new(FailPoint::Disabled));
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let mut writer = Writer {
            config,
            counters: Arc::clone(&counters),
            fail: Arc::clone(&fail),
            active,
            active_seq: next_seq,
            active_len,
            next_seq: next_seq + 1,
            index,
            total_bytes,
            compact_on_start,
        };
        let handle = std::thread::Builder::new()
            .name("bsp-store-writer".into())
            .spawn(move || writer.run(&rx))?;
        Ok((
            Store {
                tx: Some(tx),
                writer: Some(handle),
                counters,
                fail,
            },
            entries,
        ))
    }

    /// Hands one encoded frame to the writer.  Never blocks: a full queue
    /// (or a gone writer) drops the write and counts a `write_error`.
    pub fn offer(&self, full_fp: u128, frame: Vec<u8>) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(Job::Append { full_fp, frame }) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Blocks until every append offered before this call has been written
    /// and fsynced (or failed).  Control-plane only — tests and graceful
    /// shutdown; the response path never calls this.
    pub fn flush(&self) {
        let Some(tx) = &self.tx else { return };
        let (ack_tx, ack_rx) = mpsc::channel();
        if tx.send(Job::Barrier(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Arms the one-shot write-path fault (test-only; see [`FailPoint`]).
    pub fn set_fail_point(&self, point: FailPoint) {
        *self.fail.lock().unwrap_or_else(|e| e.into_inner()) = point;
    }

    /// The store's live counters (shared with the service's `STATS`).
    pub fn counters(&self) -> &Arc<StoreCounters> {
        &self.counters
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        drop(self.tx.take()); // closes the channel; the writer drains and exits
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// `seg-<seq>.log` → `seq`.
fn segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.log"))
}

/// Creates a fresh segment with its header written and synced; returns the
/// file (positioned at the end) and its current length.
fn create_segment(dir: &Path, seq: u64) -> io::Result<(File, u64)> {
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .read(true)
        .open(segment_path(dir, seq))?;
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&SEGMENT_VERSION.to_le_bytes())?;
    file.sync_data()?;
    Ok((file, SEGMENT_HEADER_BYTES))
}

/// Recovers one segment: verifies the header and every frame checksum,
/// physically truncates the file at the first torn or corrupt record,
/// records the survivors, and returns the number of valid bytes kept.
fn scan_segment(
    path: &Path,
    seq: u64,
    counters: &StoreCounters,
    index: &mut HashMap<u128, LiveRef>,
    records: &mut Vec<(u128, StoreRecord)>,
) -> io::Result<u64> {
    let bytes = fs::read(path)?;
    let header_ok = bytes.len() >= SEGMENT_HEADER_BYTES as usize
        && &bytes[..8] == SEGMENT_MAGIC
        && bytes[8..12] == SEGMENT_VERSION.to_le_bytes();
    if !header_ok {
        // The whole file is unusable; truncate it to nothing so the damage
        // is not re-reported every boot.
        counters.dropped_corrupt.fetch_add(1, Ordering::Relaxed);
        fs::OpenOptions::new().write(true).open(path)?.set_len(0)?;
        return Ok(0);
    }
    let mut offset = SEGMENT_HEADER_BYTES as usize;
    while offset < bytes.len() {
        match decode_record(&bytes[offset..]) {
            Ok((record, consumed)) => {
                let frame_len = consumed as u64;
                index.insert(
                    record.full_fp,
                    LiveRef {
                        seq,
                        offset: offset as u64,
                        len: frame_len,
                    },
                );
                records.push((record.full_fp, record));
                counters
                    .recovered_bytes
                    .fetch_add(frame_len, Ordering::Relaxed);
                offset += consumed;
            }
            Err(RecordError::Truncated)
            | Err(RecordError::ChecksumMismatch)
            | Err(RecordError::Malformed(_))
            | Err(RecordError::Unsupported(_)) => {
                // Torn tail or corruption: keep the checksum-valid prefix,
                // drop everything from here on.
                counters.dropped_corrupt.fetch_add(1, Ordering::Relaxed);
                fs::OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(offset as u64)?;
                break;
            }
        }
    }
    Ok(offset.min(bytes.len()) as u64)
}

/// The writer thread's whole state; single-threaded by construction.
struct Writer {
    config: StoreConfig,
    counters: Arc<StoreCounters>,
    fail: Arc<Mutex<FailPoint>>,
    active: File,
    active_seq: u64,
    /// Bytes written to the active segment (header included).
    active_len: u64,
    next_seq: u64,
    /// Newest on-disk location per full fingerprint.
    index: HashMap<u128, LiveRef>,
    /// Total bytes across all segment files (live + superseded + headers).
    total_bytes: u64,
    /// A placement-epoch change disowned recovered frames: compact once
    /// before serving appends, so the foreign frames are physically gone.
    compact_on_start: bool,
}

impl Writer {
    fn run(&mut self, rx: &Receiver<Job>) {
        if self.compact_on_start {
            self.compact();
        }
        while let Ok(job) = rx.recv() {
            match job {
                Job::Append { full_fp, frame } => self.append(full_fp, &frame),
                Job::Barrier(ack) => {
                    let _ = self.active.sync_data();
                    let _ = ack.send(());
                }
            }
        }
        let _ = self.active.sync_data();
    }

    fn append(&mut self, full_fp: u128, frame: &[u8]) {
        if self.active_len > SEGMENT_HEADER_BYTES
            && self.active_len + frame.len() as u64 > self.config.segment_bytes
        {
            self.roll();
        }
        let fail = {
            let mut guard = self.fail.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        match fail {
            FailPoint::AfterBytes(n) if n < frame.len() => {
                // A torn write: part of the frame reaches the disk, then the
                // "crash".  The tail of this segment is now unreadable, so
                // later appends go to a fresh segment — recovery truncates
                // the torn frame without losing anything written after it.
                let wrote = self.active.write_all(&frame[..n]).is_ok();
                let _ = self.active.sync_data();
                if wrote {
                    self.active_len += n as u64;
                    self.total_bytes += n as u64;
                }
                self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
                self.roll();
                return;
            }
            FailPoint::AfterBytes(_) | FailPoint::BeforeIndexUpdate => {
                // The frame is fully written and flushed (durable — recovery
                // will find it), but the fault fires before the index
                // records it, so compaction would not preserve it.
                if self.write_frame(frame) {
                    self.counters.appended.fetch_add(1, Ordering::Relaxed);
                }
                self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FailPoint::Disabled => {}
        }
        if self.write_frame(frame) {
            self.counters.appended.fetch_add(1, Ordering::Relaxed);
            self.index.insert(
                full_fp,
                LiveRef {
                    seq: self.active_seq,
                    offset: self.active_len - frame.len() as u64,
                    len: frame.len() as u64,
                },
            );
            if self.total_bytes > self.config.disk_budget_bytes {
                self.compact();
            }
        } else {
            // The segment may hold a partial frame now; isolate it exactly
            // like an injected torn write.
            self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            self.roll();
        }
    }

    /// Appends and flushes one frame to the active segment, maintaining the
    /// byte accounting.  Returns whether the full frame reached the file.
    fn write_frame(&mut self, frame: &[u8]) -> bool {
        match self.active.write_all(frame) {
            Ok(()) => {
                let _ = self.active.flush();
                self.active_len += frame.len() as u64;
                self.total_bytes += frame.len() as u64;
                true
            }
            Err(_) => false,
        }
    }

    /// Starts a fresh active segment (fsyncing the old one).  On failure the
    /// old segment stays active — later appends will keep reporting errors.
    fn roll(&mut self) {
        let _ = self.active.sync_data();
        let seq = self.next_seq;
        // Burn the sequence number either way: a half-created segment file
        // must not make every later roll collide with it.
        self.next_seq += 1;
        match create_segment(&self.config.dir, seq) {
            Ok((file, len)) => {
                self.active = file;
                self.active_seq = seq;
                self.active_len = len;
                self.total_bytes += len;
            }
            Err(_) => {
                self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Rewrites the live entries (newest first, oldest dropped beyond the
    /// disk budget) into fresh segments and deletes every old one.  On any
    /// I/O failure the old segments are kept and the half-written new ones
    /// removed — compaction is all-or-nothing.
    fn compact(&mut self) {
        let mut live: Vec<(u128, LiveRef)> = self.index.iter().map(|(&fp, &r)| (fp, r)).collect();
        live.sort_by_key(|&(_, r)| (r.seq, r.offset));
        // Keep newest-first while under budget; always keep at least the
        // newest entry so a single oversized record cannot empty the store.
        let mut kept_bytes = 0u64;
        let mut first_kept = live.len();
        for i in (0..live.len()).rev() {
            let len = live[i].1.len;
            if first_kept < live.len() && kept_bytes + len > self.config.disk_budget_bytes {
                break;
            }
            kept_bytes += len;
            first_kept = i;
        }
        let kept = &live[first_kept..];

        let mut new_seqs: Vec<u64> = Vec::new();
        match self.rewrite(kept, &mut new_seqs) {
            Ok(state) => {
                // The new segments are synced; every older file (live,
                // superseded, or torn) can go.
                if let Ok(dir) = fs::read_dir(&self.config.dir) {
                    for entry in dir.flatten() {
                        if let Some(seq) = segment_seq(&entry.path()) {
                            if seq < state.first_seq {
                                let _ = fs::remove_file(entry.path());
                            }
                        }
                    }
                }
                self.index = state.index;
                self.active = state.active;
                self.active_seq = state.active_seq;
                self.active_len = state.active_len;
                self.total_bytes = state.total_bytes;
                self.counters.compactions.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // All-or-nothing: drop the half-written new segments, keep
                // the old ones (and the old index) untouched.
                for seq in new_seqs {
                    let _ = fs::remove_file(segment_path(&self.config.dir, seq));
                }
                self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copies `kept` frames (in age order) into fresh segments, recording
    /// each created sequence number in `new_seqs` so a failure can be
    /// cleaned up by the caller.
    fn rewrite(
        &mut self,
        kept: &[(u128, LiveRef)],
        new_seqs: &mut Vec<u64>,
    ) -> io::Result<NewState> {
        let mut sources: BTreeMap<u64, File> = BTreeMap::new();
        let first_seq = self.next_seq;
        self.next_seq += 1;
        let (mut file, mut len) = create_segment(&self.config.dir, first_seq)?;
        new_seqs.push(first_seq);
        let mut index = HashMap::new();
        let mut total = len;
        let mut active_seq = first_seq;
        let mut buf = Vec::new();
        for &(fp, r) in kept {
            if len > SEGMENT_HEADER_BYTES && len + r.len > self.config.segment_bytes {
                file.sync_data()?;
                let seq = self.next_seq;
                self.next_seq += 1;
                let (f, l) = create_segment(&self.config.dir, seq)?;
                new_seqs.push(seq);
                file = f;
                len = l;
                total += l;
                active_seq = seq;
            }
            let src = match sources.entry(r.seq) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(File::open(segment_path(&self.config.dir, r.seq))?)
                }
            };
            buf.resize(r.len as usize, 0);
            src.seek(SeekFrom::Start(r.offset))?;
            src.read_exact(&mut buf)?;
            // Paranoia: re-verify the frame before copying; silent disk rot
            // must not be rewritten as a live entry.
            if !frame_checksum_ok(&buf) {
                self.counters
                    .dropped_corrupt
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            file.write_all(&buf)?;
            index.insert(
                fp,
                LiveRef {
                    seq: active_seq,
                    offset: len,
                    len: r.len,
                },
            );
            len += r.len;
            total += r.len;
        }
        file.sync_data()?;
        Ok(NewState {
            index,
            active: file,
            active_seq,
            active_len: len,
            total_bytes: total,
            first_seq,
        })
    }
}

/// The writer state produced by a successful compaction rewrite.
struct NewState {
    index: HashMap<u128, LiveRef>,
    active: File,
    active_seq: u64,
    active_len: u64,
    total_bytes: u64,
    /// The first new sequence number: every segment below it is obsolete.
    first_seq: u64,
}

/// Verifies a complete frame's length header and checksum without decoding
/// the body.
fn frame_checksum_ok(frame: &[u8]) -> bool {
    if frame.len() < FRAME_HEADER_BYTES {
        return false;
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
    if frame.len() != FRAME_HEADER_BYTES + len {
        return false;
    }
    let checksum = u64::from_le_bytes(frame[4..12].try_into().unwrap());
    let mut hasher = bsp_model::Fnv64::new();
    hasher.write_bytes(&frame[FRAME_HEADER_BYTES..]);
    hasher.finish() == checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::record::{encode_record, StoreRecord};
    use bsp_model::{Assignment, Machine};

    /// A fresh, empty temp directory unique to `name` within this process.
    fn temp_store_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bsp-store-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(fp: u128, payload: usize) -> StoreRecord {
        StoreRecord {
            full_fp: fp,
            structure_fp: (fp as u64).wrapping_mul(3),
            cost: 9,
            machine: Machine::uniform(2, 1, 1),
            dag_bytes: vec![b'x'; payload],
            assignment: Assignment {
                proc: vec![0, 1],
                superstep: vec![0, 0],
            },
        }
    }

    fn frame(fp: u128, payload: usize) -> Vec<u8> {
        let mut out = Vec::new();
        encode_record(&record(fp, payload), &mut out).unwrap();
        out
    }

    #[test]
    fn offered_entries_survive_a_close_and_reopen() {
        let dir = temp_store_dir("reopen");
        {
            let (store, entries) = Store::open(StoreConfig::at(&dir)).unwrap();
            assert!(entries.is_empty());
            for fp in 0..5u128 {
                store.offer(fp, frame(fp, 16));
            }
            store.flush();
            assert_eq!(store.counters().snapshot().appended, 5);
        } // drop drains and joins the writer
        let (store, entries) = Store::open(StoreConfig::at(&dir)).unwrap();
        let fps: Vec<u128> = entries.iter().map(|r| r.full_fp).collect();
        assert_eq!(fps, vec![0, 1, 2, 3, 4]);
        assert_eq!(entries[3], record(3, 16));
        let snap = store.counters().snapshot();
        assert_eq!(snap.dropped_corrupt, 0);
        assert!(snap.recovered_bytes > 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_newest_version_of_a_fingerprint_wins() {
        let dir = temp_store_dir("supersede");
        {
            let (store, _) = Store::open(StoreConfig::at(&dir)).unwrap();
            store.offer(7, frame(7, 10));
            store.offer(8, frame(8, 10));
            store.offer(7, frame(7, 99)); // supersedes the first write
            store.flush();
        }
        let (_store, entries) = Store::open(StoreConfig::at(&dir)).unwrap();
        assert_eq!(entries.len(), 2);
        let seven = entries.iter().find(|r| r.full_fp == 7).unwrap();
        assert_eq!(seven.dag_bytes.len(), 99);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_all_are_recovered() {
        let dir = temp_store_dir("roll");
        let config = StoreConfig {
            segment_bytes: 256, // a few frames per segment
            ..StoreConfig::at(&dir)
        };
        {
            let (store, _) = Store::open(config.clone()).unwrap();
            for fp in 0..20u128 {
                store.offer(fp, frame(fp, 32));
            }
            store.flush();
        }
        let segment_files = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| segment_seq(&e.as_ref().unwrap().path()).is_some())
            .count();
        assert!(segment_files > 2, "writes must have rolled segments");
        let (_store, entries) = Store::open(config).unwrap();
        assert_eq!(entries.len(), 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exceeding_the_disk_budget_compacts_away_superseded_frames() {
        let dir = temp_store_dir("compact");
        let one_frame = frame(0, 32).len() as u64;
        let config = StoreConfig {
            segment_bytes: one_frame * 4,
            disk_budget_bytes: one_frame * 8,
            ..StoreConfig::at(&dir)
        };
        {
            let (store, _) = Store::open(config.clone()).unwrap();
            // Rewrite the same 3 fingerprints over and over: the live set
            // stays small, the superseded bytes grow past the budget.
            for round in 0..20u128 {
                for fp in 0..3u128 {
                    store.offer(fp, frame(fp, 32 + (round as usize % 2)));
                }
            }
            store.flush();
            let snap = store.counters().snapshot();
            assert!(snap.compactions >= 1, "budget overflow must compact");
            assert_eq!(snap.write_errors, 0);
        }
        let disk: u64 = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        assert!(
            disk <= config.disk_budget_bytes + config.segment_bytes,
            "disk usage {disk} stayed near the budget"
        );
        let (_store, entries) = Store::open(config).unwrap();
        assert_eq!(entries.len(), 3, "every live fingerprint survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_write_loses_only_the_torn_frame() {
        let dir = temp_store_dir("torn");
        {
            let (store, _) = Store::open(StoreConfig::at(&dir)).unwrap();
            store.offer(1, frame(1, 16));
            store.flush();
            store.set_fail_point(FailPoint::AfterBytes(7));
            store.offer(2, frame(2, 16)); // torn mid-frame
            store.offer(3, frame(3, 16)); // lands in the rolled segment
            store.flush();
            assert_eq!(store.counters().snapshot().write_errors, 1);
        }
        let (store, entries) = Store::open(StoreConfig::at(&dir)).unwrap();
        let fps: Vec<u128> = entries.iter().map(|r| r.full_fp).collect();
        assert_eq!(
            fps,
            vec![1, 3],
            "the torn frame is gone, its neighbours are not"
        );
        assert_eq!(store.counters().snapshot().dropped_corrupt, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_flushed_frame_survives_a_missed_index_update() {
        let dir = temp_store_dir("before-index");
        {
            let (store, _) = Store::open(StoreConfig::at(&dir)).unwrap();
            store.offer(1, frame(1, 16));
            store.set_fail_point(FailPoint::BeforeIndexUpdate);
            store.offer(2, frame(2, 16)); // durable, but unindexed
            store.flush();
            let snap = store.counters().snapshot();
            assert_eq!(snap.appended, 2, "the frame did reach the disk");
            assert_eq!(snap.write_errors, 1);
        }
        let (_store, entries) = Store::open(StoreConfig::at(&dir)).unwrap();
        let fps: Vec<u128> = entries.iter().map(|r| r.full_fp).collect();
        assert_eq!(fps, vec![1, 2], "fully flushed means recovered");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_epoch_change_drops_and_compacts_foreign_structure_entries() {
        let dir = temp_store_dir("epoch");
        // fp 1 → small structure key (owned by shard 0 of 2); u64::MAX →
        // structure near the top of the key space (owned by shard 1 of 2).
        let owned_fp = 1u128;
        let foreign_fp = u128::from(u64::MAX);
        let one_shard = PlacementScope {
            shards: 1,
            shard: 0,
        };
        let resharded = PlacementScope {
            shards: 2,
            shard: 0,
        };
        assert!(resharded.owns_structure(record(owned_fp, 16).structure_fp));
        assert!(!resharded.owns_structure(record(foreign_fp, 16).structure_fp));
        {
            let config = StoreConfig {
                placement: Some(one_shard),
                ..StoreConfig::at(&dir)
            };
            let (store, _) = Store::open(config).unwrap();
            store.offer(owned_fp, frame(owned_fp, 16));
            store.offer(foreign_fp, frame(foreign_fp, 16));
            store.flush();
        }
        // Same epoch: everything is kept, no marker churn.
        {
            let config = StoreConfig {
                placement: Some(one_shard),
                ..StoreConfig::at(&dir)
            };
            let (store, entries) = Store::open(config).unwrap();
            assert_eq!(entries.len(), 2);
            assert_eq!(store.counters().snapshot().dropped_foreign, 0);
        }
        // Resharded: the foreign-structure entry is dropped and its frame
        // compacted away.
        let config = StoreConfig {
            placement: Some(resharded),
            ..StoreConfig::at(&dir)
        };
        {
            let (store, entries) = Store::open(config.clone()).unwrap();
            let fps: Vec<u128> = entries.iter().map(|r| r.full_fp).collect();
            assert_eq!(fps, vec![owned_fp]);
            let snap = store.counters().snapshot();
            assert_eq!(snap.dropped_foreign, 1);
            store.flush(); // the startup compaction precedes this barrier
            assert!(store.counters().snapshot().compactions >= 1);
        }
        // The next open under the new epoch sees only the owned entry on
        // disk — the foreign frame is physically gone, not just filtered.
        let (store, entries) = Store::open(config).unwrap();
        assert_eq!(entries.len(), 1);
        let snap = store.counters().snapshot();
        assert_eq!(snap.dropped_foreign, 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_garbled_segment_header_drops_the_file_not_the_store() {
        let dir = temp_store_dir("bad-header");
        let seg0 = {
            let (store, _) = Store::open(StoreConfig::at(&dir)).unwrap();
            store.offer(1, frame(1, 16));
            store.flush();
            drop(store);
            segment_path(&dir, 0)
        };
        let mut bytes = fs::read(&seg0).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&seg0, bytes).unwrap();
        let (store, entries) = Store::open(StoreConfig::at(&dir)).unwrap();
        assert!(entries.is_empty());
        assert_eq!(store.counters().snapshot().dropped_corrupt, 1);
        assert_eq!(
            fs::metadata(&seg0).unwrap().len(),
            0,
            "truncated, not re-scanned"
        );
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}
