//! Lock-free latency histograms for the serving layer.
//!
//! A [`LatencyHistogram`] is a fixed array of microsecond buckets backed by
//! `AtomicU64` counters: recording is one atomic increment (no locks, **no
//! allocation** — the exact-cache-hit response path records into these), and
//! quantiles are read by walking the cumulative counts.
//!
//! The bucket layout is HDR-style: exact buckets below 32 µs, then four
//! sub-buckets per power of two (bucket `[2^o + s·2^(o-2), 2^o + (s+1)·2^(o-2))`
//! for `s ∈ 0..4`), so quantile answers carry at most ~25 % resolution
//! error across the full `u64` range — accurate enough that p50/p99 ratios
//! between fast (cache-hit) and slow (cold-run) populations are meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters of the durable schedule store ([`crate::store`]), updated
/// lock-free from the store's writer thread and its startup recovery scan,
/// and snapshotted into [`StoreStats`] for the `STATS` wire line.
#[derive(Debug, Default)]
pub struct StoreCounters {
    /// Entries recovered at startup and repopulated into the cache.
    pub loaded: AtomicU64,
    /// Bytes of checksum-valid records recovered at startup.
    pub recovered_bytes: AtomicU64,
    /// Torn or corrupt records dropped by recovery scans (each truncation or
    /// checksum failure counts once).
    pub dropped_corrupt: AtomicU64,
    /// Segment compactions run (disk budget exceeded; live entries rewritten,
    /// superseded ones dropped).
    pub compactions: AtomicU64,
    /// Failed or refused writes: I/O errors, injected faults, and appends
    /// dropped because the bounded writer queue was full.
    pub write_errors: AtomicU64,
    /// Records durably appended (written and flushed) — not part of the
    /// required counter set, but the fault-injection harness needs a lower
    /// bound on the durable set observable over the wire.
    pub appended: AtomicU64,
    /// Records dropped on open because a placement-epoch change moved their
    /// structure key to another shard (re-sharding, policy version bump).
    pub dropped_foreign: AtomicU64,
    /// Recovered records adopted although this shard is not their
    /// structure-range owner (load-steered or failed-over entries).  A
    /// count, not an error: affinity may legitimately home a family off its
    /// range owner within an epoch.
    pub adopted_foreign: AtomicU64,
}

impl StoreCounters {
    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            loaded: self.loaded.load(Ordering::Relaxed),
            recovered_bytes: self.recovered_bytes.load(Ordering::Relaxed),
            dropped_corrupt: self.dropped_corrupt.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            appended: self.appended.load(Ordering::Relaxed),
            dropped_foreign: self.dropped_foreign.load(Ordering::Relaxed),
            adopted_foreign: self.adopted_foreign.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`StoreCounters`]; all-zero when the service runs without a
/// durable store.  Summed across shards by the router's `STATS` aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries recovered at startup and repopulated into the cache.
    pub loaded: u64,
    /// Bytes of checksum-valid records recovered at startup.
    pub recovered_bytes: u64,
    /// Torn or corrupt records dropped by recovery scans.
    pub dropped_corrupt: u64,
    /// Segment compactions run.
    pub compactions: u64,
    /// Failed or refused writes.
    pub write_errors: u64,
    /// Records durably appended (written and flushed).
    pub appended: u64,
    /// Records dropped on open by a placement-epoch change.
    pub dropped_foreign: u64,
    /// Foreign-structure records adopted anyway (steered/failed-over).
    pub adopted_foreign: u64,
}

/// Values below this are counted in exact 1 µs buckets.
const LINEAR: u64 = 32;
/// 32 linear buckets + 4 sub-buckets per octave for octaves 5..=63.
const BUCKETS: usize = LINEAR as usize + 59 * 4;

/// A histogram of request latencies (see the module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(micros: u64) -> usize {
        if micros < LINEAR {
            micros as usize
        } else {
            let octave = 63 - u64::from(micros.leading_zeros()); // >= 5
            let sub = (micros >> (octave - 2)) & 3;
            (LINEAR + (octave - 5) * 4 + sub) as usize
        }
    }

    /// What quantiles report for bucket `idx`: the exact value for the 1 µs
    /// linear buckets (bucket `i` holds only observations of exactly `i` µs,
    /// so reporting `i + 1` would bias every sub-32 µs quantile upward), and
    /// the exclusive upper edge for the quarter-octave buckets (conservative
    /// within the ~25 % resolution).
    fn upper_edge(idx: usize) -> u64 {
        if idx < LINEAR as usize {
            idx as u64
        } else {
            let rel = (idx - LINEAR as usize) as u64;
            let octave = 5 + rel / 4;
            let sub = rel % 4;
            // Saturates only in the very top octave (2^63 + 2^63).
            (1u64 << octave).saturating_add((sub + 1) << (octave - 2))
        }
    }

    /// Inclusive lower edge of bucket `idx` (the smallest value the bucket
    /// can hold).  Used for in-bucket quantile interpolation.
    fn lower_edge(idx: usize) -> u64 {
        if idx < LINEAR as usize {
            idx as u64
        } else {
            let rel = (idx - LINEAR as usize) as u64;
            let octave = 5 + rel / 4;
            let sub = rel % 4;
            (1u64 << octave) + (sub << (octave - 2))
        }
    }

    /// Records one observation.  Lock- and allocation-free.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Adds every observation of `other` into `self` (used to pool the
    /// per-client histograms of the bench harness).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total_micros.fetch_add(
            other.total_micros.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded latencies in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.total_micros.load(Ordering::Relaxed)
    }

    /// Visits every non-empty bucket as `(upper_edge_micros, count)`, in
    /// ascending edge order.  This is the wire shape of the histogram: the
    /// Prometheus exposition renders these as cumulative `le` buckets, and
    /// [`LatencyHistogram::add_bucket_with_le`] reconstructs them on the
    /// receiving side.
    pub fn for_each_bucket<F: FnMut(u64, u64)>(&self, mut f: F) {
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                f(Self::upper_edge(i), n);
            }
        }
    }

    /// Adds `n` observations to the bucket whose reported upper edge is `le`
    /// (as produced by [`LatencyHistogram::for_each_bucket`] on the far
    /// side).  Every bucket's edge maps back to itself — linear edges are the
    /// bucket's exact value, and `le - 1` lies strictly inside a
    /// quarter-octave bucket — so shipping a histogram over the wire and
    /// re-adding it is lossless.  Does not touch the latency sum; pair with
    /// [`LatencyHistogram::add_total_micros`].
    pub fn add_bucket_with_le(&self, le: u64, n: u64) {
        let representative = if le < LINEAR { le } else { le - 1 };
        self.buckets[Self::bucket_of(representative)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the recorded latency sum (the `_sum` series of the wire
    /// exposition).
    pub fn add_total_micros(&self, micros: u64) {
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.total_micros.load(Ordering::Relaxed) as f64 / count as f64
    }

    /// Reported value (µs) of quantile `q ∈ [0, 1]`: exact below 32 µs,
    /// rank-interpolated inside the quarter-octave bucket above.  0 when the
    /// histogram is empty.
    ///
    /// The interpolation is a pure function of the bucket counts — the rank's
    /// position within its bucket is mapped linearly onto the bucket's
    /// `(lower, upper]` edge span — so two histograms holding the same
    /// observations report the same quantiles whether the observations were
    /// recorded directly or pooled via [`LatencyHistogram::merge_from`] /
    /// the wire exposition.  (The old edge-only answer already had that
    /// property, but jumped by a full ~25 % bucket width at every sub-bucket
    /// boundary; a single observation per bucket still reports the
    /// conservative upper edge.)
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                if i < LINEAR as usize {
                    // Linear buckets hold exactly one value: report it.
                    return i as u64;
                }
                let lo = Self::lower_edge(i);
                let hi = Self::upper_edge(i);
                let pos = rank - seen; // 1..=in_bucket
                let span = u128::from(hi - lo);
                return lo + (span * u128::from(pos) / u128::from(in_bucket)) as u64;
            }
            seen += in_bucket;
        }
        u64::MAX
    }

    /// Convenience: `(p50, p99)` in microseconds.
    pub fn p50_p99_micros(&self) -> (u64, u64) {
        (self.quantile_micros(0.50), self.quantile_micros(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_then_quarter_octave() {
        // Linear range: one bucket per microsecond.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(31), 31);
        // 32 starts the first octave's first sub-bucket [32, 40).
        assert_eq!(LatencyHistogram::bucket_of(32), 32);
        assert_eq!(LatencyHistogram::bucket_of(39), 32);
        assert_eq!(LatencyHistogram::bucket_of(40), 33);
        // Every bucket's reported value bounds its own values from above
        // (exactly for linear buckets, conservatively for octave buckets).
        for v in [0u64, 5, 31, 32, 100, 1024, 5000, 1 << 30, u64::MAX] {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(LatencyHistogram::upper_edge(idx) >= v || v == u64::MAX);
            if idx > 0 {
                assert!(LatencyHistogram::upper_edge(idx - 1) <= v);
            }
        }
        // Linear buckets are exact: the reported value IS the observation.
        for v in 0..LINEAR {
            assert_eq!(
                LatencyHistogram::upper_edge(LatencyHistogram::bucket_of(v)),
                v
            );
        }
    }

    #[test]
    fn exact_buckets_report_exact_values() {
        // Regression: a population of all-10 µs observations must report
        // p50 = p99 = 10 µs, not 11 (the old `idx + 1` upper edge).
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(10));
        }
        assert_eq!(h.p50_p99_micros(), (10, 10));
        assert_eq!(h.quantile_micros(1.0), 10);
    }

    #[test]
    fn quantiles_bound_the_observations() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        let (p50, p99) = h.p50_p99_micros();
        // p50 = 50 µs falls in [48, 56) -> 56; p99 = 5000 in [4096, 5120) -> 5120.
        assert_eq!(p50, 56);
        assert_eq!(p99, 5120);
        assert!(h.mean_micros() > 0.0);
    }

    #[test]
    fn merge_pools_observations() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for micros in [10u64, 20] {
            a.record(Duration::from_micros(micros));
        }
        for micros in [30u64, 40, 5000] {
            b.record(Duration::from_micros(micros));
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.quantile_micros(1.0), 5120);
        assert_eq!(a.quantile_micros(0.2), 10);
    }

    #[test]
    fn quantiles_interpolate_within_octave_buckets() {
        // 4 observations in one quarter-octave bucket [1024, 1280) must
        // spread the quantile answers across the bucket instead of jumping
        // to the upper edge for all of them.
        let h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(Duration::from_micros(1100));
        }
        // Ranks 1..=4 map to lo + span·pos/4 = 1088, 1152, 1216, 1280.
        assert_eq!(h.quantile_micros(0.25), 1088);
        assert_eq!(h.quantile_micros(0.50), 1152);
        assert_eq!(h.quantile_micros(0.75), 1216);
        assert_eq!(h.quantile_micros(1.00), 1280);
    }

    #[test]
    fn merged_and_single_source_quantiles_are_identical() {
        // Satellite: recording a population directly and recording it split
        // across histograms then pooling must answer every quantile
        // identically — including at sub-bucket boundaries.
        let single = LatencyHistogram::new();
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let population: Vec<u64> = (0..200).map(|i| (i * 37 + 3) % 9000).collect();
        for (i, &micros) in population.iter().enumerate() {
            single.record(Duration::from_micros(micros));
            let half = if i % 2 == 0 { &a } else { &b };
            half.record(Duration::from_micros(micros));
        }
        a.merge_from(&b);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(single.quantile_micros(q), a.quantile_micros(q), "q={q}");
        }
    }

    #[test]
    fn wire_bucket_round_trip_is_lossless() {
        // for_each_bucket → add_bucket_with_le must reproduce the histogram
        // bucket for bucket (the METRICS merge path in the router).
        let src = LatencyHistogram::new();
        for micros in [0u64, 1, 31, 32, 39, 40, 1100, 5000, 1 << 40, u64::MAX] {
            src.record(Duration::from_micros(micros));
        }
        let dst = LatencyHistogram::new();
        src.for_each_bucket(|le, n| dst.add_bucket_with_le(le, n));
        dst.add_total_micros(src.total_micros());
        assert_eq!(dst.count(), src.count());
        assert_eq!(dst.total_micros(), src.total_micros());
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(dst.quantile_micros(q), src.quantile_micros(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }
}
