//! # bsp-serve
//!
//! A long-lived scheduling service over the `realistic-sched` pipeline —
//! the serving layer that turns the one-shot reproduction of
//! *"Efficient Multi-Processor Scheduling in Increasingly Realistic Models"*
//! (SPAA 2024) into a system that admits requests, reuses work across them,
//! and bounds latency:
//!
//! * [`protocol`] — a line-delimited text protocol over loopback TCP
//!   (`std::net`, dependency-free) that reuses the paper's hyperDAG text
//!   format for DAG payloads; all malformed input surfaces as a typed
//!   [`ServeError`], never a panic.
//! * [`cache`] — a content-addressed schedule cache keyed by the
//!   allocation-free fingerprints of [`bsp_model::fingerprint`]: exact hits
//!   return the cached [`bsp_model::BspSchedule`] in `O(1)` *without heap
//!   allocation*; near hits (same structure, different node weights) hand
//!   out a precedence-feasible seed.  LRU eviction under a byte budget,
//!   hit/miss/warm counters.
//! * [`service`] — the request lifecycle: fingerprint → cache → solve.
//!   Cold requests run the pipeline; warm requests seed the hill-climbing
//!   search with the cached assignment (PR 2's warm-start machinery reused
//!   across requests).  Every solve runs under a [`bsp_sched::CancelToken`]
//!   combining the request **deadline** with the service shutdown token, so
//!   a request always returns its best-so-far *valid* schedule in time.
//! * [`server`] — the **pipelined** TCP layer: per-connection reader/writer
//!   threads around a bounded request-level job queue drained by a worker
//!   pool, so any number of id-tagged requests may be in flight per
//!   connection and completions return **out of order**; per-outcome
//!   latency histograms ([`metrics`]) and graceful shutdown.
//! * [`client`] — the blocking serial [`Client`] and the windowed
//!   [`PipelinedClient`] (`submit`/`recv`), both with the transparent
//!   `FP <hex>` content-addressed replay fast path.
//! * [`placement`] — the ownership policy: the **only** code that maps a
//!   request key to a shard.  A structure-key range map with a sticky
//!   affinity directory keeps warm structural families on one shard, a
//!   load-aware cold path steers first sightings to the least-loaded shard
//!   (hysteretic, falls back to range ownership on stale scrapes), and
//!   [`placement::PlacementScope`] lets each shard's store and adoption
//!   path answer "do I own this key?" with the same map.
//! * [`router`] — `bsp_router`: a placement-driven router fronting N
//!   `bsp_serve` shard processes.  Requests and `FP` replays consult the
//!   shared [`placement::Placement`] policy and dispatch onto multiplexed
//!   per-shard backend connections; a dead shard's pending requests are
//!   re-run on its placement successor (content addressing makes the
//!   re-run safe), and `STATS` / `METRICS` aggregate across shards by
//!   merging histogram buckets.
//! * [`obs`] — the observability layer: a [`obs::MetricsRegistry`] of
//!   named, labeled series rendered as Prometheus-style text (`METRICS`
//!   verb), mergeable [`obs::MetricsSnapshot`]s for router aggregation, and
//!   allocation-free request tracing ([`obs::SpanSet`],
//!   [`obs::TraceJournal`], `TRACE <id>` verb, `STATS SLOW` slow log).
//!
//! ## Quickstart
//!
//! ```
//! use bsp_serve::{Client, RequestOptions, Server, ServerConfig};
//! use bsp_model::{Dag, Machine};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())
//!     .unwrap()
//!     .spawn()
//!     .unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! let dag = Dag::from_edge_list_unit_weights(3, &[(0, 1), (1, 2)]).unwrap();
//! let machine = Machine::uniform(4, 1, 2);
//! let options = RequestOptions::new().with_deadline(Duration::from_millis(200));
//! let response = client.schedule(&dag, &machine, &options).unwrap();
//! assert!(response.schedule.validate(&dag, &machine).is_ok());
//!
//! drop(client);
//! server.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod metrics;
pub mod obs;
pub mod placement;
pub mod protocol;
pub mod router;
pub mod server;
pub mod service;
pub mod store;

pub use cache::{schedule_footprint, CacheStats, ScheduleCache};
pub use client::{Client, Completion, PipelinedClient};
pub use metrics::{LatencyHistogram, StoreCounters, StoreStats};
pub use obs::{
    MetricsRegistry, MetricsSnapshot, SpanRec, SpanSet, TraceIdGen, TraceJournal, TraceRecord,
};
pub use placement::{Decision, LoadView, Placement, PlacementScope};
pub use protocol::{
    Mode, Reply, RequestOptions, ScheduleRequest, ScheduleResponse, ScheduleSource, ServeError,
    SlowEntry, WireSpan, WireTrace,
};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{ScheduleService, ServeReply, ServiceConfig, ServiceStats};
pub use store::{FailPoint, Store, StoreConfig};
