//! The loopback TCP server: pipelined connections feeding a request-level
//! worker pool.
//!
//! ## Threading model
//!
//! One **acceptor** thread takes connections off the listener and spawns a
//! per-connection **reader** thread (bounded by
//! [`ServerConfig::max_connections`]; beyond it a connection is answered
//! with `ERR 0 busy ...` and dropped).  The reader parses incoming messages
//! and pushes each scheduling request as a *job* into a bounded shared
//! queue — so a client may have **many id-tagged requests in flight on one
//! connection**.  `N` **worker** threads drain the queue (in batches of up
//! to [`ServerConfig::admission_batch`] jobs per lock acquisition, load
//! balanced across workers) and hand each finished response to the owning
//! connection's **writer** thread over a channel; since several workers can
//! be solving jobs of the same connection concurrently, responses complete
//! **out of order** and the id tags are what lets the client match them up
//! (see [`crate::PipelinedClient`]).  Cheap verbs (`PING`, `STATS`) are
//! answered by the reader directly, also through the writer channel so wire
//! frames never interleave.
//!
//! When the job queue is full the request is refused with `ERR <id> busy`
//! (admission control instead of unbounded buffering); the connection stays
//! usable.
//!
//! All request handling goes through the shared [`ScheduleService`], so the
//! cache and the latency histograms are global across workers.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] stops admission, fires the service's
//! [`bsp_sched::CancelToken`] (in-flight anytime solves return their
//! best-so-far schedule promptly), shuts the connection sockets down to
//! unblock their readers, lets the workers drain the remaining jobs (refused
//! with `shutting-down`), and joins every thread.

use crate::metrics::LatencyHistogram;
use crate::obs::{SpanSet, TraceIdGen, TraceJournal, TraceRecord};
use crate::protocol::{
    encode_error, encode_metrics_reply, encode_response_parts, encode_slow_reply,
    encode_trace_reply, read_incoming, Incoming, ScheduleRequest, ServeError, WireTrace,
};
use crate::service::{ScheduleService, ServiceConfig, ServiceStats};
use crate::store::StoreConfig;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead as _, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Capacity of the recent-trace ring ([`TraceJournal`]): every request is
/// traced, so this bounds how far back `TRACE <id>` can look.
const TRACE_RING_CAP: usize = 256;

/// Worst-N slow-log capacity (`STATS SLOW`).
const SLOW_LOG_CAP: usize = 16;

/// Configuration of the TCP serving layer.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Pending-request (job) queue capacity; requests beyond it are refused
    /// with a per-request `busy` error.  This bounds the total in-flight
    /// pipelined work across all connections.
    pub queue_capacity: usize,
    /// Maximum concurrently served connections; further connections are
    /// refused with `ERR 0 busy`.
    pub max_connections: usize,
    /// Maximum jobs a worker drains per queue-lock acquisition (jobs are
    /// also load balanced across workers, so a short queue is never drained
    /// into one worker).
    pub admission_batch: usize,
    /// A connection idle for this long is closed (also bounds how long
    /// shutdown can wait for a reader stuck on a silent peer).
    pub idle_timeout: Duration,
    /// Per-request solve-thread budget handed to the service.  `0` (the
    /// default) derives it from the host: `max(1, host_cores / workers)`, so
    /// `workers × solve-threads` never oversubscribes the machine — the
    /// multilevel ratio portfolio and the pipeline's init-branch fan-out
    /// previously spread to `available_parallelism` *per worker*.  A nonzero
    /// value overrides the derivation (it is passed through verbatim).
    pub solve_threads: usize,
    /// Configuration of the underlying [`ScheduleService`].  Its
    /// `solve_threads` is overwritten with the derived per-request budget
    /// (see [`ServerConfig::solve_threads`]).
    pub service: ServiceConfig,
    /// Directory of the durable schedule store ([`crate::store`]); `None`
    /// (the default) serves memory-only.  Shorthand for setting
    /// [`ServiceConfig::store`] with default budgets — an explicit
    /// `service.store` wins over this field.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_connections: 128,
            admission_batch: 8,
            idle_timeout: Duration::from_secs(30),
            solve_threads: 0,
            service: ServiceConfig::default(),
            store_dir: None,
        }
    }
}

impl ServerConfig {
    /// The per-request thread budget this configuration resolves to: the
    /// explicit `solve_threads`, or the host's cores split evenly across the
    /// workers.
    pub fn effective_solve_threads(&self) -> usize {
        if self.solve_threads != 0 {
            return self.solve_threads;
        }
        let cores = bsp_sched::resolve_threads(0);
        // Shares below the parallel driver's break-even run serial solves:
        // a 2-lane speculative search loses to the serial driver, so e.g.
        // 8 cores / 4 workers budgets 1, not 2 (the budget is a cap).
        bsp_sched::parallel_budget(cores / self.workers.max(1))
    }
}

/// One unit of work for the pool: a request plus the channel of the writer
/// that must carry its response.
struct Job {
    kind: JobKind,
    /// The request's trace id: carried in on `OPTION trace` (the router
    /// assigns one when sharded), minted here otherwise.  Never 0.
    trace: u64,
    /// When the job entered the queue; the worker derives the queue-wait
    /// span and the `bsp_queue_wait_micros` histogram sample from it.
    enqueued: Instant,
    reply: Sender<String>,
    /// The owning connection's in-flight counter; decremented once the
    /// response (or error) has been handed to the writer, so the reader can
    /// tell a quiet-but-working connection from an idle one.
    in_flight: Arc<AtomicU64>,
}

enum JobKind {
    Full(Box<ScheduleRequest>),
    Fingerprint { id: u64, fingerprint: u128 },
}

struct Shared {
    service: ScheduleService,
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutting_down: AtomicBool,
    config: ServerConfig,
    /// Live connection sockets (for shutdown-time unblocking) and their
    /// reader thread handles, keyed by connection id.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
    /// Finished-request traces (`TRACE <id>`, `STATS SLOW`).
    journal: TraceJournal,
    /// Ids for requests that arrive without one.
    trace_ids: TraceIdGen,
    /// `bsp_queue_wait_micros`, registered in the service's registry.
    queue_wait: Arc<LatencyHistogram>,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral loopback port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut service_config = config.service.clone();
        service_config.solve_threads = config.effective_solve_threads();
        if service_config.store.is_none() {
            if let Some(dir) = &config.store_dir {
                service_config.store = Some(StoreConfig::at(dir.clone()));
            }
        }
        let service = ScheduleService::try_new(service_config)?;
        let queue_wait = service.registry().histogram(
            "bsp_queue_wait_micros",
            "time from request admission to a worker picking the job up",
            &[],
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                jobs: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                config,
                conns: Mutex::new(HashMap::new()),
                conn_threads: Mutex::new(Vec::new()),
                next_conn_id: AtomicU64::new(0),
                journal: TraceJournal::new(TRACE_RING_CAP, SLOW_LOG_CAP),
                trace_ids: TraceIdGen::new(),
                queue_wait,
            }),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the acceptor and worker threads; returns the controlling handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for i in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bsp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("bsp-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// Handle to a running server: address, statistics, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct (in-process) access to the underlying service.
    pub fn service(&self) -> &ScheduleService {
        &self.shared.service
    }

    /// A statistics snapshot without a round trip.
    pub fn stats(&self) -> ServiceStats {
        self.shared.service.stats()
    }

    /// Graceful shutdown: stop admission, cancel in-flight solves, drain the
    /// workers, join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.service.begin_shutdown();
        self.shared.available.notify_all();
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock every connection reader stuck in a read.
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // The acceptor is gone, so no new connection threads can appear.
        let handles: Vec<_> = {
            let mut threads = self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            threads.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // With every reader gone no new jobs can appear; wake the workers so
        // they drain what is left (answered with shutting-down) and exit.
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone, so no new writes can be offered: one barrier
        // makes everything the server ever accepted durable.
        self.shared.service.flush_store();
    }
}

/// Registers a connection thread's handle, first reaping every handle whose
/// thread has already finished — a long-lived server must not accumulate a
/// `JoinHandle` per connection it ever served.  Shared with the router.
pub(crate) fn register_conn_thread(threads: &Mutex<Vec<JoinHandle<()>>>, handle: JoinHandle<()>) {
    let mut threads = threads.lock().unwrap_or_else(|e| e.into_inner());
    let mut alive = Vec::with_capacity(threads.len() + 1);
    for h in threads.drain(..) {
        if h.is_finished() {
            let _ = h.join(); // finished: join returns immediately
        } else {
            alive.push(h);
        }
    }
    *threads = alive;
    threads.push(handle);
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let at_capacity = {
            let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            conns.len() >= shared.config.max_connections.max(1)
        };
        if at_capacity {
            let mut reply = String::new();
            encode_error(&mut reply, 0, &ServeError::Busy);
            let mut stream = stream;
            let _ = stream.write_all(reply.as_bytes());
            continue; // dropping the stream closes the refused connection
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(conn_id, registered);
        let thread_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("bsp-serve-conn-{conn_id}"))
            .spawn(move || {
                let _ = serve_connection(&thread_shared, stream);
                thread_shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&conn_id);
            });
        match spawned {
            Ok(handle) => register_conn_thread(&shared.conn_threads, handle),
            Err(_) => {
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&conn_id);
            }
        }
    }
}

/// Enqueues one job for the worker pool, refusing with a per-request `busy`
/// error when the queue is at capacity.  `trace` is the caller-supplied
/// trace id; a fresh one is minted when absent, so every admitted request is
/// traceable.
fn submit_job(
    shared: &Shared,
    kind: JobKind,
    trace: Option<u64>,
    reply: &Sender<String>,
    in_flight: &Arc<AtomicU64>,
) {
    let id = match &kind {
        JobKind::Full(request) => request.id,
        JobKind::Fingerprint { id, .. } => *id,
    };
    let trace = trace.unwrap_or_else(|| shared.trace_ids.mint());
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    // The shutdown check must happen under the jobs lock: workers only exit
    // after observing the flag with an empty queue (also under the lock), so
    // a job enqueued here while the flag is unset is guaranteed a worker.
    if shared.shutting_down.load(Ordering::SeqCst) {
        drop(jobs);
        let mut out = String::new();
        encode_error(&mut out, id, &ServeError::ShuttingDown);
        let _ = reply.send(out);
        return;
    }
    if jobs.len() >= shared.config.queue_capacity.max(1) {
        drop(jobs);
        let mut out = String::new();
        encode_error(&mut out, id, &ServeError::Busy);
        let _ = reply.send(out);
        return;
    }
    in_flight.fetch_add(1, Ordering::SeqCst);
    jobs.push_back(Job {
        kind,
        trace,
        enqueued: Instant::now(),
        reply: reply.clone(),
        in_flight: Arc::clone(in_flight),
    });
    drop(jobs);
    shared.available.notify_one();
}

/// The per-connection reader: parses messages, answers cheap verbs, feeds
/// scheduling requests to the worker pool, and joins its writer on exit.
fn serve_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.idle_timeout))?;
    let writer_stream = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("bsp-serve-conn-writer".into())
        .spawn(move || writer_loop(writer_stream, &rx))?;
    let in_flight = Arc::new(AtomicU64::new(0));
    let mut reader = BufReader::new(stream);
    loop {
        // Peek before parsing so a read timeout can be told apart from a
        // frame: the idle timeout may only close a connection that has
        // nothing in flight — a client quietly waiting on a slow solve is
        // working, not idle.  (A timeout *mid-frame* still falls through to
        // `read_incoming`'s error path below: a peer that stalls inside a
        // frame is broken, not patient.)
        match reader.fill_buf() {
            Ok([]) => break, // clean EOF between frames
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if in_flight.load(Ordering::SeqCst) > 0 {
                    continue;
                }
                let mut out = String::new();
                encode_error(
                    &mut out,
                    0,
                    &ServeError::Io("connection idle timeout".into()),
                );
                let _ = tx.send(out);
                break;
            }
            Err(_) => break,
        }
        match read_incoming(&mut reader) {
            Ok(None) => break,
            Ok(Some(Incoming::Ping)) => {
                if tx.send("PONG\n".to_string()).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Stats)) => {
                let mut out = shared.service.stats().to_wire();
                out.push('\n');
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::SlowStats)) => {
                let mut out = String::new();
                encode_slow_reply(&mut out, &shared.journal.snapshot_slow());
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Metrics)) => {
                let mut exposition = String::new();
                shared.service.render_metrics(&mut exposition);
                let mut out = String::new();
                encode_metrics_reply(&mut out, &exposition);
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Trace(trace_id))) => {
                let mut out = String::new();
                match shared.journal.lookup(trace_id) {
                    Some(rec) => encode_trace_reply(&mut out, &WireTrace::from_record(&rec)),
                    None => encode_error(&mut out, 0, &ServeError::UnknownTrace),
                }
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Request(request))) => {
                let trace = request.options.trace;
                submit_job(shared, JobKind::Full(request), trace, &tx, &in_flight);
            }
            Ok(Some(Incoming::FingerprintRequest {
                id,
                fingerprint,
                // Routing is the router's job; a shard serves the replay
                // from whatever its cache holds, structure key or not.
                structure: _,
                trace,
            })) => {
                submit_job(
                    shared,
                    JobKind::Fingerprint { id, fingerprint },
                    trace,
                    &tx,
                    &in_flight,
                );
            }
            Err(err) => {
                // Typed error back to the peer, then close: after a framing
                // error the stream position is unreliable.
                let mut out = String::new();
                encode_error(&mut out, 0, &err);
                let _ = tx.send(out);
                break;
            }
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
    }
    // Closing our sender lets the writer drain the in-flight responses (the
    // workers hold clones while solving) and exit.
    drop(tx);
    let _ = writer.join();
    Ok(())
}

/// The per-connection writer: serializes response frames onto the socket in
/// completion order, coalescing bursts into one flush.  Shared with the
/// router, whose client connections have the same shape.
pub(crate) fn writer_loop(stream: TcpStream, rx: &Receiver<String>) {
    let mut writer = BufWriter::new(stream);
    while let Ok(msg) = rx.recv() {
        if writer.write_all(msg.as_bytes()).is_err() {
            return;
        }
        while let Ok(more) = rx.try_recv() {
            if writer.write_all(more.as_bytes()).is_err() {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
    }
}

fn worker_loop(shared: &Shared) {
    let batch_cap = shared.config.admission_batch.max(1);
    let workers = shared.config.workers.max(1);
    let mut batch: Vec<Job> = Vec::with_capacity(batch_cap);
    loop {
        {
            let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !jobs.is_empty() {
                    break;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                jobs = shared
                    .available
                    .wait(jobs)
                    .unwrap_or_else(|e| e.into_inner());
            }
            // Batched draining amortizes the lock under bursts, but never
            // starves parallelism: a worker takes at most its fair share of
            // the current queue.
            let take = jobs.len().div_ceil(workers).min(batch_cap);
            for _ in 0..take {
                match jobs.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }
        for job in batch.drain(..) {
            let mut out = String::new();
            let queue_wait = job.enqueued.elapsed();
            shared.queue_wait.record(queue_wait);
            let qw_us = queue_wait.as_micros().min(u128::from(u64::MAX)) as u64;
            // Spans are offsets from admission: queue wait first, then the
            // service's handling spans shifted past it.  All `Copy`-only —
            // the exact-hit path stays allocation-free with tracing on.
            let mut spans = SpanSet::new();
            spans.push("queue_wait", 0, 0, qw_us);
            let mut svc_spans = SpanSet::new();
            let (id, result) = match &job.kind {
                JobKind::Full(request) => (
                    request.id,
                    shared.service.handle_traced(request, Some(&mut svc_spans)),
                ),
                JobKind::Fingerprint { id, fingerprint } => (
                    *id,
                    shared
                        .service
                        .handle_fingerprint_traced(*fingerprint, Some(&mut svc_spans)),
                ),
            };
            spans.extend_offset(&svc_spans, 0, qw_us);
            let (source, total_us) = match &result {
                Ok(reply) => {
                    let handled_us = reply.elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
                    let respond_start = job.enqueued.elapsed().as_micros() as u64;
                    encode_response_parts(
                        &mut out,
                        id,
                        reply.cost,
                        reply.source,
                        handled_us,
                        job.trace,
                        &reply.schedule,
                    );
                    let respond_dur =
                        (job.enqueued.elapsed().as_micros() as u64).saturating_sub(respond_start);
                    spans.push("respond", 0, respond_start, respond_dur);
                    (reply.source.as_str(), qw_us.saturating_add(handled_us))
                }
                Err(err) => {
                    encode_error(&mut out, id, err);
                    ("error", job.enqueued.elapsed().as_micros() as u64)
                }
            };
            shared.journal.record(TraceRecord {
                trace_id: job.trace,
                source,
                shard: -1,
                total_us,
                spans,
            });
            // A send error just means the connection is gone.
            let _ = job.reply.send(out);
            job.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Completion, PipelinedClient};
    use crate::protocol::{Mode, RequestOptions, ScheduleSource};
    use bsp_model::{Dag, Machine};
    use std::io::BufRead;
    use std::time::Duration;

    fn test_server() -> ServerHandle {
        let config = ServerConfig {
            workers: 2,
            queue_capacity: 32,
            max_connections: 16,
            admission_batch: 4,
            idle_timeout: Duration::from_secs(5),
            solve_threads: 0,
            service: ServiceConfig {
                local_search_budget: Duration::from_millis(40),
                warm_budget: Duration::from_millis(40),
                ..Default::default()
            },
            store_dir: None,
        };
        Server::bind("127.0.0.1:0", config)
            .expect("bind loopback")
            .spawn()
            .expect("spawn server threads")
    }

    #[test]
    fn solve_thread_budget_divides_cores_across_workers() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // More workers than cores: every request solves single-threaded.
        let oversubscribed = ServerConfig {
            workers: cores * 2,
            ..Default::default()
        };
        assert_eq!(oversubscribed.effective_solve_threads(), 1);
        // One worker gets the whole machine.
        let single = ServerConfig {
            workers: 1,
            ..Default::default()
        };
        assert_eq!(single.effective_solve_threads(), cores);
        // An explicit budget passes through verbatim.
        let explicit = ServerConfig {
            solve_threads: 3,
            ..Default::default()
        };
        assert_eq!(explicit.effective_solve_threads(), 3);
    }

    fn small_dag(work: u64) -> Dag {
        Dag::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)],
            vec![work; 6],
            vec![2; 6],
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_schedule_over_loopback_tcp() {
        let server = test_server();
        let machine = Machine::uniform(4, 1, 2);
        let dag = small_dag(3);
        let mut client = Client::connect(server.addr()).expect("connect");
        client.ping().expect("ping");

        let options = RequestOptions::new().with_mode(Mode::HeuristicsOnly);
        let first = client.schedule(&dag, &machine, &options).expect("cold run");
        assert_eq!(first.source, ScheduleSource::Cold);
        assert!(first.schedule.validate(&dag, &machine).is_ok());
        assert_eq!(first.cost, first.schedule.cost(&dag, &machine));

        let second = client.schedule(&dag, &machine, &options).expect("hit");
        assert_eq!(second.source, ScheduleSource::CacheExact);
        assert_eq!(second.schedule, first.schedule);

        // Reweighted instance: warm start.
        let warm = client
            .schedule(&small_dag(9), &machine, &options)
            .expect("warm run");
        assert_eq!(warm.source, ScheduleSource::CacheWarm);

        let stats = client.stats().expect("stats");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.warm_hits, 1);
        assert_eq!(stats.requests, 3);

        drop(client);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_complete_out_of_order_friendly() {
        let server = test_server();
        let machine = Machine::uniform(4, 1, 2);
        let dags: Vec<_> = (1u64..=6)
            .map(|w| std::sync::Arc::new(small_dag(w)))
            .collect();
        let options = RequestOptions::new().with_mode(Mode::HeuristicsOnly);
        let mut client = PipelinedClient::connect(server.addr()).expect("connect");

        // Submit everything before reading a single response.
        let mut expected = std::collections::HashSet::new();
        for dag in &dags {
            let id = client.submit(dag, &machine, &options).expect("submit");
            expected.insert(id);
        }
        assert_eq!(client.in_flight(), dags.len());

        let mut completed = std::collections::HashSet::new();
        while client.in_flight() > 0 {
            match client.recv().expect("recv") {
                Completion::Ok(response) => {
                    assert!(expected.contains(&response.id));
                    completed.insert(response.id);
                }
                Completion::Failed { id, error } => panic!("request {id} failed: {error}"),
            }
        }
        assert_eq!(
            completed, expected,
            "every submission completed exactly once"
        );

        // Fingerprint replays work pipelined too (these are now cache hits).
        for dag in &dags {
            client.submit(dag, &machine, &options).expect("replay");
        }
        let mut exact = 0;
        while client.in_flight() > 0 {
            match client.recv().expect("recv replay") {
                Completion::Ok(response) => {
                    if response.source == ScheduleSource::CacheExact {
                        exact += 1;
                    }
                }
                Completion::Failed { id, error } => panic!("replay {id} failed: {error}"),
            }
        }
        assert_eq!(exact, dags.len(), "replays are exact hits");
        assert_eq!(client.fp_fallbacks(), 0, "nothing was evicted");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn full_job_queue_refuses_requests_per_request_not_per_connection() {
        // queue_capacity 1 and a single worker busy with slow solves: some
        // of a deep pipeline's submissions bounce with `busy`, but the
        // connection survives and later requests succeed.
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 1,
            max_connections: 4,
            admission_batch: 1,
            idle_timeout: Duration::from_secs(5),
            solve_threads: 0,
            service: ServiceConfig {
                local_search_budget: Duration::from_millis(30),
                warm_budget: Duration::from_millis(30),
                ..Default::default()
            },
            store_dir: None,
        };
        let server = Server::bind("127.0.0.1:0", config)
            .expect("bind")
            .spawn()
            .expect("spawn");
        let machine = Machine::uniform(2, 1, 1);
        let options = RequestOptions::new().with_mode(Mode::HeuristicsOnly);
        let mut client = PipelinedClient::connect(server.addr()).expect("connect");
        let dags: Vec<_> = (1u64..=8)
            .map(|w| std::sync::Arc::new(small_dag(w)))
            .collect();
        for dag in &dags {
            client.submit(dag, &machine, &options).expect("submit");
        }
        let mut ok = 0u64;
        let mut busy = 0u64;
        while client.in_flight() > 0 {
            match client.recv().expect("recv") {
                Completion::Ok(_) => ok += 1,
                Completion::Failed { error, .. } => match error {
                    ServeError::Remote { kind, .. } if kind == "busy" => busy += 1,
                    other => panic!("unexpected error: {other}"),
                },
            }
        }
        assert_eq!(ok + busy, dags.len() as u64);
        assert!(ok >= 1, "at least the queued request succeeds");
        // The connection is still usable after busy rejections.
        let id = client.submit(&dags[0], &machine, &options).expect("submit");
        match client.recv().expect("recv after busy") {
            Completion::Ok(response) => assert_eq!(response.id, id),
            Completion::Failed { error, .. } => {
                assert!(matches!(&error, ServeError::Remote { kind, .. } if kind == "busy"));
            }
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn idle_timeout_spares_connections_with_requests_in_flight() {
        // Regression: the pipelined reader re-arms its read timeout between
        // frames, so a client quietly waiting on a slow solve used to be
        // torn down as "idle" mid-request.  A large instance with a solve
        // budget far beyond the idle timeout must still be answered.
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 4,
            max_connections: 4,
            admission_batch: 1,
            idle_timeout: Duration::from_millis(100),
            solve_threads: 0,
            service: ServiceConfig {
                local_search_budget: Duration::from_secs(5),
                warm_budget: Duration::from_millis(40),
                ..Default::default()
            },
            store_dir: None,
        };
        let server = Server::bind("127.0.0.1:0", config)
            .expect("bind")
            .spawn()
            .expect("spawn");
        // Large enough that initializers + local search comfortably outlast
        // the 100 ms idle timeout on any host.
        let n = 20_000;
        let edges: Vec<_> = (0..n - 1)
            .flat_map(|i| [(i, i + 1)])
            .chain((0..n - 2).map(|i| (i, i + 2)))
            .collect();
        let dag = Dag::from_edges(n, &edges, vec![3; n], vec![2; n]).unwrap();
        let machine = Machine::numa_binary_tree(8, 2, 5, 3);
        let mut client = Client::connect(server.addr()).expect("connect");
        let start = std::time::Instant::now();
        let response = client
            .schedule(
                &dag,
                &machine,
                &RequestOptions::new().with_mode(Mode::HeuristicsOnly),
            )
            .expect("slow request must not be killed by the idle timeout");
        assert!(response.schedule.validate(&dag, &machine).is_ok());
        assert!(
            start.elapsed() > Duration::from_millis(100),
            "test instance solved too fast to exercise the idle window"
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn idle_connections_still_time_out() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(80),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config)
            .expect("bind")
            .spawn()
            .expect("spawn");
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reply = String::new();
        BufReader::new(&stream)
            .read_line(&mut reply)
            .expect("read the idle-timeout error line");
        assert!(reply.starts_with("ERR 0 io"), "got {reply:?}");
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn malformed_wire_input_gets_a_typed_error_and_close() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"GARBAGE\n").expect("write");
        stream.flush().expect("flush");
        let mut reply = String::new();
        BufReader::new(&stream)
            .read_line(&mut reply)
            .expect("read error line");
        assert!(reply.starts_with("ERR 0 malformed"), "got {reply:?}");
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_idle_workers() {
        let server = test_server();
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_an_open_idle_connection() {
        let server = test_server();
        let _client = Client::connect(server.addr()).expect("connect");
        // The reader is blocked on this idle connection; shutdown must still
        // join promptly (socket shutdown, not the 5 s idle timeout).
        server.shutdown();
    }
}
