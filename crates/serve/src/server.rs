//! The loopback TCP server (bounded admission queue + batched worker pool)
//! and the matching [`Client`] handle.
//!
//! ## Threading model
//!
//! One **acceptor** thread takes connections off the listener and pushes
//! them into a bounded queue; when the queue is full the connection is
//! answered with `ERR 0 busy ...` and dropped — admission control instead of
//! unbounded buffering.  `N` **worker** threads drain the queue in batches
//! of up to [`ServerConfig::admission_batch`] connections per lock
//! acquisition (amortizing the queue lock under bursts) and serve each
//! connection's requests in order.  All request handling goes through the
//! shared [`ScheduleService`], so the cache and the latency histograms are
//! global across workers.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] stops admission, fires the service's
//! [`bsp_sched::CancelToken`] (in-flight anytime solves return their
//! best-so-far schedule promptly), wakes idle workers, and joins all
//! threads.  Workers finish the connection they are on; idle connections
//! are bounded by [`ServerConfig::idle_timeout`].

use crate::protocol::{
    encode_error, encode_fingerprint_request, encode_request, encode_response_parts, read_incoming,
    read_response, Incoming, RequestOptions, ScheduleResponse, ServeError,
};
use crate::service::{ScheduleService, ServiceConfig, ServiceStats};
use bsp_model::{Dag, Machine};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the TCP serving layer.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are refused with a
    /// `busy` error.
    pub queue_capacity: usize,
    /// Maximum connections a worker drains per queue-lock acquisition.
    pub admission_batch: usize,
    /// A connection idle for this long is closed (also bounds how long
    /// shutdown can wait for a worker stuck on a silent peer).
    pub idle_timeout: Duration,
    /// Configuration of the underlying [`ScheduleService`].
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            admission_batch: 8,
            idle_timeout: Duration::from_secs(30),
            service: ServiceConfig::default(),
        }
    }
}

struct Shared {
    service: ScheduleService,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutting_down: AtomicBool,
    config: ServerConfig,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral loopback port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let service = ScheduleService::new(config.service.clone());
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                config,
            }),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the acceptor and worker threads; returns the controlling handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for i in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bsp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("bsp-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// Handle to a running server: address, statistics, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct (in-process) access to the underlying service.
    pub fn service(&self) -> &ScheduleService {
        &self.shared.service
    }

    /// A statistics snapshot without a round trip.
    pub fn stats(&self) -> ServiceStats {
        self.shared.service.stats()
    }

    /// Graceful shutdown: stop admission, cancel in-flight solves, drain the
    /// workers, join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.service.begin_shutdown();
        self.shared.available.notify_all();
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            let mut reply = String::new();
            encode_error(&mut reply, 0, &ServeError::Busy);
            let mut stream = stream;
            let _ = stream.write_all(reply.as_bytes());
            // Dropping the stream closes the refused connection.
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.available.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut batch: Vec<TcpStream> = Vec::with_capacity(shared.config.admission_batch.max(1));
    loop {
        {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            // Batched admission: drain up to `admission_batch` connections
            // under one lock acquisition.
            while batch.len() < shared.config.admission_batch.max(1) {
                match queue.pop_front() {
                    Some(conn) => batch.push(conn),
                    None => break,
                }
            }
        }
        for conn in batch.drain(..) {
            let _ = serve_connection(shared, conn);
        }
    }
}

/// Serves every request on one connection; returns on peer close, protocol
/// error, idle timeout, or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.idle_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut out = String::new();
    loop {
        out.clear();
        match read_incoming(&mut reader) {
            Ok(None) => return Ok(()),
            Ok(Some(Incoming::Ping)) => out.push_str("PONG\n"),
            Ok(Some(Incoming::Stats)) => {
                out.push_str(&shared.service.stats().to_wire());
                out.push('\n');
            }
            Ok(Some(Incoming::Request(request))) => match shared.service.handle(&request) {
                Ok(reply) => encode_response_parts(
                    &mut out,
                    request.id,
                    reply.cost,
                    reply.source,
                    reply.elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                    &reply.schedule,
                ),
                Err(err) => encode_error(&mut out, request.id, &err),
            },
            Ok(Some(Incoming::FingerprintRequest { id, fingerprint })) => {
                match shared.service.handle_fingerprint(fingerprint) {
                    Ok(reply) => encode_response_parts(
                        &mut out,
                        id,
                        reply.cost,
                        reply.source,
                        reply.elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                        &reply.schedule,
                    ),
                    Err(err) => encode_error(&mut out, id, &err),
                }
            }
            Err(err) => {
                // Typed error back to the peer, then close: after a framing
                // error the stream position is unreliable.
                encode_error(&mut out, 0, &err);
                let _ = writer.write_all(out.as_bytes());
                let _ = writer.flush();
                return Ok(());
            }
        }
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// A blocking client for the wire protocol, usable from tests and the bench
/// harness in the same process as the server (loopback TCP) or from another
/// process entirely.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    scratch: String,
    /// Request fingerprints this client has successfully submitted in full;
    /// later identical requests replay by fingerprint (`FP <hex>`), skipping
    /// the DAG payload, and fall back transparently when the server evicted
    /// the entry.
    known_fingerprints: std::collections::HashSet<u128>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
            scratch: String::new(),
            known_fingerprints: std::collections::HashSet::new(),
        })
    }

    /// Sends one scheduling request and blocks for the response.
    ///
    /// Content-addressed fast path: when this client has already submitted
    /// an identical request (same fingerprint) with the cache enabled, only
    /// the fingerprint goes on the wire; if the server meanwhile evicted the
    /// schedule, the client transparently resends the full payload.
    pub fn schedule(
        &mut self,
        dag: &Dag,
        machine: &Machine,
        options: &RequestOptions,
    ) -> Result<ScheduleResponse, ServeError> {
        let fingerprint = bsp_model::request_key(dag, machine).full;
        if options.use_cache && self.known_fingerprints.contains(&fingerprint) {
            let id = self.next_id;
            self.next_id += 1;
            self.scratch.clear();
            encode_fingerprint_request(&mut self.scratch, id, fingerprint);
            self.writer.write_all(self.scratch.as_bytes())?;
            self.writer.flush()?;
            match self.read_matching_response(id) {
                Ok(response) => return Ok(response),
                Err(ServeError::Remote { kind, .. }) if kind == "unknown-fp" => {
                    self.known_fingerprints.remove(&fingerprint);
                }
                Err(err) => return Err(err),
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.scratch.clear();
        encode_request(&mut self.scratch, id, dag, machine, options)?;
        self.writer.write_all(self.scratch.as_bytes())?;
        self.writer.flush()?;
        let response = self.read_matching_response(id)?;
        if options.use_cache {
            self.known_fingerprints.insert(fingerprint);
        }
        Ok(response)
    }

    fn read_matching_response(&mut self, id: u64) -> Result<ScheduleResponse, ServeError> {
        let response = read_response(&mut self.reader)?;
        if response.id != id {
            return Err(ServeError::Malformed {
                line: format!("OK {}", response.id),
                reason: format!("response id {} does not match request id {id}", response.id),
            });
        }
        Ok(response)
    }

    /// Fetches the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<ServiceStats, ServeError> {
        self.writer.write_all(b"STATS\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        ServiceStats::from_wire(line.trim())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.writer.write_all(b"PING\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        if line.trim() == "PONG" {
            Ok(())
        } else {
            Err(ServeError::Malformed {
                line: line.trim().to_string(),
                reason: "expected PONG".into(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Mode, ScheduleSource};
    use std::time::Duration;

    fn test_server() -> ServerHandle {
        let config = ServerConfig {
            workers: 2,
            queue_capacity: 8,
            admission_batch: 4,
            idle_timeout: Duration::from_secs(5),
            service: ServiceConfig {
                local_search_budget: Duration::from_millis(40),
                warm_budget: Duration::from_millis(40),
                ..Default::default()
            },
        };
        Server::bind("127.0.0.1:0", config)
            .expect("bind loopback")
            .spawn()
            .expect("spawn server threads")
    }

    fn small_dag(work: u64) -> Dag {
        Dag::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)],
            vec![work; 6],
            vec![2; 6],
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_schedule_over_loopback_tcp() {
        let server = test_server();
        let machine = Machine::uniform(4, 1, 2);
        let dag = small_dag(3);
        let mut client = Client::connect(server.addr()).expect("connect");
        client.ping().expect("ping");

        let options = RequestOptions::new().with_mode(Mode::HeuristicsOnly);
        let first = client.schedule(&dag, &machine, &options).expect("cold run");
        assert_eq!(first.source, ScheduleSource::Cold);
        assert!(first.schedule.validate(&dag, &machine).is_ok());
        assert_eq!(first.cost, first.schedule.cost(&dag, &machine));

        let second = client.schedule(&dag, &machine, &options).expect("hit");
        assert_eq!(second.source, ScheduleSource::CacheExact);
        assert_eq!(second.schedule, first.schedule);

        // Reweighted instance: warm start.
        let warm = client
            .schedule(&small_dag(9), &machine, &options)
            .expect("warm run");
        assert_eq!(warm.source, ScheduleSource::CacheWarm);

        let stats = client.stats().expect("stats");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.warm_hits, 1);
        assert_eq!(stats.requests, 3);

        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_wire_input_gets_a_typed_error_and_close() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"GARBAGE\n").expect("write");
        stream.flush().expect("flush");
        let mut reply = String::new();
        BufReader::new(&stream)
            .read_line(&mut reply)
            .expect("read error line");
        assert!(reply.starts_with("ERR 0 malformed"), "got {reply:?}");
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_idle_workers() {
        let server = test_server();
        server.shutdown();
    }
}
