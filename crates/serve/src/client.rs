//! Client handles for the wire protocol: the blocking serial [`Client`] and
//! the windowed [`PipelinedClient`].
//!
//! The serial client sends one request and blocks for its response — simple,
//! and exactly what tests want.  The pipelined client exploits the id-tagged
//! protocol: any number of requests may be in flight on one connection
//! ([`PipelinedClient::submit`]), and completions are collected in whatever
//! order the server finishes them ([`PipelinedClient::recv`]).  Both clients
//! keep the content-addressed fast path: a request whose fingerprint was
//! already submitted in full replays as `FP <hex>` (no DAG payload on the
//! wire), falling back transparently when the server evicted the entry.

use crate::protocol::{
    encode_fingerprint_request, encode_request, read_metrics_reply, read_reply, read_response,
    read_slow_reply, read_trace_reply, Reply, RequestOptions, ScheduleResponse, ServeError,
    SlowEntry, WireTrace,
};
use crate::service::ServiceStats;
use bsp_model::{Dag, Machine};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// A blocking client for the wire protocol, usable from tests and the bench
/// harness in the same process as the server (loopback TCP) or from another
/// process entirely.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    scratch: String,
    /// Request fingerprints this client has successfully submitted in full;
    /// later identical requests replay by fingerprint (`FP <hex>`), skipping
    /// the DAG payload, and fall back transparently when the server evicted
    /// the entry.
    known_fingerprints: HashSet<u128>,
    fp_fallbacks: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a bound on both the connect and every read — for
    /// control-plane calls (the router's `STATS` fan-out) that must not
    /// hang on a wedged peer.
    pub fn connect_with_timeout(
        addr: std::net::SocketAddr,
        timeout: std::time::Duration,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
            scratch: String::new(),
            known_fingerprints: HashSet::new(),
            fp_fallbacks: 0,
        })
    }

    /// Tells the client the server already holds this request (e.g. it was
    /// served before a restart and the durable store recovered it), so the
    /// *first* [`Client::schedule`] call for it replays by fingerprint
    /// instead of shipping the DAG payload.  A wrong assumption costs one
    /// transparent fallback to the full payload, counted by
    /// [`Client::fp_fallbacks`] — never a wrong answer.
    pub fn assume_cached(&mut self, dag: &Dag, machine: &Machine) {
        self.known_fingerprints
            .insert(bsp_model::request_key(dag, machine).full);
    }

    /// How many fingerprint replays came back `unknown-fp` and were resent
    /// in full (see [`PipelinedClient::fp_fallbacks`]).
    pub fn fp_fallbacks(&self) -> u64 {
        self.fp_fallbacks
    }

    /// Sends one scheduling request and blocks for the response.
    ///
    /// Content-addressed fast path: when this client has already submitted
    /// an identical request (same fingerprint) with the cache enabled, only
    /// the fingerprint goes on the wire; if the server meanwhile evicted the
    /// schedule, the client transparently resends the full payload.
    pub fn schedule(
        &mut self,
        dag: &Dag,
        machine: &Machine,
        options: &RequestOptions,
    ) -> Result<ScheduleResponse, ServeError> {
        let key = bsp_model::request_key(dag, machine);
        let fingerprint = key.full;
        if options.use_cache && self.known_fingerprints.contains(&fingerprint) {
            let id = self.next_id;
            self.next_id += 1;
            self.scratch.clear();
            // The structure key rides along so a sharded deployment routes
            // the replay to the structural family's home shard.
            encode_fingerprint_request(
                &mut self.scratch,
                id,
                fingerprint,
                Some(key.structure),
                options.trace,
            );
            self.writer.write_all(self.scratch.as_bytes())?;
            self.writer.flush()?;
            match self.read_matching_response(id) {
                Ok(response) => return Ok(response),
                Err(ServeError::Remote { kind, .. }) if kind == "unknown-fp" => {
                    self.known_fingerprints.remove(&fingerprint);
                    self.fp_fallbacks += 1;
                }
                Err(err) => return Err(err),
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.scratch.clear();
        encode_request(&mut self.scratch, id, dag, machine, options)?;
        self.writer.write_all(self.scratch.as_bytes())?;
        self.writer.flush()?;
        let response = self.read_matching_response(id)?;
        if options.use_cache {
            self.known_fingerprints.insert(fingerprint);
        }
        Ok(response)
    }

    fn read_matching_response(&mut self, id: u64) -> Result<ScheduleResponse, ServeError> {
        let response = read_response(&mut self.reader)?;
        if response.id != id {
            return Err(ServeError::Malformed {
                line: format!("OK {}", response.id),
                reason: format!("response id {} does not match request id {id}", response.id),
            });
        }
        Ok(response)
    }

    /// Fetches the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<ServiceStats, ServeError> {
        self.writer.write_all(b"STATS\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        ServiceStats::from_wire(line.trim())
    }

    /// Fetches the Prometheus-style text exposition (`METRICS` verb).  On a
    /// router this is the bucket-merged aggregate across every live shard
    /// plus the router's own series.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        self.writer.write_all(b"METRICS\n")?;
        self.writer.flush()?;
        read_metrics_reply(&mut self.reader)
    }

    /// Fetches one finished request's trace by id (`TRACE <id>` verb).  The
    /// id is reported in the `trace` key of every `OK` response header.
    /// Returns [`ServeError::UnknownTrace`] when the trace has aged out of
    /// the server's bounded journal.
    pub fn trace(&mut self, trace_id: u64) -> Result<WireTrace, ServeError> {
        self.scratch.clear();
        self.scratch.push_str("TRACE ");
        self.scratch.push_str(&format!("{trace_id:x}"));
        self.scratch.push('\n');
        self.writer.write_all(self.scratch.as_bytes())?;
        self.writer.flush()?;
        read_trace_reply(&mut self.reader)
    }

    /// Fetches the slow-request journal (`STATS SLOW` verb), slowest first.
    pub fn slow_stats(&mut self) -> Result<Vec<SlowEntry>, ServeError> {
        self.writer.write_all(b"STATS SLOW\n")?;
        self.writer.flush()?;
        read_slow_reply(&mut self.reader)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.writer.write_all(b"PING\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        if line.trim() == "PONG" {
            Ok(())
        } else {
            Err(ServeError::Malformed {
                line: line.trim().to_string(),
                reason: "expected PONG".into(),
            })
        }
    }
}

/// The terminal outcome of one pipelined request.
#[derive(Debug)]
pub enum Completion {
    /// The request succeeded; `response.id` is the id [`PipelinedClient::submit`]
    /// returned.
    Ok(ScheduleResponse),
    /// The server answered this request with an error.
    Failed {
        /// The id [`PipelinedClient::submit`] returned for the failed request.
        id: u64,
        /// The server's error.
        error: ServeError,
    },
}

/// Everything the client must remember about an in-flight request: enough to
/// resend the full payload if an `FP` replay comes back `unknown-fp`.
struct InFlight {
    dag: Arc<Dag>,
    machine: Machine,
    options: RequestOptions,
    fingerprint: u128,
    /// Whether the last wire form of this request was a fingerprint-only
    /// replay (and may therefore need a full resend).
    sent_fp_only: bool,
}

/// A pipelined client: many id-tagged requests in flight on one connection,
/// completions collected out of order.
///
/// ```text
/// let id_a = client.submit(&dag_a, &machine, &options)?;
/// let id_b = client.submit(&dag_b, &machine, &options)?;   // before recv!
/// let first = client.recv()?;   // completes whichever finished first
/// ```
///
/// The `FP <hex>` fast path is kept: replays of known requests send only the
/// fingerprint, and an `unknown-fp` answer (eviction, shard failover) makes
/// the client resend the full payload *under the same id*, so callers never
/// observe the fallback — except through [`PipelinedClient::fp_fallbacks`].
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    scratch: String,
    pending: HashMap<u64, InFlight>,
    known_fingerprints: HashSet<u128>,
    fp_fallbacks: u64,
}

impl PipelinedClient {
    /// Connects to a server (or router).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
            scratch: String::new(),
            pending: HashMap::new(),
            known_fingerprints: HashSet::new(),
            fp_fallbacks: 0,
        })
    }

    /// Submits one request without waiting for any response; returns the id
    /// its completion will carry.  The caller bounds its own pipeline depth
    /// by balancing `submit` and [`Self::recv`] calls.
    ///
    /// Takes the DAG as an `Arc` because the client must be able to resend
    /// the payload if a fingerprint replay misses (eviction or failover).
    pub fn submit(
        &mut self,
        dag: &Arc<Dag>,
        machine: &Machine,
        options: &RequestOptions,
    ) -> Result<u64, ServeError> {
        let key = bsp_model::request_key(dag, machine);
        let fingerprint = key.full;
        let id = self.next_id;
        self.next_id += 1;
        let fp_only = options.use_cache && self.known_fingerprints.contains(&fingerprint);
        self.scratch.clear();
        if fp_only {
            encode_fingerprint_request(
                &mut self.scratch,
                id,
                fingerprint,
                Some(key.structure),
                options.trace,
            );
        } else {
            encode_request(&mut self.scratch, id, dag, machine, options)?;
        }
        self.writer.write_all(self.scratch.as_bytes())?;
        self.writer.flush()?;
        self.pending.insert(
            id,
            InFlight {
                dag: Arc::clone(dag),
                machine: machine.clone(),
                options: options.clone(),
                fingerprint,
                sent_fp_only: fp_only,
            },
        );
        Ok(id)
    }

    /// Number of requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// How many fingerprint replays came back `unknown-fp` and were resent
    /// in full.  Zero means every replay landed on a server that still held
    /// the entry — on a router, that every replay reached its owning shard.
    pub fn fp_fallbacks(&self) -> u64 {
        self.fp_fallbacks
    }

    /// Blocks for the next completion, in whatever order the server finishes
    /// requests.  The outer `Err` is a transport/protocol failure that kills
    /// the connection; per-request errors come back as
    /// [`Completion::Failed`].
    pub fn recv(&mut self) -> Result<Completion, ServeError> {
        loop {
            match read_reply(&mut self.reader)? {
                Reply::Ok(response) => {
                    let Some(entry) = self.pending.remove(&response.id) else {
                        return Err(ServeError::Malformed {
                            line: format!("OK {}", response.id),
                            reason: "response id matches no in-flight request".into(),
                        });
                    };
                    if entry.options.use_cache {
                        self.known_fingerprints.insert(entry.fingerprint);
                    }
                    return Ok(Completion::Ok(response));
                }
                Reply::Err { id, error } => {
                    let Some(entry) = self.pending.remove(&id) else {
                        // id 0 (or unknown): a connection-level error.
                        return Err(error);
                    };
                    if entry.sent_fp_only
                        && matches!(&error, ServeError::Remote { kind, .. } if kind == "unknown-fp")
                    {
                        // The server (or the failed-over shard) no longer
                        // holds the fingerprint: resend the full payload
                        // under the same id and keep waiting.
                        self.known_fingerprints.remove(&entry.fingerprint);
                        self.fp_fallbacks += 1;
                        self.scratch.clear();
                        encode_request(
                            &mut self.scratch,
                            id,
                            &entry.dag,
                            &entry.machine,
                            &entry.options,
                        )?;
                        self.writer.write_all(self.scratch.as_bytes())?;
                        self.writer.flush()?;
                        self.pending.insert(
                            id,
                            InFlight {
                                sent_fp_only: false,
                                ..entry
                            },
                        );
                        continue;
                    }
                    return Ok(Completion::Failed { id, error });
                }
            }
        }
    }
}
