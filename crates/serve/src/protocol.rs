//! The line-delimited text protocol of the scheduling service.
//!
//! Everything on the wire is UTF-8 text, one token-separated record per
//! line — the same design choice as the hyperDAG database format, which is
//! reused verbatim for DAG payloads (see [`dag_gen::hyperdag`]).  A request:
//!
//! ```text
//! REQ <id>
//! MACHINE uniform <p> <g> <l>            (or: tree <p> <g> <l> <delta>)
//! OPTION deadline_ms <n>                 (optional; 0 = no deadline)
//! OPTION mode <default|fast|heuristics|multilevel>  (optional; default heuristics)
//! OPTION cache <on|off>                  (optional; default on)
//! OPTION trace <hex>                     (optional; router-assigned trace id)
//! DAG <num_lines>
//! <num_lines of hyperDAG text>
//! END
//! ```
//!
//! and the matching response:
//!
//! ```text
//! OK <id> cost <c> supersteps <s> source <cold|exact|warm> micros <t> [trace <hex>]
//! PROC <pi(0)> <pi(1)> ... <pi(n-1)>
//! STEP <tau(0)> <tau(1)> ... <tau(n-1)>
//! COMM <k>
//! <node> <from> <to> <step>              (k lines)
//! END
//! ```
//!
//! Errors come back as a single `ERR <id> <kind> <message...>` line.  The
//! auxiliary verbs are `STATS` (one `STATS key value ...` line back),
//! `PING`/`PONG`, and the observability verbs:
//!
//! * `METRICS` — Prometheus-style text exposition, framed as
//!   `METRICS <n_lines>` + the lines + `END` (see [`crate::obs`]).
//! * `TRACE <hex>` — one finished request's span tree:
//!   `TRACE <hex> source <src> shard <s> total_us <t> spans <n>` followed by
//!   `SPAN <depth> <start_us> <dur_us> <name>` lines and `END`; an unknown
//!   id answers `ERR 0 unknown-trace ...`.
//! * `STATS SLOW` — the slow-request journal: `SLOW <n>` +
//!   `TRACESUM <hex> <source> <shard> <total_us>` lines + `END` (fetch full
//!   span trees via `TRACE`).
//!
//! The content-addressed replay is `REQ <id>` + `FP <full_hex>
//! [<structure_hex>]` + `END`: the optional second token is the request's
//! 64-bit structure key, which the router's placement policy uses to route
//! the replay to the shard owning the structural family.  Parsers ignore
//! tokens beyond the ones they know, so the one-token legacy form and
//! new-form requests against old servers both keep working.
//!
//! The `STATS` line includes the durable-store counters
//! (`store_loaded`, `store_recovered_bytes`, `store_dropped_corrupt`,
//! `store_compactions`, `store_write_errors`, `store_appended`,
//! `store_dropped_foreign`, `store_adopted_foreign`; all zero on
//! a memory-only server), and readers ignore unknown keys so the set can
//! keep growing without a protocol rev.  When sharded, the router appends
//! placement-decision counters (`placement_<decision>`) and the load-view
//! scrape age (`placement_scrape_age_ms`) to its aggregated `STATS` line.
//! Malformed input of any shape — bad verbs, hostile header
//! counts, cyclic DAGs, out-of-range machine parameters — is answered with a
//! typed [`ServeError`], never a panic: the parsing layer is the service's
//! trust boundary.

use bsp_model::{BspSchedule, CommStep, Dag, Machine, NumaTopology};
use dag_gen::hyperdag::{read_hyperdag, write_hyperdag, HyperDagError};
use std::fmt;
use std::io::{BufRead, Read as _};
use std::time::Duration;

/// How the service solved (or retrieved) a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSource {
    /// Full pipeline run; the request missed the cache (or bypassed it).
    Cold,
    /// Exact cache hit: the identical request was answered before.
    CacheExact,
    /// Near hit: a cached schedule for the same structure (different node
    /// weights) warm-started the hill-climbing search.
    CacheWarm,
}

impl ScheduleSource {
    /// Wire token for this source.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScheduleSource::Cold => "cold",
            ScheduleSource::CacheExact => "exact",
            ScheduleSource::CacheWarm => "warm",
        }
    }

    fn parse(tok: &str) -> Option<Self> {
        match tok {
            "cold" => Some(ScheduleSource::Cold),
            "exact" => Some(ScheduleSource::CacheExact),
            "warm" => Some(ScheduleSource::CacheWarm),
            _ => None,
        }
    }
}

/// Which solver configuration a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The full pipeline with its default budgets (ILP stage included).
    Default,
    /// [`bsp_sched::PipelineConfig::fast`]: sub-second local search, tiny ILPs.
    Fast,
    /// Heuristics + local search only — the paper's huge-dataset setting and
    /// the right default for latency-bounded serving.
    #[default]
    HeuristicsOnly,
    /// The coarsen–solve–refine multilevel scheduler (Figure 4) — the
    /// strongest solver on large DAGs, with a per-phase timing breakdown
    /// that traced requests surface span by span.
    Multilevel,
}

impl Mode {
    /// Wire token for this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Default => "default",
            Mode::Fast => "fast",
            Mode::HeuristicsOnly => "heuristics",
            Mode::Multilevel => "multilevel",
        }
    }

    fn parse(tok: &str) -> Option<Self> {
        match tok {
            "default" => Some(Mode::Default),
            "fast" => Some(Mode::Fast),
            "heuristics" => Some(Mode::HeuristicsOnly),
            "multilevel" => Some(Mode::Multilevel),
            _ => None,
        }
    }
}

/// Per-request options (everything between `REQ` and `DAG`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Wall-clock budget for this request; the service returns its
    /// best-so-far valid schedule once it expires.  `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Solver configuration.
    pub mode: Mode,
    /// Whether the schedule cache may be consulted and populated.
    pub use_cache: bool,
    /// Trace id this request runs under (`None` = untraced).  Assigned by
    /// the router (or the server when unsharded) and echoed in the `OK`
    /// header so clients can fetch the span tree with `TRACE <hex>`.
    pub trace: Option<u64>,
}

impl RequestOptions {
    /// Options with the cache enabled and no deadline (the wire defaults).
    pub fn new() -> Self {
        RequestOptions {
            deadline: None,
            mode: Mode::default(),
            use_cache: true,
            trace: None,
        }
    }

    /// Sets the deadline and returns the options.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the mode and returns the options.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables or disables cache use and returns the options.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Sets the trace id and returns the options.
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }
}

/// A parsed scheduling request.
#[derive(Debug, Clone)]
pub struct ScheduleRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The DAG to schedule.
    pub dag: Dag,
    /// The machine to schedule for.
    pub machine: Machine,
    /// Per-request options.
    pub options: RequestOptions,
}

/// A parsed scheduling response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResponse {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// Cost of the returned schedule on the request's DAG and machine.
    pub cost: u64,
    /// Number of supersteps of the returned schedule.
    pub supersteps: usize,
    /// Where the schedule came from.
    pub source: ScheduleSource,
    /// Server-side handling time in microseconds (queueing excluded).
    pub micros: u64,
    /// Trace id the request ran under (0 = untraced); fetch the span tree
    /// with the `TRACE` verb.
    pub trace_id: u64,
    /// The schedule itself.
    pub schedule: BspSchedule,
}

/// Every non-`OK` outcome at the service boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A protocol line did not parse.
    Malformed { line: String, reason: String },
    /// The embedded hyperDAG payload was rejected.
    Dag(HyperDagError),
    /// The machine description was rejected (`p = 0`, tree size not a power
    /// of two, ...).
    Machine(String),
    /// A fingerprint-only request named a fingerprint the server does not
    /// (or no longer does) hold; the client must resend the full payload.
    UnknownFingerprint,
    /// A `TRACE <id>` query named a trace that has fallen out of (or never
    /// entered) the bounded trace journal.
    UnknownTrace,
    /// The request was rejected because the server's admission queue is full.
    Busy,
    /// The server is shutting down.
    ShuttingDown,
    /// The peer closed the connection mid-request.
    UnexpectedEof,
    /// Transport failure.
    Io(String),
    /// The server answered `ERR` with a kind the client does not know.
    Remote { kind: String, message: String },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Malformed { line, reason } => {
                write!(f, "malformed protocol line {line:?}: {reason}")
            }
            ServeError::Dag(e) => write!(f, "bad DAG payload: {e}"),
            ServeError::Machine(msg) => write!(f, "bad machine description: {msg}"),
            ServeError::UnknownFingerprint => {
                write!(
                    f,
                    "fingerprint not in the schedule cache; resend the full payload"
                )
            }
            ServeError::UnknownTrace => {
                write!(f, "trace id not in the bounded trace journal")
            }
            ServeError::Busy => write!(f, "server admission queue is full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::UnexpectedEof => write!(f, "connection closed mid-request"),
            ServeError::Io(msg) => write!(f, "transport error: {msg}"),
            ServeError::Remote { kind, message } => write!(f, "server error [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<HyperDagError> for ServeError {
    fn from(e: HyperDagError) -> Self {
        ServeError::Dag(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl ServeError {
    /// The `<kind>` token of the `ERR` wire line.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Malformed { .. } => "malformed",
            ServeError::Dag(_) => "dag",
            ServeError::Machine(_) => "machine",
            ServeError::UnknownFingerprint => "unknown-fp",
            ServeError::UnknownTrace => "unknown-trace",
            ServeError::Busy => "busy",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::UnexpectedEof => "eof",
            ServeError::Io(_) => "io",
            ServeError::Remote { .. } => "remote",
        }
    }
}

/// One incoming protocol message, as seen by the server.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A scheduling request with a full DAG + machine payload.
    Request(Box<ScheduleRequest>),
    /// A content-addressed replay: `REQ <id>` + `FP <hex>` asks for the
    /// cached schedule of a previously submitted request, skipping the DAG
    /// payload entirely (answered with `ERR ... unknown-fp` on a miss).
    FingerprintRequest {
        /// Correlation id.
        id: u64,
        /// The full request key ([`bsp_model::RequestKey::full`]).
        fingerprint: u128,
        /// The structure key ([`bsp_model::RequestKey::structure`]), when
        /// the client sent one — lets the router route the replay to the
        /// structural family's home shard.  `None` on the legacy one-token
        /// wire form.
        structure: Option<u64>,
        /// Trace id the replay runs under (`None` = untraced).
        trace: Option<u64>,
    },
    /// A statistics query.
    Stats,
    /// The slow-request journal (`STATS SLOW`).
    SlowStats,
    /// A Prometheus-style metrics scrape (`METRICS`).
    Metrics,
    /// A span-tree query for one finished request (`TRACE <hex>`).
    Trace(u64),
    /// A liveness probe.
    Ping,
}

fn malformed(line: &str, reason: impl Into<String>) -> ServeError {
    ServeError::Malformed {
        line: line.to_string(),
        reason: reason.into(),
    }
}

fn parse_u64(line: &str, tok: Option<&str>, what: &str) -> Result<u64, ServeError> {
    tok.ok_or_else(|| malformed(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| malformed(line, format!("{what} is not a number")))
}

/// Longest protocol line the *request* parser accepts.  Every legitimate
/// request line (verbs, machine parameters, hyperDAG records) is tiny; the
/// cap keeps a newline-free hostile stream from growing a `String` without
/// bound at the trust boundary.  Response parsing is not capped — `PROC`
/// lines of large schedules are legitimately megabytes, and the response
/// side reads from a trusted server.
const MAX_REQUEST_LINE_BYTES: u64 = 1 << 20;

/// `read_line` with the request-boundary length cap.
fn read_request_line<R: BufRead>(reader: &mut R, line: &mut String) -> Result<usize, ServeError> {
    let before = line.len();
    let n = reader
        .by_ref()
        .take(MAX_REQUEST_LINE_BYTES)
        .read_line(line)?;
    if n as u64 == MAX_REQUEST_LINE_BYTES && !line[before..].ends_with('\n') {
        return Err(malformed(
            "",
            format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
        ));
    }
    Ok(n)
}

/// Validates machine parameters *before* constructing a [`Machine`] (whose
/// constructors assert).  This is the typed-error face of those assertions.
pub fn build_machine(
    kind: &str,
    p: u64,
    g: u64,
    l: u64,
    delta: Option<u64>,
) -> Result<Machine, ServeError> {
    let p = usize::try_from(p).map_err(|_| ServeError::Machine("P does not fit usize".into()))?;
    if p == 0 {
        return Err(ServeError::Machine(
            "a machine needs at least one processor".into(),
        ));
    }
    // The λ matrix is materialized as a dense P × P table and hashed per
    // request, so the boundary bounds P tightly: 512² coefficients is ~2 MB,
    // while the old 4096 limit would have let a 25-byte request line force a
    // ~134 MB allocation before any deadline applied.
    if p > 512 {
        return Err(ServeError::Machine(format!(
            "P = {p} exceeds the service limit of 512 processors"
        )));
    }
    match kind {
        "uniform" => Ok(Machine::uniform(p, g, l)),
        "tree" => {
            if !p.is_power_of_two() {
                return Err(ServeError::Machine(format!(
                    "binary-tree NUMA requires P to be a power of two, got {p}"
                )));
            }
            let delta =
                delta.ok_or_else(|| ServeError::Machine("tree machine needs a delta".into()))?;
            Ok(Machine::numa_binary_tree(p, g, l, delta))
        }
        other => Err(ServeError::Machine(format!(
            "unknown machine kind {other:?} (expected uniform|tree)"
        ))),
    }
}

/// Serializes a machine description as its wire line (without `MACHINE `).
pub fn encode_machine(machine: &Machine) -> Result<String, ServeError> {
    match machine.topology() {
        NumaTopology::Uniform => Ok(format!(
            "uniform {} {} {}",
            machine.p(),
            machine.g(),
            machine.latency()
        )),
        NumaTopology::BinaryTree { delta } => Ok(format!(
            "tree {} {} {} {delta}",
            machine.p(),
            machine.g(),
            machine.latency()
        )),
        NumaTopology::Explicit(_) => Err(ServeError::Machine(
            "explicit NUMA matrices are not supported on the wire yet".into(),
        )),
    }
}

fn parse_machine_line(line: &str) -> Result<Machine, ServeError> {
    let mut it = line.split_whitespace();
    let _verb = it.next();
    let kind = it
        .next()
        .ok_or_else(|| malformed(line, "missing machine kind"))?;
    let p = parse_u64(line, it.next(), "P")?;
    let g = parse_u64(line, it.next(), "g")?;
    let l = parse_u64(line, it.next(), "l")?;
    let delta = match it.next() {
        Some(tok) => Some(
            tok.parse()
                .map_err(|_| malformed(line, "delta is not a number"))?,
        ),
        None => None,
    };
    build_machine(kind, p, g, l, delta)
}

/// Writes a request in wire form into `out` (borrowing its parts, so the
/// client does not clone the DAG).
pub fn encode_request(
    out: &mut String,
    id: u64,
    dag: &Dag,
    machine: &Machine,
    options: &RequestOptions,
) -> Result<(), ServeError> {
    use std::fmt::Write as _;
    let _ = writeln!(out, "REQ {id}");
    let _ = writeln!(out, "MACHINE {}", encode_machine(machine)?);
    if let Some(d) = options.deadline {
        // Round up so a sub-millisecond deadline becomes 1 ms rather than
        // the wire's "0 = unbounded".
        let _ = writeln!(
            out,
            "OPTION deadline_ms {}",
            d.as_micros().div_ceil(1000).max(1)
        );
    }
    let _ = writeln!(out, "OPTION mode {}", options.mode.as_str());
    let _ = writeln!(
        out,
        "OPTION cache {}",
        if options.use_cache { "on" } else { "off" }
    );
    if let Some(trace_id) = options.trace {
        let _ = writeln!(out, "OPTION trace {trace_id:x}");
    }
    let dag_text = write_hyperdag(dag);
    let _ = writeln!(out, "DAG {}", dag_text.lines().count());
    out.push_str(&dag_text);
    if !dag_text.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("END\n");
    Ok(())
}

/// Reads the next protocol message from `reader`.  Returns `Ok(None)` on a
/// clean end of stream (peer closed between messages).
pub fn read_incoming<R: BufRead>(reader: &mut R) -> Result<Option<Incoming>, ServeError> {
    let first = loop {
        let mut line = String::new();
        if read_request_line(reader, &mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            break trimmed.to_string();
        }
    };
    let mut it = first.split_whitespace();
    match it.next() {
        Some("STATS") => match it.next() {
            None => Ok(Some(Incoming::Stats)),
            Some("SLOW") => Ok(Some(Incoming::SlowStats)),
            Some(_) => Err(malformed(&first, "expected STATS or STATS SLOW")),
        },
        Some("METRICS") => Ok(Some(Incoming::Metrics)),
        Some("TRACE") => {
            let hex = it
                .next()
                .ok_or_else(|| malformed(&first, "missing trace id"))?;
            let trace_id = u64::from_str_radix(hex, 16)
                .map_err(|_| malformed(&first, "trace id is not hex"))?;
            Ok(Some(Incoming::Trace(trace_id)))
        }
        Some("PING") => Ok(Some(Incoming::Ping)),
        Some("REQ") => {
            let id = parse_u64(&first, it.next(), "request id")?;
            read_request_body(reader, id).map(Some)
        }
        _ => Err(malformed(
            &first,
            "expected REQ, STATS, METRICS, TRACE or PING",
        )),
    }
}

/// Parses the lines of a request after its `REQ <id>` line (either a full
/// payload or a fingerprint-only replay).
fn read_request_body<R: BufRead>(reader: &mut R, id: u64) -> Result<Incoming, ServeError> {
    let mut machine: Option<Machine> = None;
    let mut options = RequestOptions::new();
    let mut dag: Option<Dag> = None;
    let mut fingerprint: Option<u128> = None;
    let mut structure: Option<u64> = None;
    loop {
        let mut line = String::new();
        if read_request_line(reader, &mut line)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("END") => break,
            Some("FP") => {
                let hex = it
                    .next()
                    .ok_or_else(|| malformed(&line, "missing fingerprint"))?;
                fingerprint = Some(
                    u128::from_str_radix(hex, 16)
                        .map_err(|_| malformed(&line, "fingerprint is not hex"))?,
                );
                // Optional second token: the structure key.  Tokens beyond
                // it are ignored for forward compatibility.
                if let Some(hex) = it.next() {
                    structure = Some(
                        u64::from_str_radix(hex, 16)
                            .map_err(|_| malformed(&line, "structure key is not hex"))?,
                    );
                }
            }
            Some("MACHINE") => machine = Some(parse_machine_line(&line)?),
            Some("OPTION") => match it.next() {
                Some("deadline_ms") => {
                    let ms = parse_u64(&line, it.next(), "deadline")?;
                    options.deadline = (ms > 0).then(|| Duration::from_millis(ms));
                }
                Some("mode") => {
                    let tok = it.next().ok_or_else(|| malformed(&line, "missing mode"))?;
                    options.mode =
                        Mode::parse(tok).ok_or_else(|| malformed(&line, "unknown mode"))?;
                }
                Some("cache") => {
                    options.use_cache = match it.next() {
                        Some("on") => true,
                        Some("off") => false,
                        _ => return Err(malformed(&line, "cache must be on|off")),
                    };
                }
                Some("trace") => {
                    let hex = it
                        .next()
                        .ok_or_else(|| malformed(&line, "missing trace id"))?;
                    let trace_id = u64::from_str_radix(hex, 16)
                        .map_err(|_| malformed(&line, "trace id is not hex"))?;
                    options.trace = (trace_id != 0).then_some(trace_id);
                }
                _ => return Err(malformed(&line, "unknown option")),
            },
            Some("DAG") => {
                let n_lines = parse_u64(&line, it.next(), "DAG line count")? as usize;
                if n_lines > 4_000_000 {
                    return Err(malformed(&line, "DAG payload exceeds the service limit"));
                }
                let mut text = String::new();
                for _ in 0..n_lines {
                    let before = text.len();
                    if read_request_line(reader, &mut text)? == 0 {
                        return Err(ServeError::UnexpectedEof);
                    }
                    if text[before..].trim() == "END" {
                        return Err(malformed(
                            "END",
                            "DAG payload shorter than its declared line count",
                        ));
                    }
                }
                dag = Some(read_hyperdag(&text)?);
            }
            _ => return Err(malformed(&line, "unknown request line")),
        }
    }
    if let Some(fingerprint) = fingerprint {
        if machine.is_some() || dag.is_some() {
            return Err(malformed(
                "FP",
                "a fingerprint request must not also carry MACHINE/DAG",
            ));
        }
        return Ok(Incoming::FingerprintRequest {
            id,
            fingerprint,
            structure,
            trace: options.trace,
        });
    }
    let machine = machine.ok_or_else(|| malformed("END", "request is missing MACHINE"))?;
    let dag = dag.ok_or_else(|| malformed("END", "request is missing DAG"))?;
    Ok(Incoming::Request(Box::new(ScheduleRequest {
        id,
        dag,
        machine,
        options,
    })))
}

/// Writes a fingerprint-only replay request in wire form into `out`.  With
/// `structure` the `FP` line carries the structure key as a second token
/// (routed by structural family when sharded); without it the legacy
/// one-token form is emitted.
pub fn encode_fingerprint_request(
    out: &mut String,
    id: u64,
    fingerprint: u128,
    structure: Option<u64>,
    trace: Option<u64>,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "REQ {id}");
    match structure {
        Some(s) => {
            let _ = writeln!(out, "FP {fingerprint:032x} {s:016x}");
        }
        None => {
            let _ = writeln!(out, "FP {fingerprint:032x}");
        }
    }
    if let Some(trace_id) = trace {
        let _ = writeln!(out, "OPTION trace {trace_id:x}");
    }
    out.push_str("END\n");
}

/// Writes a response in wire form into `out` (borrowing the schedule, so
/// the server does not clone cached schedules to encode them).
pub fn encode_response_parts(
    out: &mut String,
    id: u64,
    cost: u64,
    source: ScheduleSource,
    micros: u64,
    trace_id: u64,
    schedule: &BspSchedule,
) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "OK {id} cost {cost} supersteps {} source {} micros {micros}",
        schedule.num_supersteps(),
        source.as_str(),
    );
    if trace_id != 0 {
        let _ = write!(out, " trace {trace_id:x}");
    }
    out.push('\n');
    out.push_str("PROC");
    for &p in &schedule.assignment.proc {
        let _ = write!(out, " {p}");
    }
    out.push('\n');
    out.push_str("STEP");
    for &s in &schedule.assignment.superstep {
        let _ = write!(out, " {s}");
    }
    out.push('\n');
    let steps = schedule.comm.steps();
    let _ = writeln!(out, "COMM {}", steps.len());
    for cs in steps {
        let _ = writeln!(out, "{} {} {} {}", cs.node, cs.from, cs.to, cs.step);
    }
    out.push_str("END\n");
}

/// Writes `response` in wire form into `out`.
pub fn encode_response(out: &mut String, response: &ScheduleResponse) {
    encode_response_parts(
        out,
        response.id,
        response.cost,
        response.source,
        response.micros,
        response.trace_id,
        &response.schedule,
    );
}

/// Writes an error reply for request `id` into `out`.
pub fn encode_error(out: &mut String, id: u64, error: &ServeError) {
    use std::fmt::Write as _;
    // The message is flattened to one line (the protocol is line-delimited).
    let msg: String = error
        .to_string()
        .chars()
        .map(|c| if c == '\n' { ' ' } else { c })
        .collect();
    let _ = writeln!(out, "ERR {id} {} {msg}", error.kind());
}

/// One span of a trace as read back off the wire (names are owned — the
/// receiving side has no `&'static` table for the sending side's names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name.
    pub name: String,
    /// Nesting depth.
    pub depth: u8,
    /// Microseconds from request acceptance to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// A full trace reply (`TRACE <hex>`): identity, outcome, and span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTrace {
    /// The trace id.
    pub trace_id: u64,
    /// Outcome source token (`cold` / `exact` / `warm` / `error`).
    pub source: String,
    /// Shard index the request ran on (-1 = unsharded / local).
    pub shard: i32,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// `true` if spans were dropped for capacity.
    pub truncated: bool,
    /// The span tree, in recording order.
    pub spans: Vec<WireSpan>,
}

impl WireTrace {
    /// Converts a journal record into its wire form.
    pub fn from_record(rec: &crate::obs::TraceRecord) -> Self {
        WireTrace {
            trace_id: rec.trace_id,
            source: rec.source.to_string(),
            shard: rec.shard,
            total_us: rec.total_us,
            truncated: rec.spans.truncated(),
            spans: rec
                .spans
                .spans()
                .iter()
                .map(|s| WireSpan {
                    name: s.name.to_string(),
                    depth: s.depth,
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                })
                .collect(),
        }
    }
}

/// Writes a `TRACE` reply in wire form into `out`.
pub fn encode_trace_reply(out: &mut String, trace: &WireTrace) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "TRACE {:x} source {} shard {} total_us {} spans {}",
        trace.trace_id,
        trace.source,
        trace.shard,
        trace.total_us,
        trace.spans.len()
    );
    if trace.truncated {
        out.push_str(" truncated 1");
    }
    out.push('\n');
    for span in &trace.spans {
        let _ = writeln!(
            out,
            "SPAN {} {} {} {}",
            span.depth, span.start_us, span.dur_us, span.name
        );
    }
    out.push_str("END\n");
}

/// Reads a `TRACE` reply (or the `ERR` line answering an unknown id).
pub fn read_trace_reply<R: BufRead>(reader: &mut R) -> Result<WireTrace, ServeError> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(ServeError::UnexpectedEof);
    }
    let header = header.trim().to_string();
    let mut it = header.split_whitespace();
    match it.next() {
        Some("ERR") => {
            let _id = it.next();
            let kind = it.next().unwrap_or("unknown").to_string();
            if kind == "unknown-trace" {
                return Err(ServeError::UnknownTrace);
            }
            let message = it.collect::<Vec<_>>().join(" ");
            Err(ServeError::Remote { kind, message })
        }
        Some("TRACE") => {
            let hex = it
                .next()
                .ok_or_else(|| malformed(&header, "missing trace id"))?;
            let trace_id = u64::from_str_radix(hex, 16)
                .map_err(|_| malformed(&header, "trace id is not hex"))?;
            let mut source = String::new();
            let mut shard = -1i32;
            let mut total_us = 0u64;
            let mut n_spans = 0usize;
            let mut truncated = false;
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| malformed(&header, format!("missing value for {key}")))?;
                match key {
                    "source" => source = value.to_string(),
                    "shard" => {
                        shard = value
                            .parse()
                            .map_err(|_| malformed(&header, "shard is not a number"))?
                    }
                    "total_us" => total_us = parse_u64(&header, Some(value), "total_us")?,
                    "spans" => n_spans = parse_u64(&header, Some(value), "spans")? as usize,
                    "truncated" => truncated = value != "0",
                    _ => {} // forward-compatible: ignore unknown keys
                }
            }
            if n_spans > 100_000 {
                return Err(malformed(&header, "span count exceeds sanity limit"));
            }
            let mut spans = Vec::with_capacity(n_spans);
            let mut line = String::new();
            for _ in 0..n_spans {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    return Err(ServeError::UnexpectedEof);
                }
                let t = line.trim();
                let mut sit = t.split_whitespace();
                if sit.next() != Some("SPAN") {
                    return Err(malformed(t, "expected SPAN line"));
                }
                let depth = parse_u64(t, sit.next(), "span depth")? as u8;
                let start_us = parse_u64(t, sit.next(), "span start")?;
                let dur_us = parse_u64(t, sit.next(), "span duration")?;
                let name = sit
                    .next()
                    .ok_or_else(|| malformed(t, "missing span name"))?
                    .to_string();
                spans.push(WireSpan {
                    name,
                    depth,
                    start_us,
                    dur_us,
                });
            }
            line.clear();
            reader.read_line(&mut line)?;
            if line.trim() != "END" {
                return Err(malformed(line.trim(), "expected END after trace reply"));
            }
            Ok(WireTrace {
                trace_id,
                source,
                shard,
                total_us,
                truncated,
                spans,
            })
        }
        _ => Err(malformed(&header, "expected TRACE or ERR")),
    }
}

/// Writes a `METRICS` reply (the exposition text, framed by a line count) in
/// wire form into `out`.
pub fn encode_metrics_reply(out: &mut String, exposition: &str) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "METRICS {}", exposition.lines().count());
    out.push_str(exposition);
    if !exposition.is_empty() && !exposition.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("END\n");
}

/// Reads a `METRICS` reply, returning the exposition text.
pub fn read_metrics_reply<R: BufRead>(reader: &mut R) -> Result<String, ServeError> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(ServeError::UnexpectedEof);
    }
    let header = header.trim().to_string();
    let mut it = header.split_whitespace();
    match it.next() {
        Some("ERR") => {
            let _id = it.next();
            let kind = it.next().unwrap_or("unknown").to_string();
            let message = it.collect::<Vec<_>>().join(" ");
            Err(ServeError::Remote { kind, message })
        }
        Some("METRICS") => {
            let n_lines = parse_u64(&header, it.next(), "METRICS line count")? as usize;
            if n_lines > 1_000_000 {
                return Err(malformed(
                    &header,
                    "METRICS line count exceeds sanity limit",
                ));
            }
            let mut text = String::new();
            for _ in 0..n_lines {
                if reader.read_line(&mut text)? == 0 {
                    return Err(ServeError::UnexpectedEof);
                }
            }
            let mut end = String::new();
            reader.read_line(&mut end)?;
            if end.trim() != "END" {
                return Err(malformed(end.trim(), "expected END after METRICS reply"));
            }
            Ok(text)
        }
        _ => Err(malformed(&header, "expected METRICS or ERR")),
    }
}

/// One entry of the slow-request journal summary (`STATS SLOW`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Trace id (fetch the span tree with `TRACE <hex>`).
    pub trace_id: u64,
    /// Outcome source token.
    pub source: String,
    /// Shard index (-1 = unsharded / local).
    pub shard: i32,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
}

/// Writes a `STATS SLOW` reply in wire form into `out`.
pub fn encode_slow_reply(out: &mut String, entries: &[crate::obs::TraceRecord]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "SLOW {}", entries.len());
    for rec in entries {
        let _ = writeln!(
            out,
            "TRACESUM {:x} {} {} {}",
            rec.trace_id, rec.source, rec.shard, rec.total_us
        );
    }
    out.push_str("END\n");
}

/// Reads a `STATS SLOW` reply.
pub fn read_slow_reply<R: BufRead>(reader: &mut R) -> Result<Vec<SlowEntry>, ServeError> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(ServeError::UnexpectedEof);
    }
    let header = header.trim().to_string();
    let mut it = header.split_whitespace();
    match it.next() {
        Some("ERR") => {
            let _id = it.next();
            let kind = it.next().unwrap_or("unknown").to_string();
            let message = it.collect::<Vec<_>>().join(" ");
            Err(ServeError::Remote { kind, message })
        }
        Some("SLOW") => {
            let n = parse_u64(&header, it.next(), "SLOW count")? as usize;
            if n > 100_000 {
                return Err(malformed(&header, "SLOW count exceeds sanity limit"));
            }
            let mut entries = Vec::with_capacity(n);
            let mut line = String::new();
            for _ in 0..n {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    return Err(ServeError::UnexpectedEof);
                }
                let t = line.trim();
                let mut sit = t.split_whitespace();
                if sit.next() != Some("TRACESUM") {
                    return Err(malformed(t, "expected TRACESUM line"));
                }
                let hex = sit.next().ok_or_else(|| malformed(t, "missing trace id"))?;
                let trace_id = u64::from_str_radix(hex, 16)
                    .map_err(|_| malformed(t, "trace id is not hex"))?;
                let source = sit
                    .next()
                    .ok_or_else(|| malformed(t, "missing source"))?
                    .to_string();
                let shard: i32 = sit
                    .next()
                    .ok_or_else(|| malformed(t, "missing shard"))?
                    .parse()
                    .map_err(|_| malformed(t, "shard is not a number"))?;
                let total_us = parse_u64(t, sit.next(), "total_us")?;
                entries.push(SlowEntry {
                    trace_id,
                    source,
                    shard,
                    total_us,
                });
            }
            line.clear();
            reader.read_line(&mut line)?;
            if line.trim() != "END" {
                return Err(malformed(line.trim(), "expected END after SLOW reply"));
            }
            Ok(entries)
        }
        _ => Err(malformed(&header, "expected SLOW or ERR")),
    }
}

fn parse_usize_list(line: &str, expect: &str) -> Result<Vec<usize>, ServeError> {
    let mut it = line.split_whitespace();
    let verb = it.next().unwrap_or("");
    if verb != expect {
        return Err(malformed(line, format!("expected {expect} line")));
    }
    it.map(|tok| {
        tok.parse()
            .map_err(|_| malformed(line, format!("bad {expect} entry")))
    })
    .collect()
}

/// A reply frame captured verbatim for proxying: the router reads a frame
/// off a backend connection, rewrites the correlation id, and forwards the
/// rest of the text untouched — no schedule re-parse, no re-encode.
#[derive(Debug, Clone)]
pub struct RawReply {
    /// The correlation id the frame carried on the wire.
    pub id: u64,
    /// Whether the frame was an `ERR` line (its body is then empty).
    pub is_err: bool,
    /// The header line's tokens after the id, verbatim (no leading space).
    pub header_rest: String,
    /// Every body line (`PROC` through `END`), verbatim, newline-terminated;
    /// empty for `ERR` frames.
    pub body: String,
}

impl RawReply {
    /// Re-encodes the frame with a different correlation id.
    pub fn encode_with_id(&self, id: u64) -> String {
        let verb = if self.is_err { "ERR" } else { "OK" };
        if self.header_rest.is_empty() {
            format!("{verb} {id}\n{}", self.body)
        } else {
            format!("{verb} {id} {}\n{}", self.header_rest, self.body)
        }
    }
}

/// Reads one reply frame without parsing the schedule (see [`RawReply`]).
/// Returns `Ok(None)` on a clean end of stream between frames.
pub fn read_raw_reply<R: BufRead>(reader: &mut R) -> Result<Option<RawReply>, ServeError> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end().to_string();
    let mut it = header.splitn(3, ' ');
    let verb = it.next().unwrap_or("");
    let is_err = match verb {
        "OK" => false,
        "ERR" => true,
        _ => return Err(malformed(&header, "expected OK or ERR")),
    };
    let id = parse_u64(&header, it.next(), "reply id")?;
    let header_rest = it.next().unwrap_or("").to_string();
    let mut body = String::new();
    if !is_err {
        for expect in ["PROC", "STEP"] {
            let before = body.len();
            if reader.read_line(&mut body)? == 0 {
                return Err(ServeError::UnexpectedEof);
            }
            if !body[before..].starts_with(expect) {
                return Err(malformed(
                    body[before..].trim(),
                    format!("expected {expect} line"),
                ));
            }
        }
        let before = body.len();
        if reader.read_line(&mut body)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        let comm_header = body[before..].trim().to_string();
        let mut cit = comm_header.split_whitespace();
        if cit.next() != Some("COMM") {
            return Err(malformed(&comm_header, "expected COMM line"));
        }
        let k = parse_u64(&comm_header, cit.next(), "COMM count")? as usize;
        if k > 64_000_000 {
            return Err(malformed(&comm_header, "COMM count exceeds sanity limit"));
        }
        for _ in 0..k {
            if reader.read_line(&mut body)? == 0 {
                return Err(ServeError::UnexpectedEof);
            }
        }
        let before = body.len();
        if reader.read_line(&mut body)? == 0 {
            return Err(ServeError::UnexpectedEof);
        }
        if body[before..].trim() != "END" {
            return Err(malformed(
                body[before..].trim(),
                "expected END after response body",
            ));
        }
    }
    Ok(Some(RawReply {
        id,
        is_err,
        header_rest,
        body,
    }))
}

/// One complete reply as seen by a pipelined reader: a schedule response, or
/// a per-request `ERR` that still carries its correlation id (a serial
/// client can discard the id; a pipelined client needs it to know *which*
/// in-flight request failed).
#[derive(Debug, Clone)]
pub enum Reply {
    /// An `OK` response with its schedule.
    Ok(ScheduleResponse),
    /// An `ERR` reply; `id` 0 means a connection-level error (e.g. framing).
    Err {
        /// Correlation id of the failed request.
        id: u64,
        /// The error, as a [`ServeError::Remote`].
        error: ServeError,
    },
}

/// Reads a response (either `OK ...` + schedule or `ERR ...`) from `reader`,
/// surfacing errors without their correlation id (serial-client behaviour).
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<ScheduleResponse, ServeError> {
    match read_reply(reader)? {
        Reply::Ok(response) => Ok(response),
        Reply::Err { error, .. } => Err(error),
    }
}

/// Reads the next reply (in wire order, which under pipelining is completion
/// order, not submission order) from `reader`.
pub fn read_reply<R: BufRead>(reader: &mut R) -> Result<Reply, ServeError> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(ServeError::UnexpectedEof);
    }
    let header = header.trim().to_string();
    let mut it = header.split_whitespace();
    match it.next() {
        Some("ERR") => {
            let id = it.next().and_then(|tok| tok.parse().ok()).unwrap_or(0);
            let kind = it.next().unwrap_or("unknown").to_string();
            let message = it.collect::<Vec<_>>().join(" ");
            Ok(Reply::Err {
                id,
                error: ServeError::Remote { kind, message },
            })
        }
        Some("OK") => {
            let id = parse_u64(&header, it.next(), "response id")?;
            let mut cost = 0u64;
            let mut supersteps = 0usize;
            let mut source = ScheduleSource::Cold;
            let mut micros = 0u64;
            let mut trace_id = 0u64;
            while let Some(key) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| malformed(&header, format!("missing value for {key}")))?;
                match key {
                    "cost" => cost = parse_u64(&header, Some(value), "cost")?,
                    "supersteps" => {
                        supersteps = parse_u64(&header, Some(value), "supersteps")? as usize
                    }
                    "source" => {
                        source = ScheduleSource::parse(value)
                            .ok_or_else(|| malformed(&header, "unknown source"))?
                    }
                    "micros" => micros = parse_u64(&header, Some(value), "micros")?,
                    "trace" => {
                        trace_id = u64::from_str_radix(value, 16)
                            .map_err(|_| malformed(&header, "trace id is not hex"))?
                    }
                    _ => {} // forward-compatible: ignore unknown keys
                }
            }
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let proc = parse_usize_list(line.trim(), "PROC")?;
            line.clear();
            reader.read_line(&mut line)?;
            let superstep = parse_usize_list(line.trim(), "STEP")?;
            if proc.len() != superstep.len() {
                return Err(malformed(&line, "PROC and STEP lengths differ"));
            }
            line.clear();
            reader.read_line(&mut line)?;
            let comm_header = line.trim().to_string();
            let mut cit = comm_header.split_whitespace();
            if cit.next() != Some("COMM") {
                return Err(malformed(&comm_header, "expected COMM line"));
            }
            let k = parse_u64(&comm_header, cit.next(), "COMM count")? as usize;
            if k > 64_000_000 {
                return Err(malformed(&comm_header, "COMM count exceeds sanity limit"));
            }
            let mut steps = Vec::with_capacity(k.min(1 << 20));
            for _ in 0..k {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    return Err(ServeError::UnexpectedEof);
                }
                let t = line.trim();
                let mut sit = t.split_whitespace();
                let node = parse_u64(t, sit.next(), "comm node")? as usize;
                let from = parse_u64(t, sit.next(), "comm from")? as usize;
                let to = parse_u64(t, sit.next(), "comm to")? as usize;
                let step = parse_u64(t, sit.next(), "comm step")? as usize;
                steps.push(CommStep {
                    node,
                    from,
                    to,
                    step,
                });
            }
            line.clear();
            reader.read_line(&mut line)?;
            if line.trim() != "END" {
                return Err(malformed(line.trim(), "expected END after response body"));
            }
            Ok(Reply::Ok(ScheduleResponse {
                id,
                cost,
                supersteps,
                source,
                micros,
                trace_id,
                schedule: BspSchedule {
                    assignment: bsp_model::Assignment { proc, superstep },
                    comm: bsp_model::CommSchedule::from_steps(steps),
                },
            }))
        }
        _ => Err(malformed(&header, "expected OK or ERR")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::Assignment;
    use std::io::BufReader;

    fn diamond() -> Dag {
        Dag::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
        )
        .unwrap()
    }

    #[test]
    fn request_roundtrips_through_the_wire_encoding() {
        let request = ScheduleRequest {
            id: 42,
            dag: diamond(),
            machine: Machine::numa_binary_tree(8, 3, 5, 2),
            options: RequestOptions::new()
                .with_deadline(Duration::from_millis(250))
                .with_mode(Mode::Fast)
                .with_cache(false),
        };
        let mut wire = String::new();
        encode_request(
            &mut wire,
            request.id,
            &request.dag,
            &request.machine,
            &request.options,
        )
        .unwrap();
        let mut reader = BufReader::new(wire.as_bytes());
        let parsed = match read_incoming(&mut reader).unwrap().unwrap() {
            Incoming::Request(r) => *r,
            other => panic!("expected a request, got {other:?}"),
        };
        assert_eq!(parsed.id, 42);
        assert_eq!(parsed.options, request.options);
        assert_eq!(parsed.machine, request.machine);
        assert_eq!(parsed.dag.n(), request.dag.n());
        assert_eq!(parsed.dag.work_weights(), request.dag.work_weights());
        assert_eq!(parsed.dag.comm_weights(), request.dag.comm_weights());
        let canon = |d: &Dag| {
            let mut e: Vec<_> = d.edges().collect();
            e.sort_unstable();
            e
        };
        assert_eq!(canon(&parsed.dag), canon(&request.dag));
        // Nothing further on the stream.
        assert!(read_incoming(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_roundtrips_through_the_wire_encoding() {
        let dag = diamond();
        let schedule = BspSchedule::from_assignment_lazy(
            &dag,
            Assignment {
                proc: vec![0, 1, 0, 1],
                superstep: vec![0, 1, 1, 2],
            },
        );
        let response = ScheduleResponse {
            id: 7,
            cost: 1234,
            supersteps: 3,
            source: ScheduleSource::CacheWarm,
            micros: 987,
            trace_id: 0xabc123,
            schedule,
        };
        let mut wire = String::new();
        encode_response(&mut wire, &response);
        let parsed = read_response(&mut BufReader::new(wire.as_bytes())).unwrap();
        assert_eq!(parsed, response);
    }

    #[test]
    fn fingerprint_requests_roundtrip() {
        let mut wire = String::new();
        encode_fingerprint_request(
            &mut wire,
            9,
            0xdead_beef_0123_4567,
            Some(0xfeed),
            Some(0x77),
        );
        let parsed = read_incoming(&mut BufReader::new(wire.as_bytes()))
            .unwrap()
            .unwrap();
        match parsed {
            Incoming::FingerprintRequest {
                id,
                fingerprint,
                structure,
                trace,
            } => {
                assert_eq!(id, 9);
                assert_eq!(fingerprint, 0xdead_beef_0123_4567);
                assert_eq!(structure, Some(0xfeed));
                assert_eq!(trace, Some(0x77));
            }
            other => panic!("expected a fingerprint request, got {other:?}"),
        }
        // The legacy one-token form still parses, with no structure key.
        let legacy = "REQ 3\nFP 00ff\nEND\n";
        match read_incoming(&mut BufReader::new(legacy.as_bytes()))
            .unwrap()
            .unwrap()
        {
            Incoming::FingerprintRequest {
                id,
                fingerprint,
                structure,
                trace,
            } => {
                assert_eq!(id, 3);
                assert_eq!(fingerprint, 0xff);
                assert_eq!(structure, None);
                assert_eq!(trace, None);
            }
            other => panic!("expected a legacy fingerprint request, got {other:?}"),
        }
        // A garbled structure token is malformed, not silently dropped.
        let bad = "REQ 4\nFP 00ff zz\nEND\n";
        assert!(read_incoming(&mut BufReader::new(bad.as_bytes())).is_err());
        // Mixing FP with a payload is malformed.
        let mixed = "REQ 1\nFP 00ff\nMACHINE uniform 2 1 1\nEND\n";
        assert!(read_incoming(&mut BufReader::new(mixed.as_bytes())).is_err());
    }

    #[test]
    fn observability_verbs_parse() {
        let parse_one = |wire: &str| {
            read_incoming(&mut BufReader::new(wire.as_bytes()))
                .unwrap()
                .unwrap()
        };
        assert!(matches!(parse_one("METRICS\n"), Incoming::Metrics));
        assert!(matches!(parse_one("STATS\n"), Incoming::Stats));
        assert!(matches!(parse_one("STATS SLOW\n"), Incoming::SlowStats));
        match parse_one("TRACE ff0a\n") {
            Incoming::Trace(id) => assert_eq!(id, 0xff0a),
            other => panic!("expected a trace query, got {other:?}"),
        }
        assert!(read_incoming(&mut BufReader::new("TRACE zz\n".as_bytes())).is_err());
        assert!(read_incoming(&mut BufReader::new("STATS FAST\n".as_bytes())).is_err());
    }

    #[test]
    fn trace_replies_roundtrip() {
        let trace = WireTrace {
            trace_id: 0xbeef,
            source: "cold".to_string(),
            shard: 2,
            total_us: 1500,
            truncated: false,
            spans: vec![
                WireSpan {
                    name: "queue_wait".to_string(),
                    depth: 0,
                    start_us: 0,
                    dur_us: 12,
                },
                WireSpan {
                    name: "ml_coarsen".to_string(),
                    depth: 1,
                    start_us: 12,
                    dur_us: 900,
                },
            ],
        };
        let mut wire = String::new();
        encode_trace_reply(&mut wire, &trace);
        let parsed = read_trace_reply(&mut BufReader::new(wire.as_bytes())).unwrap();
        assert_eq!(parsed, trace);
        // Unknown traces surface as the typed error.
        let mut err_wire = String::new();
        encode_error(&mut err_wire, 0, &ServeError::UnknownTrace);
        assert!(matches!(
            read_trace_reply(&mut BufReader::new(err_wire.as_bytes())),
            Err(ServeError::UnknownTrace)
        ));
    }

    #[test]
    fn metrics_replies_roundtrip() {
        let exposition = "# TYPE x counter\nx 7\n# TYPE lat histogram\nlat_bucket{le=\"40\"} 2\n";
        let mut wire = String::new();
        encode_metrics_reply(&mut wire, exposition);
        let text = read_metrics_reply(&mut BufReader::new(wire.as_bytes())).unwrap();
        assert_eq!(text, exposition);
    }

    #[test]
    fn slow_replies_roundtrip() {
        use crate::obs::{SpanSet, TraceRecord};
        let mut spans = SpanSet::new();
        spans.push("solve", 0, 0, 800);
        let recs = vec![
            TraceRecord {
                trace_id: 0x10,
                source: "cold",
                shard: 1,
                total_us: 900,
                spans,
            },
            TraceRecord {
                trace_id: 0x11,
                source: "warm",
                shard: -1,
                total_us: 300,
                spans,
            },
        ];
        let mut wire = String::new();
        encode_slow_reply(&mut wire, &recs);
        let parsed = read_slow_reply(&mut BufReader::new(wire.as_bytes())).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].trace_id, 0x10);
        assert_eq!(parsed[0].source, "cold");
        assert_eq!(parsed[1].shard, -1);
        assert_eq!(parsed[1].total_us, 300);
    }

    #[test]
    fn trace_option_roundtrips_and_zero_means_untraced() {
        let request = ScheduleRequest {
            id: 5,
            dag: diamond(),
            machine: Machine::uniform(2, 1, 1),
            options: RequestOptions::new().with_trace(0xf00d),
        };
        let mut wire = String::new();
        encode_request(
            &mut wire,
            request.id,
            &request.dag,
            &request.machine,
            &request.options,
        )
        .unwrap();
        let parsed = match read_incoming(&mut BufReader::new(wire.as_bytes()))
            .unwrap()
            .unwrap()
        {
            Incoming::Request(r) => *r,
            other => panic!("expected a request, got {other:?}"),
        };
        assert_eq!(parsed.options.trace, Some(0xf00d));
        // `OPTION trace 0` is accepted but means untraced.
        let mut zero_wire = String::new();
        encode_request(
            &mut zero_wire,
            6,
            &request.dag,
            &request.machine,
            &RequestOptions::new().with_trace(0),
        )
        .unwrap();
        match read_incoming(&mut BufReader::new(zero_wire.as_bytes()))
            .unwrap()
            .unwrap()
        {
            Incoming::Request(r) => assert_eq!(r.options.trace, None),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn error_responses_surface_as_remote_errors() {
        let mut wire = String::new();
        encode_error(&mut wire, 3, &ServeError::Busy);
        let err = read_response(&mut BufReader::new(wire.as_bytes())).unwrap_err();
        match err {
            ServeError::Remote { kind, .. } => assert_eq!(kind, "busy"),
            other => panic!("expected a remote error, got {other:?}"),
        }
    }

    #[test]
    fn machine_validation_rejects_bad_parameters_without_panicking() {
        assert!(matches!(
            build_machine("uniform", 0, 1, 1, None),
            Err(ServeError::Machine(_))
        ));
        assert!(matches!(
            build_machine("tree", 6, 1, 1, Some(2)),
            Err(ServeError::Machine(_))
        ));
        assert!(matches!(
            build_machine("tree", 8, 1, 1, None),
            Err(ServeError::Machine(_))
        ));
        assert!(matches!(
            build_machine("mesh", 4, 1, 1, None),
            Err(ServeError::Machine(_))
        ));
        // The λ matrix is P × P, so the boundary rejects huge P before any
        // allocation is sized from it.
        assert!(matches!(
            build_machine("uniform", 4096, 1, 1, None),
            Err(ServeError::Machine(_))
        ));
        assert!(build_machine("tree", 8, 1, 5, Some(3)).is_ok());
    }

    #[test]
    fn sub_millisecond_deadlines_round_up_instead_of_vanishing() {
        let request = ScheduleRequest {
            id: 2,
            dag: diamond(),
            machine: Machine::uniform(2, 1, 1),
            options: RequestOptions::new().with_deadline(Duration::from_micros(500)),
        };
        let mut wire = String::new();
        encode_request(
            &mut wire,
            request.id,
            &request.dag,
            &request.machine,
            &request.options,
        )
        .unwrap();
        let parsed = match read_incoming(&mut BufReader::new(wire.as_bytes()))
            .unwrap()
            .unwrap()
        {
            Incoming::Request(r) => *r,
            other => panic!("expected a request, got {other:?}"),
        };
        // 500 µs is not representable on the millisecond wire; it must
        // become the tightest representable bound (1 ms), never "unbounded".
        assert_eq!(parsed.options.deadline, Some(Duration::from_millis(1)));
    }

    #[test]
    fn oversized_request_lines_are_rejected_not_buffered() {
        // A newline-free hostile stream must hit the line cap as a typed
        // error instead of growing the line buffer without bound.
        let mut wire = String::from("REQ 1\nMACHINE uniform 2 1 1 ");
        wire.extend(std::iter::repeat_n('x', 2 << 20));
        match read_incoming(&mut BufReader::new(wire.as_bytes())) {
            Err(ServeError::Malformed { reason, .. }) => {
                assert!(reason.contains("exceeds"), "got {reason:?}")
            }
            other => panic!("expected a line-cap error, got {other:?}"),
        }
        // Same for the very first line of a message.
        let wire: String = std::iter::repeat_n('y', 2 << 20).collect();
        assert!(read_incoming(&mut BufReader::new(wire.as_bytes())).is_err());
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        for wire in [
            "BOGUS\n",
            "REQ nope\n",
            "REQ 1\nMACHINE uniform 0 1 1\nEND\n",
            "REQ 1\nOPTION mode warp\nEND\n",
            "REQ 1\nMACHINE uniform 2 1 1\nDAG 3\n1 2 2\n0 0\nEND\n",
            "REQ 1\nEND\n",
        ] {
            let res = read_incoming(&mut BufReader::new(wire.as_bytes()));
            assert!(res.is_err(), "accepted {wire:?}: {res:?}");
        }
        // A cyclic DAG payload surfaces the hyperDAG error.
        let wire =
            "REQ 1\nMACHINE uniform 2 1 1\nDAG 7\n2 2 4\n0 0\n0 1\n1 1\n1 0\n0 1 1\n1 1 1\nEND\n";
        match read_incoming(&mut BufReader::new(wire.as_bytes())) {
            Err(ServeError::Dag(_)) => {}
            other => panic!("expected a DAG error, got {other:?}"),
        }
    }
}
