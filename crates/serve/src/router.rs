//! `bsp_router` — a fingerprint-range router that turns N `bsp_serve`
//! processes into one deployment.
//!
//! The router speaks the same wire protocol as a single server, so clients
//! (serial or pipelined) do not know it is there.  Every scheduling request
//! is placed by the [`crate::placement`] policy — the single ownership site
//! shared with the shards' stores: requests route by their **structure
//! key** ([`bsp_model::RequestKey::structure`]), so reweighted instances of
//! the same DAG co-locate and the owning shard's warm alias fires for the
//! whole family.  A bounded affinity directory pins each structure to the
//! home shard chosen at its first sighting; that first (cold) placement may
//! be steered to the least-loaded shard when the health probe's pooled
//! queue-wait view is fresh.  `FP <hex> [<structure-hex>]` replays follow
//! the same directory via the structure token; legacy one-token replays
//! fall back to the full-key range map, the pre-placement routing.
//! Content addressing is what makes any of this safe — re-running a
//! request on any shard yields a valid schedule for the same key.
//!
//! ## Threading model
//!
//! Per *client* connection: a reader thread (parses requests, fingerprints
//! them, picks the owning shard) and a writer thread (serializes completed
//! responses back, in completion order).  Per *shard*: one multiplexed
//! backend connection shared by all clients — the router re-tags each
//! request with a router-global backend id, remembers `backend id →
//! (connection, client id)` in a pending table, and a per-shard demux
//! thread reads response frames ([`crate::protocol::read_raw_reply`] — no
//! schedule re-parse), restores the client's id, and hands the text to the
//! owning connection's writer.  Requests from many pipelined clients thus
//! interleave freely on every backend connection.
//!
//! ## Failover
//!
//! When a shard connection dies, every request pending on it is **re-run on
//! the placement policy's failover successor**
//! ([`crate::placement::Placement::failover_successor`]; the router keeps
//! each full payload until its response arrives, so re-running is a
//! resend).  The affinity directory is deliberately not rewritten, so a
//! structure family re-homes automatically when its owner rejoins.  Replayed `FP` requests
//! fail over too; the stand-in shard typically answers `unknown-fp`, which
//! the client's fingerprint fallback turns into a full resend — degraded to
//! one extra round trip, never an error.  This is safe *because* requests
//! are content addressed: re-running a request on any shard yields a valid
//! schedule for the same key.  Dead backends are **revived lazily**: the
//! next request owned by a dead shard attempts a bounded reconnect before
//! failing over, so a backend connection closed by the shard server's own
//! idle timeout (or a restarted shard process) rejoins on first use instead
//! of staying dead until the router is rebuilt.
//!
//! ## Observability
//!
//! `STATS` and `METRICS` fan out to every live shard over short-lived
//! control connections and aggregate by **merging histogram buckets**
//! ([`crate::obs::MetricsSnapshot`]): counters and gauges sum, and an
//! aggregated quantile is computed over the pooled observations — not
//! approximated from per-shard quantiles.  The `STATS` line additionally
//! carries per-shard store counters (`s<i>_store_*`), the health probe's
//! current view of every backend (`s<i>_up`, `s<i>_probe_failures`,
//! `s<i>_backoff_ms`), and the placement policy's decision counts
//! (`placement_<decision>`, plus `placement_scrape_age_ms` — the age of the
//! load view steering decisions consult), so one line shows the aggregate,
//! which shard is misbehaving, and why traffic went where it went.  A *live* shard that fails to answer turns the whole
//! aggregate into an error rather than a silently partial sum.  `PING` is
//! answered locally.
//!
//! Every routed request gets a **trace id** (minted here unless the client
//! supplied one via `OPTION trace`), injected into the forwarded payload so
//! the shard's journal and the router's journal share the id.  `TRACE <id>`
//! answers from the router's journal and grafts the owning shard's span
//! tree (fetched over a control connection) under the router's dispatch
//! span; `STATS SLOW` reports the router-side slow log.

use crate::cache::CacheStats;
use crate::client::Client;
use crate::metrics::StoreStats;
use crate::obs::{
    write_sample, write_type, MetricsRegistry, MetricsSnapshot, SpanSet, TraceIdGen, TraceJournal,
    TraceRecord,
};
use crate::placement::{Decision, LoadView, Placement};
use crate::protocol::{
    encode_error, encode_fingerprint_request, encode_metrics_reply, encode_request,
    encode_slow_reply, encode_trace_reply, read_incoming, read_raw_reply, Incoming, RawReply,
    ServeError, WireSpan, WireTrace,
};
use crate::server::{register_conn_thread, writer_loop};
use crate::service::ServiceStats;
use bsp_model::request_key;
use std::collections::HashMap;
use std::io::{self, BufRead as _, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Capacity of the router's recent-trace ring (`TRACE <id>`).
const TRACE_RING_CAP: usize = 256;

/// Worst-N slow-log capacity (`STATS SLOW`).
const SLOW_LOG_CAP: usize = 16;

/// Configuration of the router's client-facing side.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Maximum concurrently served client connections.
    pub max_connections: usize,
    /// A client connection idle for this long is closed.
    pub idle_timeout: Duration,
    /// Cadence of the proactive shard health probe: a background thread
    /// wakes at this interval and attempts a bounded reconnect to every dead
    /// backend, so a restarted shard rejoins *before* its first owned
    /// request instead of paying the reconnect on the request path (and a
    /// quiet shard's key range does not stay in failover until traffic
    /// happens to touch it).  `None` disables the probe and keeps the purely
    /// lazy revival.
    ///
    /// This is the probe's *base* cadence: a backend that keeps refusing is
    /// retried with exponential backoff (doubling per consecutive failure,
    /// jittered, capped at [`RouterConfig::health_probe_backoff_cap`]) so a
    /// long-dead shard costs a connect attempt every cap interval, not every
    /// tick — while a freshly dead shard is still probed within one base
    /// interval of dying.
    pub health_probe_interval: Option<Duration>,
    /// Upper bound on the per-backend probe backoff.  Once a dead backend
    /// has failed enough consecutive probes, retries settle at roughly this
    /// cadence (±25 % jitter) until the backend answers again.
    pub health_probe_backoff_cap: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_connections: 128,
            idle_timeout: Duration::from_secs(30),
            health_probe_interval: Some(Duration::from_secs(2)),
            health_probe_backoff_cap: Duration::from_secs(30),
        }
    }
}

/// What the router must remember to finish (or re-run) one request.
struct PendingRoute {
    /// Writer channel of the client connection that asked.
    client_tx: Sender<String>,
    /// The client's own correlation id, restored on the way back.
    client_id: u64,
    /// The request, ready to resend on failover.
    payload: Payload,
    /// The shard currently expected to answer.
    shard: usize,
    /// The request's trace id (never 0): minted here unless the client
    /// supplied one, and injected into the forwarded payload so the shard's
    /// journal shares it.
    trace: u64,
    /// When the router admitted the request; the journal's total latency.
    accepted: Instant,
    /// The owning connection's in-flight counter (see the reader's idle
    /// gating); decremented exactly once, when the entry leaves the table
    /// with an answer.
    in_flight: Arc<AtomicU64>,
}

impl PendingRoute {
    /// Hands the final reply text to the connection writer and releases the
    /// in-flight slot.  Consumes the entry: every terminal path goes
    /// through here exactly once.
    fn finish(self, text: String) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        let _ = self.client_tx.send(text);
    }
}

enum Payload {
    /// Encoded full request (already tagged with the backend id).
    Full(Arc<String>),
    /// A fingerprint-only replay.
    Fp(u128),
}

impl Payload {
    fn encode(&self, backend_id: u64, trace: u64) -> Arc<String> {
        match self {
            Payload::Full(bytes) => Arc::clone(bytes),
            Payload::Fp(fp) => {
                let mut out = String::new();
                // No structure token on the forwarded frame: routing already
                // happened here, and the shard serves from whatever it holds.
                encode_fingerprint_request(&mut out, backend_id, *fp, None, Some(trace));
                Arc::new(out)
            }
        }
    }
}

/// One backend shard: its address and the write half of the multiplexed
/// connection (`None` once the shard is dead).
struct Backend {
    addr: SocketAddr,
    writer: Mutex<Option<BufWriter<TcpStream>>>,
    /// A clone of the stream for shutdown-time unblocking of the demux.
    stream: Mutex<Option<TcpStream>>,
    /// Bumped on every (re)connect.  A demux thread only tears down the
    /// writer of its *own* connection generation — without this, a stale
    /// demux exiting late would clear a freshly revived writer.
    generation: AtomicU64,
}

impl Backend {
    /// Writes one frame; marks the shard dead (and reports `false`) on
    /// failure.
    fn try_send(&self, bytes: &str) -> bool {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(writer) = guard.as_mut() {
            if writer.write_all(bytes.as_bytes()).is_ok() && writer.flush().is_ok() {
                return true;
            }
            *guard = None;
        }
        false
    }

    fn is_live(&self) -> bool {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }
}

/// The health probe's current view of one backend, kept shared (not probe-
/// thread-local) so `STATS` can report how hard each backend is backing off.
#[derive(Clone, Copy)]
struct ProbeStatus {
    /// Consecutive failed probes since the backend was last seen live.
    failures: u32,
    /// Earliest moment the next probe attempt is due.
    next_attempt: Instant,
}

/// The router's own registry series (shard registries are scraped, these are
/// router-side): routed-request counters by kind, failover re-runs, and the
/// placement policy's decision counters.
struct RouterSeries {
    full: Arc<AtomicU64>,
    fp: Arc<AtomicU64>,
    failovers: Arc<AtomicU64>,
    /// `bsp_placement_total{decision=...}`, indexed like [`Decision::ALL`].
    placement: [Arc<AtomicU64>; Decision::ALL.len()],
    /// `bsp_placement_scrape_age_ms` gauge: age of the load view the policy
    /// consults (`u64::MAX` before the first scrape).
    scrape_age_ms: Arc<AtomicU64>,
}

/// The router's view of per-shard load, written by the health-probe thread
/// each tick, read (and staleness-judged) by placement on the request path.
struct LoadState {
    view: LoadView,
    refreshed_at: Option<Instant>,
}

struct RouterShared {
    config: RouterConfig,
    backends: Vec<Backend>,
    pending: Mutex<HashMap<u64, PendingRoute>>,
    next_backend_id: AtomicU64,
    next_conn_id: AtomicU64,
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Parking spot of the health-probe thread; shutdown notifies it so the
    /// probe exits without waiting out its interval.
    probe_lock: Mutex<()>,
    probe_wakeup: Condvar,
    /// Per-backend probe state, written by the probe thread, read by `STATS`.
    probe_state: Mutex<Vec<ProbeStatus>>,
    /// Router-side trace journal: one record per routed request, with the
    /// owning shard recorded so `TRACE` can graft the shard's span tree.
    journal: TraceJournal,
    trace_ids: TraceIdGen,
    registry: Arc<MetricsRegistry>,
    series: RouterSeries,
    /// The single ownership site: every dispatch, replay, and failover
    /// target comes from here.
    placement: Placement,
    /// Latest per-shard queue-wait view for load-aware cold placement.
    load: Mutex<LoadState>,
}

/// A bound-but-not-yet-running router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Binds the client-facing listener and connects to every shard.
    /// Unreachable shards start dead (their key range fails over from the
    /// first request on); at least one shard must be reachable.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        shard_addrs: &[SocketAddr],
        config: RouterConfig,
    ) -> io::Result<Router> {
        if shard_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let mut backends = Vec::with_capacity(shard_addrs.len());
        let mut live = 0usize;
        for &addr in shard_addrs {
            let conn = TcpStream::connect(addr).ok().and_then(|s| {
                s.set_nodelay(true).ok()?;
                let clone = s.try_clone().ok()?;
                Some((BufWriter::new(s), clone))
            });
            let (writer, stream) = match conn {
                Some((w, s)) => {
                    live += 1;
                    (Some(w), Some(s))
                }
                None => (None, None),
            };
            let generation = u64::from(writer.is_some());
            backends.push(Backend {
                addr,
                writer: Mutex::new(writer),
                stream: Mutex::new(stream),
                generation: AtomicU64::new(generation),
            });
        }
        if live == 0 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no shard is reachable",
            ));
        }
        let registry = Arc::new(MetricsRegistry::new());
        let series = RouterSeries {
            full: registry.counter(
                "bsp_router_requests_total",
                "requests admitted by the router, by payload kind",
                &[("kind", "full")],
            ),
            fp: registry.counter(
                "bsp_router_requests_total",
                "requests admitted by the router, by payload kind",
                &[("kind", "fp")],
            ),
            failovers: registry.counter(
                "bsp_router_failovers_total",
                "pending requests re-dispatched after a shard connection died",
                &[],
            ),
            placement: Decision::ALL.map(|d| {
                registry.counter(
                    "bsp_placement_total",
                    "placement-policy routing decisions, by decision",
                    &[("decision", d.as_str())],
                )
            }),
            scrape_age_ms: registry.gauge(
                "bsp_placement_scrape_age_ms",
                "age of the load view consulted by load-aware placement",
                &[],
            ),
        };
        let probe_state = (0..backends.len())
            .map(|_| ProbeStatus {
                failures: 0,
                next_attempt: Instant::now(),
            })
            .collect();
        let shards = backends.len();
        Ok(Router {
            listener,
            shared: Arc::new(RouterShared {
                config,
                backends,
                pending: Mutex::new(HashMap::new()),
                next_backend_id: AtomicU64::new(1),
                next_conn_id: AtomicU64::new(0),
                shutting_down: AtomicBool::new(false),
                conns: Mutex::new(HashMap::new()),
                conn_threads: Mutex::new(Vec::new()),
                probe_lock: Mutex::new(()),
                probe_wakeup: Condvar::new(),
                probe_state: Mutex::new(probe_state),
                journal: TraceJournal::new(TRACE_RING_CAP, SLOW_LOG_CAP),
                trace_ids: TraceIdGen::new(),
                registry,
                series,
                placement: Placement::new(shards),
                load: Mutex::new(LoadState {
                    view: LoadView::default(),
                    refreshed_at: None,
                }),
            }),
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the demux and acceptor threads; returns the controlling handle.
    pub fn spawn(self) -> io::Result<RouterHandle> {
        let addr = self.listener.local_addr()?;
        let shared = self.shared;
        let mut demuxers = Vec::new();
        for shard in 0..shared.backends.len() {
            let stream = {
                let guard = shared.backends[shard]
                    .stream
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                guard.as_ref().and_then(|s| s.try_clone().ok())
            };
            let Some(stream) = stream else { continue };
            let generation = shared.backends[shard].generation.load(Ordering::SeqCst);
            let shared = Arc::clone(&shared);
            demuxers.push(
                std::thread::Builder::new()
                    .name(format!("bsp-router-demux-{shard}"))
                    .spawn(move || demux_loop(&shared, shard, generation, stream))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("bsp-router-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };
        let probe = match shared.config.health_probe_interval {
            Some(interval) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("bsp-router-health-probe".into())
                        .spawn(move || probe_loop(&shared, interval))?,
                )
            }
            None => None,
        };
        Ok(RouterHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            demuxers,
            probe,
        })
    }
}

/// Handle to a running router: address, shard liveness, shutdown.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    demuxers: Vec<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shards the router fronts (live or dead).
    pub fn num_shards(&self) -> usize {
        self.shared.backends.len()
    }

    /// Which shards still have a live backend connection.
    pub fn live_shards(&self) -> Vec<usize> {
        (0..self.shared.backends.len())
            .filter(|&i| self.shared.backends[i].is_live())
            .collect()
    }

    /// Graceful shutdown: stop admission, drop every connection, join every
    /// thread.  The shard processes are left running — they belong to the
    /// deployment, not to the router.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Take the probe's mutex before notifying: the probe holds it except
        // while parked in `wait_timeout`, so acquiring it first means the
        // notify can never fall between the probe's flag check and its
        // re-park (a bare notify would be lost there and shutdown would wait
        // out a whole probe interval).
        {
            let _parked = self
                .shared
                .probe_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.probe_wakeup.notify_all();
        }
        if let Some(probe) = self.probe.take() {
            let _ = probe.join();
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for backend in &self.shared.backends {
            let guard = backend.stream.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(stream) = guard.as_ref() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for demux in self.demuxers.drain(..) {
            let _ = demux.join();
        }
        // Dropping the pending table releases the last writer-channel
        // senders, letting every connection writer thread exit.
        self.shared
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        let handles: Vec<_> = {
            let mut threads = self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            threads.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    for conn in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let at_capacity = {
            let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            conns.len() >= shared.config.max_connections.max(1)
        };
        if at_capacity {
            let mut reply = String::new();
            encode_error(&mut reply, 0, &ServeError::Busy);
            let mut stream = stream;
            let _ = stream.write_all(reply.as_bytes());
            continue;
        }
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(conn_id, registered);
        let thread_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("bsp-router-conn-{conn_id}"))
            .spawn(move || {
                let _ = route_connection(&thread_shared, stream);
                thread_shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&conn_id);
            });
        match spawned {
            Ok(handle) => register_conn_thread(&shared.conn_threads, handle),
            Err(_) => {
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&conn_id);
            }
        }
    }
}

/// How long a backend revival may spend connecting (a dead process on the
/// same box refuses instantly; a dead box must not stall dispatch).
const RECONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Lazily revives a dead backend connection.  Backend connections die for
/// mundane reasons — the shard server's own idle timeout closes a quiet
/// multiplexed connection, shard processes get restarted — and the router
/// must not treat either as permanent: the next request owned by the shard
/// reconnects instead of failing over forever.
fn ensure_live(shared: &Arc<RouterShared>, shard: usize) {
    let backend = &shared.backends[shard];
    if backend.is_live() || shared.shutting_down.load(Ordering::SeqCst) {
        return;
    }
    let Ok(stream) = TcpStream::connect_timeout(&backend.addr, RECONNECT_TIMEOUT) else {
        return;
    };
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let (Ok(demux_stream), Ok(registered)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    let generation = {
        let mut writer = backend.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.is_some() {
            return; // raced another revival; drop our socket
        }
        *writer = Some(BufWriter::new(stream));
        *backend.stream.lock().unwrap_or_else(|e| e.into_inner()) = Some(registered);
        backend.generation.fetch_add(1, Ordering::SeqCst) + 1
    };
    let thread_shared = Arc::clone(shared);
    if let Ok(handle) = std::thread::Builder::new()
        .name(format!("bsp-router-demux-{shard}-gen{generation}"))
        .spawn(move || demux_loop(&thread_shared, shard, generation, demux_stream))
    {
        register_conn_thread(&shared.conn_threads, handle);
    }
    // Shutdown may have started while we were reviving; make sure the fresh
    // connection is torn down too so the new demux thread joins promptly
    // (shutdown's own sweep may have run before we registered the stream).
    if shared.shutting_down.load(Ordering::SeqCst) {
        let guard = backend.stream.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = guard.as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// How long until the `failures`-th consecutive failed probe of a backend is
/// retried: `base · 2^(failures-1)`, capped at `cap`, with ±25 % deterministic
/// jitter derived from `seed` (xorshift) so a fleet of routers probing the
/// same dead shard does not reconnect in lockstep.  `failures == 0` means the
/// backend has not failed a probe yet and is due immediately.  The result
/// never drops below `base` (for `failures > 0`) and never exceeds `cap`.
pub fn probe_backoff(base: Duration, cap: Duration, failures: u32, seed: u64) -> Duration {
    if failures == 0 {
        return Duration::ZERO;
    }
    let base_ns = base.as_nanos().max(1);
    let cap_ns = cap.as_nanos().max(base_ns);
    let shift = (failures - 1).min(32);
    let raw_ns = base_ns.saturating_mul(1u128 << shift).min(cap_ns);
    // xorshift64*: cheap, stateless, and good enough to de-correlate probes.
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let span = raw_ns / 4;
    let jitter = if span == 0 {
        0
    } else {
        u128::from(x) % (2 * span + 1)
    };
    let jittered = (raw_ns - span + jitter).clamp(base_ns, cap_ns);
    Duration::from_nanos(u64::try_from(jittered).unwrap_or(u64::MAX))
}

/// The proactive shard health probe: wakes every `interval` (the base
/// cadence) and attempts a bounded reconnect ([`ensure_live`]) to each dead
/// backend that is *due* — consecutive failures push a backend's next
/// attempt out exponentially ([`probe_backoff`]), so a shard that stays down
/// for minutes is probed at the cap cadence instead of hammered every tick.
/// The failure count resets the moment the backend is observed live (by the
/// probe or by the lazy request-path revival), so a fresh death is probed
/// within one base interval again.  Revival restores the multiplexed writer
/// and spawns a fresh demux generation, exactly as the lazy request-path
/// revival does — the probe just pays that cost off the request path.
fn probe_loop(shared: &Arc<RouterShared>, interval: Duration) {
    let cap = shared.config.health_probe_backoff_cap.max(interval);
    let n = shared.backends.len();
    let mut guard = shared.probe_lock.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let (g, _) = shared
            .probe_wakeup
            .wait_timeout(guard, interval)
            .unwrap_or_else(|e| e.into_inner());
        guard = g;
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        for shard in 0..n {
            if shared.backends[shard].is_live() {
                set_probe_status(shared, shard, 0, now);
                continue;
            }
            let due = {
                let state = shared.probe_state.lock().unwrap_or_else(|e| e.into_inner());
                state.get(shard).is_none_or(|s| now >= s.next_attempt)
            };
            if !due {
                continue;
            }
            ensure_live(shared, shard);
            if shared.backends[shard].is_live() {
                set_probe_status(shared, shard, 0, now);
            } else {
                let failures = {
                    let state = shared.probe_state.lock().unwrap_or_else(|e| e.into_inner());
                    state.get(shard).map_or(1, |s| s.failures.saturating_add(1))
                };
                let seed = (shard as u64) << 32 | u64::from(failures);
                let next = now + probe_backoff(interval, cap, failures, seed);
                set_probe_status(shared, shard, failures, next);
            }
        }
        // Same tick, second duty: refresh the queue-wait view that feeds
        // load-aware cold placement.  Skipped when shutdown has begun so the
        // probe joins without paying a scrape round.
        if !shared.shutting_down.load(Ordering::SeqCst) {
            refresh_load_view(shared);
        }
    }
}

/// Writes one backend's probe view; `STATS` reads it via `router_stats_line`.
fn set_probe_status(shared: &RouterShared, shard: usize, failures: u32, next_attempt: Instant) {
    let mut state = shared.probe_state.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = state.get_mut(shard) {
        slot.failures = failures;
        slot.next_attempt = next_attempt;
    }
}

/// Bound on each per-shard load scrape; a wedged shard costs one slot of the
/// probe tick, never the request path (placement just sees a `None` p50).
const LOAD_SCRAPE_TIMEOUT: Duration = Duration::from_millis(500);

/// Refreshes the load view from every live shard's `METRICS` exposition.
/// Unlike [`scrape_shards`], this is deliberately *partial-tolerant*: a
/// shard that is dead or does not answer gets a `None` slot (placement
/// never steers *to* an unknown shard and never steers *away* from an
/// unknown owner), because a mostly-fresh view beats no view for load
/// balancing, while an aggregate stat line must never be silently partial.
fn refresh_load_view(shared: &RouterShared) {
    let p50s: Vec<Option<u64>> = shared
        .backends
        .iter()
        .map(|backend| {
            if !backend.is_live() {
                return None;
            }
            Client::connect_with_timeout(backend.addr, LOAD_SCRAPE_TIMEOUT)
                .ok()
                .and_then(|mut client| client.metrics().ok())
                .and_then(|text| MetricsSnapshot::parse(&text).ok())
                .and_then(|snap| {
                    snap.histogram("bsp_queue_wait_micros")
                        .map(|h| h.quantile_micros(0.5))
                })
        })
        .collect();
    let mut load = shared.load.lock().unwrap_or_else(|e| e.into_inner());
    load.view = LoadView {
        queue_wait_p50_us: p50s,
    };
    load.refreshed_at = Some(Instant::now());
}

/// The load view, iff it is *fresh*: refreshed within three base probe
/// intervals and carrying at least one known p50.  With probing disabled
/// there is never a fresh view, so placement degrades to pure (and fully
/// deterministic) range ownership — exactly the behaviour a test or a
/// single-box deployment wants.
fn fresh_load_view(shared: &RouterShared) -> Option<LoadView> {
    let interval = shared.config.health_probe_interval?;
    let load = shared.load.lock().unwrap_or_else(|e| e.into_inner());
    let refreshed = load.refreshed_at?;
    if refreshed.elapsed() > interval * 3 {
        return None;
    }
    if load.view.queue_wait_p50_us.iter().all(Option::is_none) {
        return None;
    }
    Some(load.view.clone())
}

/// Milliseconds since the last load scrape; `u64::MAX` before the first
/// (rendered as-is — "never" must not read as "perfectly fresh").
fn load_scrape_age_ms(shared: &RouterShared) -> u64 {
    let load = shared.load.lock().unwrap_or_else(|e| e.into_inner());
    load.refreshed_at.map_or(u64::MAX, |at| {
        u64::try_from(at.elapsed().as_millis()).unwrap_or(u64::MAX)
    })
}

/// Counts one placement decision on `bsp_placement_total`.
fn count_decision(shared: &RouterShared, decision: Decision) {
    if let Some(idx) = Decision::ALL.iter().position(|&d| d == decision) {
        shared.series.placement[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// Sends the pending request `backend_id` to its preferred shard, walking
/// the ring on (and lazily reviving) dead shards; errors out to the client
/// when nothing is live.
fn dispatch(shared: &Arc<RouterShared>, backend_id: u64, preferred: usize) {
    let n = shared.backends.len();
    let bytes = {
        let pending = shared.pending.lock().unwrap_or_else(|e| e.into_inner());
        match pending.get(&backend_id) {
            Some(entry) => entry.payload.encode(backend_id, entry.trace),
            None => return, // already answered (or cancelled)
        }
    };
    for attempt in 0..n {
        let shard = (preferred + attempt) % n;
        ensure_live(shared, shard);
        // Record the target *before* sending: if the shard dies in the send
        // window, its `fail_over` scan must already see this entry, or the
        // request would be stranded in the pending table forever.  The
        // worst case of the pre-recording is a duplicate re-run, whose
        // second response is dropped as an unknown id.
        {
            let mut pending = shared.pending.lock().unwrap_or_else(|e| e.into_inner());
            match pending.get_mut(&backend_id) {
                Some(entry) => entry.shard = shard,
                None => return, // answered while we were walking the ring
            }
        }
        if shared.backends[shard].try_send(&bytes) {
            return;
        }
    }
    // Every shard is dead: fail the request.
    let entry = shared
        .pending
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&backend_id);
    if let Some(entry) = entry {
        journal_route(shared, &entry, "error", -1);
        let mut out = String::new();
        encode_error(
            &mut out,
            entry.client_id,
            &ServeError::Io("no live shard can serve the request".into()),
        );
        entry.finish(out);
    }
}

/// Records one finished route in the router's journal: a single
/// `router_dispatch` span covering admission → reply, tagged with the shard
/// that answered (`-1` when none did).
fn journal_route(shared: &RouterShared, entry: &PendingRoute, source: &'static str, shard: i32) {
    let total_us = u64::try_from(entry.accepted.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut spans = SpanSet::new();
    spans.push("router_dispatch", 0, 0, total_us);
    shared.journal.record(TraceRecord {
        trace_id: entry.trace,
        source,
        shard,
        total_us,
        spans,
    });
}

/// Maps a raw reply's OK-header `source` token to the journal's static
/// label; errors and unrecognized tokens both read as `"error"`.
fn reply_source_token(raw: &RawReply) -> &'static str {
    if raw.is_err {
        return "error";
    }
    let mut it = raw.header_rest.split_whitespace();
    while let Some(key) = it.next() {
        let value = it.next();
        if key == "source" {
            return match value {
                Some("cold") => "cold",
                Some("exact") => "exact",
                Some("warm") => "warm",
                _ => "error",
            };
        }
    }
    "error"
}

/// Re-runs everything pending on a dead shard on the remaining live ones.
/// `generation` scopes the teardown: only the writer of the connection the
/// exiting demux belonged to is cleared, never a newer revival's.
fn fail_over(shared: &Arc<RouterShared>, dead_shard: usize, generation: u64) {
    {
        let backend = &shared.backends[dead_shard];
        let mut writer = backend.writer.lock().unwrap_or_else(|e| e.into_inner());
        if backend.generation.load(Ordering::SeqCst) == generation {
            *writer = None;
        }
    }
    if shared.shutting_down.load(Ordering::SeqCst) {
        return;
    }
    let stranded: Vec<u64> = {
        let pending = shared.pending.lock().unwrap_or_else(|e| e.into_inner());
        pending
            .iter()
            .filter(|(_, entry)| entry.shard == dead_shard)
            .map(|(&id, _)| id)
            .collect()
    };
    shared
        .series
        .failovers
        .fetch_add(stranded.len() as u64, Ordering::Relaxed);
    let successor = shared.placement.failover_successor(dead_shard);
    for backend_id in stranded {
        count_decision(shared, Decision::Failover);
        dispatch(shared, backend_id, successor);
    }
}

/// The per-shard demux: reads response frames off the multiplexed backend
/// connection, restores the client correlation id, and hands the text to
/// the owning connection's writer.  Exit means the shard died.
fn demux_loop(shared: &Arc<RouterShared>, shard: usize, generation: u64, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some(raw)) = read_raw_reply(&mut reader) {
        let entry = shared
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&raw.id);
        // An unknown id can only be a duplicate from a raced failover
        // re-run; the first answer already won.
        if let Some(entry) = entry {
            journal_route(shared, &entry, reply_source_token(&raw), shard as i32);
            let text = raw.encode_with_id(entry.client_id);
            entry.finish(text);
        }
    }
    fail_over(shared, shard, generation);
}

/// Scrapes the `METRICS` exposition of every live shard over fresh control
/// connections (the multiplexed backend connections carry only id-tagged
/// frames).  A live shard that fails to answer makes the scrape an error,
/// never a silently partial aggregate a dashboard would misread as a
/// traffic drop.  Connects and reads are bounded so a wedged shard cannot
/// hang the client connection's reader inside this fan-out.
fn scrape_shards(shared: &RouterShared) -> Result<Vec<(usize, MetricsSnapshot)>, ServeError> {
    let mut snaps = Vec::new();
    for (i, backend) in shared.backends.iter().enumerate() {
        if !backend.is_live() {
            continue;
        }
        let text = Client::connect_with_timeout(backend.addr, shared.config.idle_timeout)
            .ok()
            .and_then(|mut client| client.metrics().ok());
        let Some(text) = text else {
            return Err(ServeError::Io(format!(
                "live shard {i} did not answer METRICS; refusing a partial aggregate"
            )));
        };
        let snap = MetricsSnapshot::parse(&text)
            .map_err(|e| ServeError::Io(format!("shard {i} exposition: {e}")))?;
        snaps.push((i, snap));
    }
    if snaps.is_empty() {
        return Err(ServeError::Io("no live shard answered METRICS".into()));
    }
    Ok(snaps)
}

/// Merges per-shard snapshots into one (counters and gauges sum, histogram
/// buckets pool).
fn merge_snapshots(snaps: &[(usize, MetricsSnapshot)]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for (_, snap) in snaps {
        merged.merge_from(snap);
    }
    merged
}

/// Rebuilds the `STATS` wire view from a merged exposition.  The payoff over
/// the old scalar aggregation: the quantiles are computed from the *pooled*
/// histogram buckets of every shard, not the per-shard maximum — a p50 over
/// the union of observations, exactly what a single unsharded server would
/// report.
fn stats_from_snapshot(merged: &MetricsSnapshot) -> ServiceStats {
    let c = |key: &str| merged.counter(key).unwrap_or(0);
    let g = |key: &str| merged.gauges.get(key).copied().unwrap_or(0);
    let q = |source: &str| {
        merged
            .histogram(&format!(
                "bsp_request_latency_micros{{source=\"{source}\"}}"
            ))
            .map_or((0, 0), |h| {
                (h.quantile_micros(0.5), h.quantile_micros(0.99))
            })
    };
    ServiceStats {
        requests: merged.counter_sum("bsp_requests_total"),
        cache: CacheStats {
            hits: c("bsp_cache_ops_total{op=\"hit\"}"),
            misses: c("bsp_cache_ops_total{op=\"miss\"}"),
            warm_hits: c("bsp_cache_ops_total{op=\"warm_hit\"}"),
            warm_fallbacks: c("bsp_cache_ops_total{op=\"warm_fallback\"}"),
            insertions: c("bsp_cache_ops_total{op=\"insertion\"}"),
            evictions: c("bsp_cache_ops_total{op=\"eviction\"}"),
            bytes_used: g("bsp_cache_bytes") as usize,
            entries: g("bsp_cache_entries") as usize,
        },
        cold_us: q("cold"),
        exact_us: q("exact"),
        warm_us: q("warm"),
        store: StoreStats {
            loaded: c("bsp_store_events_total{event=\"loaded\"}"),
            recovered_bytes: c("bsp_store_recovered_bytes_total"),
            dropped_corrupt: c("bsp_store_events_total{event=\"dropped_corrupt\"}"),
            compactions: c("bsp_store_events_total{event=\"compaction\"}"),
            write_errors: c("bsp_store_events_total{event=\"write_error\"}"),
            appended: c("bsp_store_events_total{event=\"appended\"}"),
            dropped_foreign: c("bsp_store_events_total{event=\"dropped_foreign\"}"),
            adopted_foreign: c("bsp_store_events_total{event=\"adopted_foreign\"}"),
        },
    }
}

/// Builds the router's `STATS` reply: the aggregate line (pooled-histogram
/// quantiles), then per-shard store counters (`s<i>_store_*` — a shard-local
/// write-error burst must not hide inside the fleet sum), then the probe's
/// view of every backend (`s<i>_up`, `s<i>_probe_failures`,
/// `s<i>_backoff_ms`), then the placement tail: one `placement_<decision>`
/// count per [`Decision`] and `placement_scrape_age_ms`, the age of the
/// load view steering consults (`u64::MAX` before the first scrape).  All
/// additions ride the wire line's unknown-keys-ignored forward
/// compatibility.
fn router_stats_line(shared: &RouterShared) -> Result<String, ServeError> {
    use std::fmt::Write as _;
    let snaps = scrape_shards(shared)?;
    let merged = merge_snapshots(&snaps);
    let mut line = stats_from_snapshot(&merged).to_wire();
    for (i, snap) in &snaps {
        let c = |key: &str| snap.counter(key).unwrap_or(0);
        for (suffix, value) in [
            (
                "store_loaded",
                c("bsp_store_events_total{event=\"loaded\"}"),
            ),
            (
                "store_recovered_bytes",
                c("bsp_store_recovered_bytes_total"),
            ),
            (
                "store_dropped_corrupt",
                c("bsp_store_events_total{event=\"dropped_corrupt\"}"),
            ),
            (
                "store_compactions",
                c("bsp_store_events_total{event=\"compaction\"}"),
            ),
            (
                "store_write_errors",
                c("bsp_store_events_total{event=\"write_error\"}"),
            ),
            (
                "store_appended",
                c("bsp_store_events_total{event=\"appended\"}"),
            ),
            (
                "store_dropped_foreign",
                c("bsp_store_events_total{event=\"dropped_foreign\"}"),
            ),
            (
                "store_adopted_foreign",
                c("bsp_store_events_total{event=\"adopted_foreign\"}"),
            ),
        ] {
            let _ = write!(line, " s{i}_{suffix} {value}");
        }
    }
    let now = Instant::now();
    let probe = shared.probe_state.lock().unwrap_or_else(|e| e.into_inner());
    for (i, backend) in shared.backends.iter().enumerate() {
        let up = u64::from(backend.is_live());
        let (failures, backoff_ms) = probe.get(i).map_or((0, 0), |p| {
            (
                u64::from(p.failures),
                u64::try_from(p.next_attempt.saturating_duration_since(now).as_millis())
                    .unwrap_or(u64::MAX),
            )
        });
        let _ = write!(
            line,
            " s{i}_up {up} s{i}_probe_failures {failures} s{i}_backoff_ms {backoff_ms}"
        );
    }
    drop(probe);
    for (idx, decision) in Decision::ALL.iter().enumerate() {
        let _ = write!(
            line,
            " placement_{} {}",
            decision.as_str(),
            shared.series.placement[idx].load(Ordering::Relaxed)
        );
    }
    let _ = write!(
        line,
        " placement_scrape_age_ms {}",
        load_scrape_age_ms(shared)
    );
    line.push('\n');
    Ok(line)
}

/// Builds the router's `METRICS` exposition: the pooled shard series, the
/// router's own registry, and a `bsp_backend_up` gauge per backend.
fn router_metrics(shared: &RouterShared) -> Result<String, ServeError> {
    let snaps = scrape_shards(shared)?;
    let merged = merge_snapshots(&snaps);
    let mut out = String::new();
    merged.render(&mut out);
    shared
        .series
        .scrape_age_ms
        .store(load_scrape_age_ms(shared), Ordering::Relaxed);
    shared.registry.render(&mut out);
    write_type(&mut out, "bsp_backend_up", "gauge");
    for (i, backend) in shared.backends.iter().enumerate() {
        write_sample(
            &mut out,
            "bsp_backend_up",
            &format!("backend=\"{i}\""),
            u64::from(backend.is_live()),
        );
    }
    Ok(out)
}

/// Fetches `trace_id`'s span tree from one shard over a control connection.
fn fetch_shard_trace(shared: &RouterShared, shard: usize, trace_id: u64) -> Option<WireTrace> {
    let backend = shared.backends.get(shard)?;
    if !backend.is_live() {
        return None;
    }
    let mut client = Client::connect_with_timeout(backend.addr, shared.config.idle_timeout).ok()?;
    client.trace(trace_id).ok()
}

/// Answers `TRACE <id>`: the router's own journal record with the owning
/// shard's span tree grafted one depth level down.  The shard's clock starts
/// at its own admission, so the residual between the router total and the
/// shard total — network and demux time — is split evenly before and after
/// the grafted subtree.  A trace the router has aged out is still looked up
/// on every live shard before reporting unknown.
fn router_trace(shared: &RouterShared, trace_id: u64, out: &mut String) {
    if let Some(rec) = shared.journal.lookup(trace_id) {
        let mut wire = WireTrace::from_record(&rec);
        if rec.shard >= 0 {
            if let Some(shard_trace) = fetch_shard_trace(shared, rec.shard as usize, trace_id) {
                let offset = rec.total_us.saturating_sub(shard_trace.total_us) / 2;
                wire.truncated |= shard_trace.truncated;
                for span in &shard_trace.spans {
                    wire.spans.push(WireSpan {
                        name: span.name.clone(),
                        depth: span.depth.saturating_add(1),
                        start_us: span.start_us.saturating_add(offset),
                        dur_us: span.dur_us,
                    });
                }
            }
        }
        encode_trace_reply(out, &wire);
        return;
    }
    for (i, backend) in shared.backends.iter().enumerate() {
        if !backend.is_live() {
            continue;
        }
        if let Some(wire) = fetch_shard_trace(shared, i, trace_id) {
            encode_trace_reply(out, &wire);
            return;
        }
    }
    encode_error(out, 0, &ServeError::UnknownTrace);
}

/// The per-client-connection reader: fingerprints requests, registers them
/// in the pending table, and dispatches them to the owning shard.
fn route_connection(shared: &Arc<RouterShared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.idle_timeout))?;
    let writer_stream = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("bsp-router-conn-writer".into())
        .spawn(move || writer_loop(writer_stream, &rx))?;
    // The writer may outlive the reader while failover re-runs are in
    // flight, so it is joined by shutdown, not by the reader.
    register_conn_thread(&shared.conn_threads, writer);
    let in_flight = Arc::new(AtomicU64::new(0));
    let mut reader = BufReader::new(stream);
    loop {
        // Same idle-vs-working distinction as the server's reader: a read
        // timeout only closes the connection when nothing is pending on the
        // shards for it.
        match reader.fill_buf() {
            Ok([]) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if in_flight.load(Ordering::SeqCst) > 0 {
                    continue;
                }
                let mut out = String::new();
                encode_error(
                    &mut out,
                    0,
                    &ServeError::Io("connection idle timeout".into()),
                );
                let _ = tx.send(out);
                break;
            }
            Err(_) => break,
        }
        match read_incoming(&mut reader) {
            Ok(None) => break,
            Ok(Some(Incoming::Ping)) => {
                if tx.send("PONG\n".to_string()).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Stats)) => {
                let out = match router_stats_line(shared) {
                    Ok(line) => line,
                    Err(err) => {
                        let mut line = String::new();
                        encode_error(&mut line, 0, &err);
                        line
                    }
                };
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::SlowStats)) => {
                let mut out = String::new();
                encode_slow_reply(&mut out, &shared.journal.snapshot_slow());
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Metrics)) => {
                let mut out = String::new();
                match router_metrics(shared) {
                    Ok(exposition) => encode_metrics_reply(&mut out, &exposition),
                    Err(err) => encode_error(&mut out, 0, &err),
                }
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Trace(trace_id))) => {
                let mut out = String::new();
                router_trace(shared, trace_id, &mut out);
                if tx.send(out).is_err() {
                    break;
                }
            }
            Ok(Some(Incoming::Request(mut request))) => {
                let key = request_key(&request.dag, &request.machine);
                let backend_id = shared.next_backend_id.fetch_add(1, Ordering::Relaxed);
                // Mint (or adopt) the trace id *before* encoding, so the
                // forwarded payload carries it and the shard journals under
                // the same id the client is told.
                let trace = request
                    .options
                    .trace
                    .unwrap_or_else(|| shared.trace_ids.mint());
                request.options.trace = Some(trace);
                shared.series.full.fetch_add(1, Ordering::Relaxed);
                let mut payload = String::new();
                if let Err(err) = encode_request(
                    &mut payload,
                    backend_id,
                    &request.dag,
                    &request.machine,
                    &request.options,
                ) {
                    let mut out = String::new();
                    encode_error(&mut out, request.id, &err);
                    let _ = tx.send(out);
                    continue;
                }
                let load = fresh_load_view(shared);
                let (shard, decision) =
                    shared.placement.place_request(key.structure, load.as_ref());
                count_decision(shared, decision);
                in_flight.fetch_add(1, Ordering::SeqCst);
                shared
                    .pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        backend_id,
                        PendingRoute {
                            client_tx: tx.clone(),
                            client_id: request.id,
                            payload: Payload::Full(Arc::new(payload)),
                            shard,
                            trace,
                            accepted: Instant::now(),
                            in_flight: Arc::clone(&in_flight),
                        },
                    );
                dispatch(shared, backend_id, shard);
            }
            Ok(Some(Incoming::FingerprintRequest {
                id,
                fingerprint,
                structure,
                trace,
            })) => {
                let backend_id = shared.next_backend_id.fetch_add(1, Ordering::Relaxed);
                let trace = trace.unwrap_or_else(|| shared.trace_ids.mint());
                shared.series.fp.fetch_add(1, Ordering::Relaxed);
                let (shard, decision) = shared.placement.place_replay(fingerprint, structure);
                count_decision(shared, decision);
                in_flight.fetch_add(1, Ordering::SeqCst);
                shared
                    .pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        backend_id,
                        PendingRoute {
                            client_tx: tx.clone(),
                            client_id: id,
                            payload: Payload::Fp(fingerprint),
                            shard,
                            trace,
                            accepted: Instant::now(),
                            in_flight: Arc::clone(&in_flight),
                        },
                    );
                dispatch(shared, backend_id, shard);
            }
            Err(err) => {
                let mut out = String::new();
                encode_error(&mut out, 0, &err);
                let _ = tx.send(out);
                break;
            }
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_range_maps_partition_the_key_space_evenly_and_totally() {
        for shards in 1..=5usize {
            let placement = Placement::new(shards);
            // Every key maps to a valid shard, under both range maps.
            for fp in [0u128, 1, u128::MAX, u128::MAX / 2, 0xdead_beef << 64] {
                assert!(placement.full_owner(fp) < shards);
                assert!(placement.structure_owner(fp as u64) < shards);
            }
            // Range boundaries are monotone: a larger key never maps to a
            // smaller shard.
            let mut last = 0;
            for i in 0..64u32 {
                let structure = (u64::MAX / 64) * u64::from(i);
                let s = placement.structure_owner(structure);
                assert!(s >= last, "owner map must be monotone in the key");
                assert_eq!(
                    s,
                    Placement::new(shards).structure_owner(structure),
                    "the range map is deterministic across router restarts"
                );
                last = s;
            }
            assert_eq!(last, shards - 1, "top of the range reaches the last shard");
        }
    }

    #[test]
    fn probe_backoff_grows_exponentially_and_saturates_at_the_cap() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(30);
        assert_eq!(probe_backoff(base, cap, 0, 7), Duration::ZERO);
        let mut last = Duration::ZERO;
        for failures in 1..=20u32 {
            let d = probe_backoff(base, cap, failures, 7);
            assert!(d >= base, "backoff never drops below the base interval");
            assert!(d <= cap, "backoff never exceeds the cap");
            // The nominal (un-jittered) value doubles; ±25 % jitter cannot
            // undo a doubling, so consecutive backoffs are non-decreasing
            // until both sides sit at the cap.
            if last < cap.mul_f64(0.74) {
                assert!(
                    d >= last,
                    "failure {failures}: backoff {d:?} regressed below {last:?}"
                );
            }
            last = d;
        }
        assert!(
            last >= cap.mul_f64(0.75),
            "after 20 failures the backoff sits at the cap (minus jitter): {last:?}"
        );
    }

    #[test]
    fn probe_backoff_jitter_is_deterministic_in_the_seed_and_bounded() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(30);
        for failures in 1..=8u32 {
            let nominal = base.saturating_mul(1 << (failures - 1)).min(cap).as_nanos() as f64;
            let mut distinct = std::collections::HashSet::new();
            for seed in 0..32u64 {
                let a = probe_backoff(base, cap, failures, seed);
                let b = probe_backoff(base, cap, failures, seed);
                assert_eq!(a, b, "same seed, same backoff");
                let ns = a.as_nanos() as f64;
                assert!(
                    ns >= nominal * 0.74 && ns <= nominal * 1.26,
                    "jitter stays within ±25% of nominal: {ns} vs {nominal}"
                );
                distinct.insert(a);
            }
            assert!(
                distinct.len() > 1,
                "different seeds spread the probes (failures = {failures})"
            );
        }
    }

    #[test]
    fn probe_backoff_survives_extreme_inputs() {
        // A huge failure count must not overflow the shift or the multiply:
        // the result sits at the cap, minus at most the 25% jitter.
        let d = probe_backoff(Duration::from_secs(1), Duration::from_secs(30), u32::MAX, 1);
        assert!(d >= Duration::from_secs(22) && d <= Duration::from_secs(30));
        // A cap below the base is lifted to the base.
        let d = probe_backoff(Duration::from_secs(2), Duration::from_millis(1), 5, 1);
        assert_eq!(d, Duration::from_secs(2));
        // Zero-duration base degenerates gracefully.
        let d = probe_backoff(Duration::ZERO, Duration::ZERO, 3, 1);
        assert!(d <= Duration::from_nanos(8));
    }
}
