//! The content-addressed schedule cache.
//!
//! Requests are keyed by the fingerprints of [`bsp_model::fingerprint`]:
//!
//! * an **exact hit** — same [`bsp_model::RequestKey::full`], i.e. same
//!   structure, weights and machine — returns the cached schedule in `O(1)`
//!   with **zero heap allocation** (the entry is handed out as an
//!   [`Arc<BspSchedule>`]; bumping the LRU relinks pre-allocated nodes);
//! * a **warm hit** — same [`bsp_model::RequestKey::structure`] but
//!   different node weights — returns a cached schedule whose *assignment*
//!   is precedence-feasible for the request by construction (feasibility
//!   depends only on the edges), which the service uses to warm-start the
//!   hill-climbing search instead of running the whole pipeline cold.
//!
//! Eviction is strict LRU under a byte budget: inserting a schedule evicts
//! least-recently-used entries until it fits, and an entry larger than the
//! whole budget is simply not cached.  The cache is a plain (non-`Sync`)
//! structure; the service wraps it in a `Mutex`.

use bsp_model::BspSchedule;
use std::collections::HashMap;
use std::mem;
use std::sync::Arc;

/// Running counters of cache behaviour (monotonically increasing except
/// `bytes_used`/`entries`, which track the current contents).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-fingerprint hits served.
    pub hits: u64,
    /// Lookups that matched nothing at all.
    pub misses: u64,
    /// Lookups that missed exactly but matched structurally (warm seeds).
    pub warm_hits: u64,
    /// Schedules inserted.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Estimated bytes of currently cached schedules.
    pub bytes_used: usize,
    /// Number of currently cached schedules.
    pub entries: usize,
}

/// Estimated heap footprint of a cached schedule (the quantity the byte
/// budget is enforced against).
pub fn schedule_footprint(schedule: &BspSchedule) -> usize {
    let n = schedule.assignment.proc.len();
    // Two usize vectors plus the communication steps plus fixed overhead.
    n * 2 * mem::size_of::<usize>()
        + mem::size_of_val(schedule.comm.steps())
        + mem::size_of::<BspSchedule>()
}

/// One cached schedule, addressable by both fingerprints.
#[derive(Debug)]
struct Entry {
    full_fp: u128,
    structure_fp: u64,
    schedule: Arc<BspSchedule>,
    /// Cost of `schedule` on its request, memoized so an exact hit can fill
    /// its response header without recomputing (and thus allocating).
    cost: u64,
    bytes: usize,
    /// Intrusive LRU list links (slab indices; `usize::MAX` = none).
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// The content-addressed LRU schedule cache (see the module docs).
#[derive(Debug)]
pub struct ScheduleCache {
    byte_budget: usize,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    by_full: HashMap<u128, usize>,
    /// Most recently *inserted* entry per structure fingerprint.
    by_structure: HashMap<u64, usize>,
    /// LRU list: head = most recent, tail = eviction candidate.
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl ScheduleCache {
    /// An empty cache holding at most `byte_budget` bytes of schedules.
    pub fn new(byte_budget: usize) -> Self {
        ScheduleCache {
            byte_budget,
            slots: Vec::new(),
            free: Vec::new(),
            by_full: HashMap::new(),
            by_structure: HashMap::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// A snapshot of the running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slots[idx].as_ref().expect("linked entry exists");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("linked entry").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("linked entry").prev = prev,
        }
    }

    fn link_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.slots[idx].as_mut().expect("entry exists");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head].as_mut().expect("head entry").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Exact lookup: `O(1)`, allocation-free, bumps the entry to the LRU
    /// front.  Counts a hit or (shared with [`Self::lookup_warm`]) a miss.
    pub fn lookup_exact(&mut self, full_fp: u128) -> Option<(Arc<BspSchedule>, u64)> {
        match self.by_full.get(&full_fp).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.unlink(idx);
                self.link_front(idx);
                let entry = self.slots[idx].as_ref().expect("indexed entry");
                Some((Arc::clone(&entry.schedule), entry.cost))
            }
            None => None,
        }
    }

    /// Structural lookup, used after an exact miss: returns a schedule whose
    /// assignment is feasible for any request with this structure
    /// fingerprint.  Does **not** bump the LRU (the warm path re-inserts its
    /// improved schedule anyway).  Updates the miss/warm-hit counters.
    pub fn lookup_warm(&mut self, structure_fp: u64) -> Option<Arc<BspSchedule>> {
        match self.by_structure.get(&structure_fp).copied() {
            Some(idx) => {
                self.stats.warm_hits += 1;
                Some(Arc::clone(
                    &self.slots[idx].as_ref().expect("indexed entry").schedule,
                ))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records a miss without a warm lookup (cache-bypassing requests still
    /// count traffic).
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    fn evict(&mut self, idx: usize) {
        self.unlink(idx);
        let entry = self.slots[idx].take().expect("evicted entry exists");
        self.free.push(idx);
        self.by_full.remove(&entry.full_fp);
        // Only drop the structural alias if it points at this entry (a newer
        // entry with the same structure keeps serving warm lookups).
        if self.by_structure.get(&entry.structure_fp) == Some(&idx) {
            self.by_structure.remove(&entry.structure_fp);
        }
        self.stats.bytes_used -= entry.bytes;
        self.stats.entries -= 1;
        self.stats.evictions += 1;
    }

    /// Inserts (or replaces) the schedule for `full_fp`, evicting LRU entries
    /// until the byte budget holds.  Oversized schedules are not cached.
    pub fn insert(
        &mut self,
        full_fp: u128,
        structure_fp: u64,
        schedule: Arc<BspSchedule>,
        cost: u64,
    ) {
        let bytes = schedule_footprint(&schedule);
        if bytes > self.byte_budget {
            return;
        }
        if let Some(&idx) = self.by_full.get(&full_fp) {
            // Replace in place (e.g. the warm path re-solved this exact key).
            let old_bytes = {
                let e = self.slots[idx].as_mut().expect("indexed entry");
                let old = e.bytes;
                e.schedule = schedule;
                e.cost = cost;
                e.bytes = bytes;
                old
            };
            self.stats.bytes_used = self.stats.bytes_used - old_bytes + bytes;
            self.unlink(idx);
            self.link_front(idx);
            self.by_structure.insert(structure_fp, idx);
        } else {
            while self.stats.bytes_used + bytes > self.byte_budget && self.tail != NIL {
                self.evict(self.tail);
            }
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slots.push(None);
                    self.slots.len() - 1
                }
            };
            self.slots[idx] = Some(Entry {
                full_fp,
                structure_fp,
                schedule,
                cost,
                bytes,
                prev: NIL,
                next: NIL,
            });
            self.link_front(idx);
            self.by_full.insert(full_fp, idx);
            self.by_structure.insert(structure_fp, idx);
            self.stats.bytes_used += bytes;
            self.stats.entries += 1;
            self.stats.insertions += 1;
        }
        // Evicting everything else may still be required when a replacement
        // grew: budget enforcement is unconditional.
        while self.stats.bytes_used > self.byte_budget && self.tail != NIL {
            self.evict(self.tail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::{Assignment, Dag};

    fn schedule_of(n: usize) -> Arc<BspSchedule> {
        let dag = Dag::from_edge_list_unit_weights(n, &[]).unwrap();
        Arc::new(BspSchedule::from_assignment_lazy(
            &dag,
            Assignment::trivial(n),
        ))
    }

    #[test]
    fn exact_hits_return_the_same_allocation() {
        let mut cache = ScheduleCache::new(1 << 20);
        let s = schedule_of(8);
        cache.insert(1, 100, Arc::clone(&s), 17);
        let (hit, cost) = cache.lookup_exact(1).expect("inserted entry hits");
        assert!(Arc::ptr_eq(&hit, &s));
        assert_eq!(cost, 17);
        assert!(cache.lookup_exact(2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.entries, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn warm_lookup_matches_structure_and_counts_misses() {
        let mut cache = ScheduleCache::new(1 << 20);
        cache.insert(1, 100, schedule_of(8), 0);
        assert!(cache.lookup_warm(100).is_some());
        assert!(cache.lookup_warm(101).is_none());
        let stats = cache.stats();
        assert_eq!((stats.warm_hits, stats.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let per_entry = schedule_footprint(&schedule_of(64));
        let mut cache = ScheduleCache::new(3 * per_entry + per_entry / 2);
        for fp in 0..3u64 {
            cache.insert(u128::from(fp), 100 + fp, schedule_of(64), 0);
        }
        assert_eq!(cache.stats().entries, 3);
        assert!(cache.stats().bytes_used <= cache.byte_budget());
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.lookup_exact(0).is_some());
        cache.insert(3, 103, schedule_of(64), 0);
        assert_eq!(cache.stats().entries, 3);
        assert!(cache.stats().bytes_used <= cache.byte_budget());
        assert!(cache.lookup_exact(1).is_none(), "LRU entry 1 evicted");
        assert!(cache.lookup_exact(0).is_some());
        assert!(cache.lookup_exact(2).is_some());
        assert!(cache.lookup_exact(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_schedules_are_not_cached() {
        let mut cache = ScheduleCache::new(16);
        cache.insert(1, 100, schedule_of(1024), 0);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup_exact(1).is_none());
    }

    #[test]
    fn structural_alias_survives_eviction_of_an_older_sibling() {
        let per_entry = schedule_footprint(&schedule_of(64));
        let mut cache = ScheduleCache::new(2 * per_entry + per_entry / 2);
        // Two entries with the same structure; inserting a third (different
        // structure) evicts the older sibling.
        cache.insert(1, 100, schedule_of(64), 0);
        cache.insert(2, 100, schedule_of(64), 0);
        cache.insert(3, 200, schedule_of(64), 0);
        assert!(cache.lookup_exact(1).is_none(), "oldest entry evicted");
        // The newer structural sibling still answers warm lookups.
        assert!(cache.lookup_warm(100).is_some());
    }

    #[test]
    fn replacement_updates_bytes_and_keeps_one_entry() {
        let mut cache = ScheduleCache::new(1 << 20);
        cache.insert(1, 100, schedule_of(8), 1);
        let before = cache.stats().bytes_used;
        cache.insert(1, 100, schedule_of(512), 2);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes_used > before);
        assert_eq!(stats.insertions, 1, "replacement is not a new insertion");
    }
}
