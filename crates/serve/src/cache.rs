//! The content-addressed schedule cache.
//!
//! Requests are keyed by the fingerprints of [`bsp_model::fingerprint`]:
//!
//! * an **exact hit** — same [`bsp_model::RequestKey::full`], i.e. same
//!   structure, weights and machine — returns the cached schedule in `O(1)`
//!   with **zero heap allocation** (the entry is handed out as an
//!   [`Arc<BspSchedule>`]; bumping the LRU relinks pre-allocated nodes);
//! * a **warm hit** — same [`bsp_model::RequestKey::structure`] but
//!   different node weights — returns a cached schedule whose *assignment*
//!   is precedence-feasible for the request by construction (feasibility
//!   depends only on the edges), which the service uses to warm-start the
//!   hill-climbing search instead of running the whole pipeline cold.
//!
//! Eviction is strict LRU under a byte budget: inserting a schedule evicts
//! least-recently-used entries until it fits, and an entry larger than the
//! whole budget is simply not cached.  The cache is a plain (non-`Sync`)
//! structure; the service wraps it in a `Mutex`.
//!
//! The cache itself is placement-agnostic: it caches whatever its shard is
//! asked to solve, including entries the [`crate::placement`] policy steered
//! or failed over from another shard's range (the service counts those as
//! `adopted_foreign`).  The warm alias keyed by the structure fingerprint is
//! exactly what structure-affinity routing exists to exploit — co-locating a
//! structural family on one shard makes the alias fire for every reweighted
//! variant, where full-key range routing scattered them.

use bsp_model::BspSchedule;
use std::collections::HashMap;
use std::mem;
use std::sync::Arc;

/// Running counters of cache behaviour (monotonically increasing except
/// `bytes_used`/`entries`, which track the current contents).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-fingerprint hits served.
    pub hits: u64,
    /// Lookups that matched nothing at all.
    pub misses: u64,
    /// Lookups that missed exactly, matched structurally, and whose seed was
    /// actually used to warm-start a solve.  Always equals the number of
    /// observations in the service's warm latency histogram.
    pub warm_hits: u64,
    /// Lookups that matched structurally but whose seed was *rejected* by the
    /// warm solver (structural-fingerprint collision or stale seed), so the
    /// request fell back to a cold run.
    pub warm_fallbacks: u64,
    /// Schedules inserted.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Estimated bytes of currently cached schedules.
    pub bytes_used: usize,
    /// Number of currently cached schedules.
    pub entries: usize,
}

/// Estimated heap footprint of a cached schedule (the quantity the byte
/// budget is enforced against).
pub fn schedule_footprint(schedule: &BspSchedule) -> usize {
    let n = schedule.assignment.proc.len();
    // Two usize vectors plus the communication steps plus fixed overhead.
    n * 2 * mem::size_of::<usize>()
        + mem::size_of_val(schedule.comm.steps())
        + mem::size_of::<BspSchedule>()
}

/// One cached schedule, addressable by both fingerprints.
#[derive(Debug)]
struct Entry {
    full_fp: u128,
    structure_fp: u64,
    schedule: Arc<BspSchedule>,
    /// Cost of `schedule` on its request, memoized so an exact hit can fill
    /// its response header without recomputing (and thus allocating).
    cost: u64,
    bytes: usize,
    /// Intrusive LRU list links (slab indices; `usize::MAX` = none).
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// The content-addressed LRU schedule cache (see the module docs).
#[derive(Debug)]
pub struct ScheduleCache {
    byte_budget: usize,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    by_full: HashMap<u128, usize>,
    /// Most recently *inserted* entry per structure fingerprint.
    by_structure: HashMap<u64, usize>,
    /// Live entries per structure fingerprint, so evicting an alias owner
    /// with no surviving sibling (the common case: unique structures) drops
    /// the alias in `O(1)` instead of scanning the LRU list for a survivor.
    structure_counts: HashMap<u64, usize>,
    /// LRU list: head = most recent, tail = eviction candidate.
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl ScheduleCache {
    /// An empty cache holding at most `byte_budget` bytes of schedules.
    pub fn new(byte_budget: usize) -> Self {
        ScheduleCache {
            byte_budget,
            slots: Vec::new(),
            free: Vec::new(),
            by_full: HashMap::new(),
            by_structure: HashMap::new(),
            structure_counts: HashMap::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// A snapshot of the running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slots[idx].as_ref().expect("linked entry exists");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("linked entry").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("linked entry").prev = prev,
        }
    }

    fn link_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.slots[idx].as_mut().expect("entry exists");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head].as_mut().expect("head entry").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Exact lookup: `O(1)`, allocation-free, bumps the entry to the LRU
    /// front.  Counts a hit or (shared with [`Self::lookup_warm`]) a miss.
    pub fn lookup_exact(&mut self, full_fp: u128) -> Option<(Arc<BspSchedule>, u64)> {
        match self.by_full.get(&full_fp).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.unlink(idx);
                self.link_front(idx);
                let entry = self.slots[idx].as_ref().expect("indexed entry");
                Some((Arc::clone(&entry.schedule), entry.cost))
            }
            None => None,
        }
    }

    /// Structural lookup, used after an exact miss: returns a schedule whose
    /// assignment is feasible for any request with this structure
    /// fingerprint.  Does **not** bump the LRU (the warm path re-inserts its
    /// improved schedule anyway).  Counts a miss when nothing matches; when a
    /// seed is returned the caller reports the outcome with
    /// [`Self::note_warm_hit`] or [`Self::note_warm_fallback`] once it knows
    /// whether the seed actually warm-started the solve — this keeps
    /// `warm_hits` equal to the warm latency histogram's population instead
    /// of silently diverging when a seed is rejected.
    pub fn lookup_warm(&mut self, structure_fp: u64) -> Option<Arc<BspSchedule>> {
        match self.by_structure.get(&structure_fp).copied() {
            Some(idx) => Some(Arc::clone(
                &self.slots[idx].as_ref().expect("indexed entry").schedule,
            )),
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records that a seed handed out by [`Self::lookup_warm`] warm-started a
    /// solve.
    pub fn note_warm_hit(&mut self) {
        self.stats.warm_hits += 1;
    }

    /// Records that a seed handed out by [`Self::lookup_warm`] was rejected
    /// and the request fell back to a cold run.
    pub fn note_warm_fallback(&mut self) {
        self.stats.warm_fallbacks += 1;
    }

    /// Records a miss without a warm lookup (cache-bypassing requests still
    /// count traffic).
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Decrements the live count of `structure_fp` (an entry stopped
    /// carrying it) and, if the alias pointed at `from_idx`, repoints it at
    /// the most-recently-used surviving entry with the structure — or drops
    /// it when none survives.  An *older* same-structure sibling may still
    /// be cached, and warm lookups for the structure must keep finding it.
    /// The count makes the no-survivor case (unique structures, the common
    /// one under churn) `O(1)`; the LRU walk runs only when a sibling is
    /// known to exist, and then stops at the first (most recent) match.
    fn release_structure(&mut self, structure_fp: u64, from_idx: usize) {
        let survivors = {
            let count = self
                .structure_counts
                .get_mut(&structure_fp)
                .expect("released structure is counted");
            *count -= 1;
            *count
        };
        if survivors == 0 {
            self.structure_counts.remove(&structure_fp);
        }
        if self.by_structure.get(&structure_fp) != Some(&from_idx) {
            return;
        }
        if survivors == 0 {
            self.by_structure.remove(&structure_fp);
            return;
        }
        let mut cur = self.head;
        while cur != NIL {
            let e = self.slots[cur].as_ref().expect("linked entry exists");
            if e.structure_fp == structure_fp {
                self.by_structure.insert(structure_fp, cur);
                return;
            }
            cur = e.next;
        }
        unreachable!("structure_counts says a sibling survives");
    }

    fn evict(&mut self, idx: usize) {
        self.unlink(idx);
        let entry = self.slots[idx].take().expect("evicted entry exists");
        self.free.push(idx);
        self.by_full.remove(&entry.full_fp);
        self.release_structure(entry.structure_fp, idx);
        self.stats.bytes_used -= entry.bytes;
        self.stats.entries -= 1;
        self.stats.evictions += 1;
    }

    /// Inserts (or replaces) the schedule for `full_fp`, evicting LRU entries
    /// until the byte budget holds.  Oversized schedules are not cached.
    pub fn insert(
        &mut self,
        full_fp: u128,
        structure_fp: u64,
        schedule: Arc<BspSchedule>,
        cost: u64,
    ) {
        let bytes = schedule_footprint(&schedule);
        if bytes > self.byte_budget {
            return;
        }
        if let Some(&idx) = self.by_full.get(&full_fp) {
            // Replace in place (e.g. the warm path re-solved this exact key).
            let (old_bytes, old_structure) = {
                let e = self.slots[idx].as_mut().expect("indexed entry");
                let old = (e.bytes, e.structure_fp);
                e.schedule = schedule;
                e.cost = cost;
                e.bytes = bytes;
                e.structure_fp = structure_fp;
                old
            };
            self.stats.bytes_used = self.stats.bytes_used - old_bytes + bytes;
            self.unlink(idx);
            self.link_front(idx);
            self.by_structure.insert(structure_fp, idx);
            if old_structure != structure_fp {
                *self.structure_counts.entry(structure_fp).or_insert(0) += 1;
                self.release_structure(old_structure, idx);
            }
        } else {
            while self.stats.bytes_used + bytes > self.byte_budget && self.tail != NIL {
                self.evict(self.tail);
            }
            let idx = match self.free.pop() {
                Some(idx) => idx,
                None => {
                    self.slots.push(None);
                    self.slots.len() - 1
                }
            };
            self.slots[idx] = Some(Entry {
                full_fp,
                structure_fp,
                schedule,
                cost,
                bytes,
                prev: NIL,
                next: NIL,
            });
            self.link_front(idx);
            self.by_full.insert(full_fp, idx);
            self.by_structure.insert(structure_fp, idx);
            *self.structure_counts.entry(structure_fp).or_insert(0) += 1;
            self.stats.bytes_used += bytes;
            self.stats.entries += 1;
            self.stats.insertions += 1;
        }
        // Evicting everything else may still be required when a replacement
        // grew: budget enforcement is unconditional.
        while self.stats.bytes_used > self.byte_budget && self.tail != NIL {
            self.evict(self.tail);
        }
    }

    /// Inserts an entry recovered from the durable store at startup.
    /// Identical to [`Self::insert`] except that `insertions` is not
    /// counted: repopulation is not request traffic, and keeping the counter
    /// request-only lets a restart test tell recovered entries
    /// (`store_loaded`) apart from fresh solves (`insertions`).
    pub fn repopulate(
        &mut self,
        full_fp: u128,
        structure_fp: u64,
        schedule: Arc<BspSchedule>,
        cost: u64,
    ) {
        let before = self.stats.insertions;
        self.insert(full_fp, structure_fp, schedule, cost);
        self.stats.insertions = before;
    }

    /// Checks every structural invariant of the cache, returning a
    /// description of the first violation.  `O(entries)`; meant for tests
    /// (the property suite calls it after every random operation) and
    /// debugging, not for the serving path.
    ///
    /// Invariants checked:
    /// * the LRU list is a consistent doubly linked list over exactly the
    ///   live slots, and `stats.entries` equals its length;
    /// * `stats.bytes_used` equals the sum of live entry footprints and never
    ///   exceeds the byte budget;
    /// * `by_full` is a bijection onto the live slots;
    /// * `by_structure` points at a live entry with the right structure
    ///   fingerprint, and has an entry for *every* structure fingerprint that
    ///   any live entry carries (warm lookups never miss while a sibling is
    ///   cached);
    /// * the free list holds exactly the empty slots.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        let mut bytes = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            let e = self.slots[cur]
                .as_ref()
                .ok_or_else(|| format!("LRU list visits empty slot {cur}"))?;
            if e.prev != prev {
                return Err(format!("slot {cur}: prev link {} != {}", e.prev, prev));
            }
            if !seen.insert(cur) {
                return Err(format!("LRU list visits slot {cur} twice"));
            }
            bytes += e.bytes;
            prev = cur;
            cur = e.next;
        }
        if self.tail != prev {
            return Err(format!("tail {} != last visited {}", self.tail, prev));
        }
        if seen.len() != self.stats.entries {
            return Err(format!(
                "LRU list has {} entries, stats say {}",
                seen.len(),
                self.stats.entries
            ));
        }
        if bytes != self.stats.bytes_used {
            return Err(format!(
                "live footprints sum to {bytes} bytes, stats say {}",
                self.stats.bytes_used
            ));
        }
        if self.stats.bytes_used > self.byte_budget {
            return Err(format!(
                "bytes_used {} exceeds the {}-byte budget",
                self.stats.bytes_used, self.byte_budget
            ));
        }
        if self.by_full.len() != seen.len() {
            return Err(format!(
                "by_full has {} keys for {} live entries",
                self.by_full.len(),
                seen.len()
            ));
        }
        for (&fp, &idx) in &self.by_full {
            let e = self.slots.get(idx).and_then(|s| s.as_ref());
            match e {
                Some(e) if e.full_fp == fp && seen.contains(&idx) => {}
                _ => return Err(format!("by_full[{fp:#x}] -> {idx} is not a live match")),
            }
        }
        for (&fp, &idx) in &self.by_structure {
            let e = self.slots.get(idx).and_then(|s| s.as_ref());
            match e {
                Some(e) if e.structure_fp == fp && seen.contains(&idx) => {}
                _ => {
                    return Err(format!(
                        "by_structure[{fp:#x}] -> {idx} is not a live match"
                    ))
                }
            }
        }
        let mut counted: HashMap<u64, usize> = HashMap::new();
        for &idx in &seen {
            let fp = self.slots[idx].as_ref().expect("live slot").structure_fp;
            *counted.entry(fp).or_insert(0) += 1;
            if !self.by_structure.contains_key(&fp) {
                return Err(format!(
                    "live entry in slot {idx} has structure {fp:#x} but no alias serves it"
                ));
            }
        }
        if counted != self.structure_counts {
            return Err(format!(
                "structure_counts {:?} disagree with the live entries {:?}",
                self.structure_counts, counted
            ));
        }
        for &idx in &self.free {
            if self.slots.get(idx).map(Option::is_some) != Some(false) {
                return Err(format!("free list contains live or invalid slot {idx}"));
            }
        }
        if self.free.len() + seen.len() != self.slots.len() {
            return Err(format!(
                "{} free + {} live != {} slots",
                self.free.len(),
                seen.len(),
                self.slots.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsp_model::{Assignment, Dag};

    fn schedule_of(n: usize) -> Arc<BspSchedule> {
        let dag = Dag::from_edge_list_unit_weights(n, &[]).unwrap();
        Arc::new(BspSchedule::from_assignment_lazy(
            &dag,
            Assignment::trivial(n),
        ))
    }

    #[test]
    fn exact_hits_return_the_same_allocation() {
        let mut cache = ScheduleCache::new(1 << 20);
        let s = schedule_of(8);
        cache.insert(1, 100, Arc::clone(&s), 17);
        let (hit, cost) = cache.lookup_exact(1).expect("inserted entry hits");
        assert!(Arc::ptr_eq(&hit, &s));
        assert_eq!(cost, 17);
        assert!(cache.lookup_exact(2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.entries, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn warm_lookup_matches_structure_and_counts_misses() {
        let mut cache = ScheduleCache::new(1 << 20);
        cache.insert(1, 100, schedule_of(8), 0);
        // A seed is handed out without counting anything yet: the caller
        // attributes the outcome once the solver accepts or rejects it.
        assert!(cache.lookup_warm(100).is_some());
        assert_eq!((cache.stats().warm_hits, cache.stats().misses), (0, 0));
        cache.note_warm_hit();
        assert!(cache.lookup_warm(100).is_some());
        cache.note_warm_fallback();
        assert!(cache.lookup_warm(101).is_none());
        let stats = cache.stats();
        assert_eq!(
            (stats.warm_hits, stats.warm_fallbacks, stats.misses),
            (1, 1, 1)
        );
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let per_entry = schedule_footprint(&schedule_of(64));
        let mut cache = ScheduleCache::new(3 * per_entry + per_entry / 2);
        for fp in 0..3u64 {
            cache.insert(u128::from(fp), 100 + fp, schedule_of(64), 0);
        }
        assert_eq!(cache.stats().entries, 3);
        assert!(cache.stats().bytes_used <= cache.byte_budget());
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.lookup_exact(0).is_some());
        cache.insert(3, 103, schedule_of(64), 0);
        assert_eq!(cache.stats().entries, 3);
        assert!(cache.stats().bytes_used <= cache.byte_budget());
        assert!(cache.lookup_exact(1).is_none(), "LRU entry 1 evicted");
        assert!(cache.lookup_exact(0).is_some());
        assert!(cache.lookup_exact(2).is_some());
        assert!(cache.lookup_exact(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_schedules_are_not_cached() {
        let mut cache = ScheduleCache::new(16);
        cache.insert(1, 100, schedule_of(1024), 0);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup_exact(1).is_none());
    }

    #[test]
    fn structural_alias_survives_eviction_of_an_older_sibling() {
        let per_entry = schedule_footprint(&schedule_of(64));
        let mut cache = ScheduleCache::new(2 * per_entry + per_entry / 2);
        // Two entries with the same structure; inserting a third (different
        // structure) evicts the older sibling.
        cache.insert(1, 100, schedule_of(64), 0);
        cache.insert(2, 100, schedule_of(64), 0);
        cache.insert(3, 200, schedule_of(64), 0);
        assert!(cache.lookup_exact(1).is_none(), "oldest entry evicted");
        // The newer structural sibling still answers warm lookups.
        assert!(cache.lookup_warm(100).is_some());
    }

    #[test]
    fn structural_alias_survives_eviction_of_a_newer_sibling() {
        let per_entry = schedule_footprint(&schedule_of(64));
        let mut cache = ScheduleCache::new(2 * per_entry + per_entry / 2);
        // A then B share a structure, so the alias points at B (newer).
        cache.insert(1, 100, schedule_of(64), 0);
        cache.insert(2, 100, schedule_of(64), 0);
        // Touch A so *B* — the alias owner — becomes the LRU victim.
        assert!(cache.lookup_exact(1).is_some());
        cache.insert(3, 200, schedule_of(64), 0);
        assert!(cache.lookup_exact(2).is_none(), "newer sibling evicted");
        assert!(cache.lookup_exact(1).is_some(), "older sibling survives");
        // The surviving older sibling must keep serving warm lookups: the
        // alias is repointed on eviction, not dropped.
        assert!(
            cache.lookup_warm(100).is_some(),
            "warm lookups for structure 100 miss although entry 1 is cached"
        );
        cache.check_invariants().unwrap();
    }

    #[test]
    fn repopulation_fills_the_cache_without_counting_insertions() {
        let mut cache = ScheduleCache::new(1 << 20);
        cache.repopulate(1, 100, schedule_of(8), 17);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.insertions), (1, 0));
        let (_, cost) = cache.lookup_exact(1).expect("repopulated entry hits");
        assert_eq!(cost, 17);
        assert!(
            cache.lookup_warm(100).is_some(),
            "warm alias is indexed too"
        );
        cache.check_invariants().unwrap();
    }

    #[test]
    fn replacement_updates_bytes_and_keeps_one_entry() {
        let mut cache = ScheduleCache::new(1 << 20);
        cache.insert(1, 100, schedule_of(8), 1);
        let before = cache.stats().bytes_used;
        cache.insert(1, 100, schedule_of(512), 2);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes_used > before);
        assert_eq!(stats.insertions, 1, "replacement is not a new insertion");
    }
}
