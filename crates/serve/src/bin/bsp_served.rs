//! `bsp_served` — a standalone shard server process.
//!
//! The in-process [`bsp_serve::Server`] is what tests and the bench harness
//! normally use, but crash-safety can only be demonstrated on a real process
//! boundary: a `kill -9` must be able to take the whole address space away
//! mid-write, with no `Drop` impl running.  This binary is that process.
//! The fault-injection harness (`crates/serve/tests/crash_kill.rs`) spawns
//! it with a store directory, fills its cache over the wire, kills it
//! without ceremony, restarts it on the same directory, and asserts the
//! durable store recovered everything the server had acknowledged as
//! appended.
//!
//! ## Protocol with the parent
//!
//! * On startup the server binds and prints `READY <addr>` on stdout (one
//!   line, flushed) — the parent reads the line to learn the ephemeral port.
//! * The process then blocks on stdin: a `STOP` line (or stdin closing)
//!   triggers a graceful shutdown — workers drain, the store flushes — and
//!   the process exits 0.  Anything else on stdin is ignored.
//! * An ungraceful exit is the point: `SIGKILL` at any moment must never
//!   cost more than the not-yet-flushed tail of the store.
//!
//! ## Flags
//!
//! * `--addr <host:port>` — listen address (default `127.0.0.1:0`).
//! * `--store-dir <path>` — durable store directory; omitted = memory-only.
//! * `--workers <n>` — worker threads (default 2).
//! * `--min-coarse-nodes <n>` — multilevel coarsen-depth floor for cold
//!   solves (default 0 = no floor); deadline-bound deployments raise it so
//!   huge DAGs stop coarsening once the coarse solve is already cheap.

use bsp_serve::{Server, ServerConfig};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut store_dir: Option<PathBuf> = None;
    let mut workers = 2usize;
    let mut min_coarse_nodes = 0usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bsp_served: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--store-dir" => store_dir = Some(PathBuf::from(value("--store-dir"))),
            "--workers" => {
                workers = value("--workers").parse().unwrap_or_else(|e| {
                    eprintln!("bsp_served: bad --workers: {e}");
                    std::process::exit(2);
                });
            }
            "--min-coarse-nodes" => {
                min_coarse_nodes = value("--min-coarse-nodes").parse().unwrap_or_else(|e| {
                    eprintln!("bsp_served: bad --min-coarse-nodes: {e}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("bsp_served: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut config = ServerConfig {
        workers: workers.max(1),
        store_dir,
        ..Default::default()
    };
    config.service.min_coarse_nodes = min_coarse_nodes;
    let server = match Server::bind(addr.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bsp_served: bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    let handle = match server.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bsp_served: spawn: {e}");
            return ExitCode::from(1);
        }
    };

    // The parent parses this exact line to learn the ephemeral port.
    let mut stdout = std::io::stdout().lock();
    if writeln!(stdout, "READY {}", handle.addr())
        .and_then(|()| stdout.flush())
        .is_err()
    {
        handle.shutdown();
        return ExitCode::from(1);
    }
    drop(stdout);

    // Park on stdin until the parent says STOP (or goes away).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(line) if line.trim() == "STOP" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    handle.shutdown();
    ExitCode::SUCCESS
}
