//! Workspace-wide observability: a unified metrics registry with
//! Prometheus-style text exposition, *mergeable* histogram snapshots so the
//! router can aggregate shard quantiles instead of summing scalars, and a
//! zero-allocation request-trace journal.
//!
//! Three pieces:
//!
//! - [`MetricsRegistry`] — named, labeled series (counters, gauges,
//!   [`LatencyHistogram`]s) behind `Arc` handles: registration takes a lock
//!   and may allocate, recording through a handle is a relaxed atomic.
//!   [`MetricsRegistry::render`] writes the Prometheus text exposition served
//!   by the `METRICS` wire verb.
//! - [`MetricsSnapshot`] — a parsed exposition.  The router scrapes each
//!   shard's `METRICS`, parses, and [`MetricsSnapshot::merge_from`]s them:
//!   counters and gauges sum, histograms merge bucket-wise, so an aggregated
//!   p99 is computed over the pooled observations rather than approximated
//!   from per-shard quantiles.
//! - [`SpanSet`] / [`TraceRecord`] / [`TraceJournal`] — request tracing.  A
//!   span set is a fixed, `Copy`-only array built on the stack (`&'static`
//!   names, microsecond offsets from request acceptance); the journal is a
//!   pre-allocated ring plus a bounded worst-N-by-latency slow log.  Neither
//!   recording a span nor journaling a finished trace allocates, so the
//!   exact-cache-hit path stays allocation-free with tracing enabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::LatencyHistogram;

/// Maximum spans kept per trace.  A cold multilevel solve uses ~20 (router
/// dispatch, queue wait, cache lookup, per-ratio coarsen/base/uncontract/
/// refine/sweep, comm-opt, validate, insert, store offer, respond); anything
/// beyond the cap sets the `truncated` flag instead of allocating.
pub const MAX_SPANS: usize = 48;

/// One timed region of a request's lifetime.  `start_us` is the offset from
/// the moment the request was accepted (by the router when sharded, by the
/// server otherwise), so spans from different layers compose by offsetting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Static span name (e.g. `"queue_wait"`, `"ml_coarsen"`).
    pub name: &'static str,
    /// Nesting depth: 0 for top-level request phases, children below.
    pub depth: u8,
    /// Microseconds from request acceptance to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

const EMPTY_SPAN: SpanRec = SpanRec {
    name: "",
    depth: 0,
    start_us: 0,
    dur_us: 0,
};

/// A bounded, stack-allocated collection of [`SpanRec`]s.  `Copy`, no heap.
#[derive(Debug, Clone, Copy)]
pub struct SpanSet {
    len: u8,
    truncated: bool,
    spans: [SpanRec; MAX_SPANS],
}

impl Default for SpanSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanSet {
    /// An empty span set.
    pub const fn new() -> Self {
        SpanSet {
            len: 0,
            truncated: false,
            spans: [EMPTY_SPAN; MAX_SPANS],
        }
    }

    /// Appends a span; sets the truncation flag instead of growing past
    /// [`MAX_SPANS`].
    pub fn push(&mut self, name: &'static str, depth: u8, start_us: u64, dur_us: u64) {
        if (self.len as usize) < MAX_SPANS {
            self.spans[self.len as usize] = SpanRec {
                name,
                depth,
                start_us,
                dur_us,
            };
            self.len += 1;
        } else {
            self.truncated = true;
        }
    }

    /// The recorded spans, in push order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans[..self.len as usize]
    }

    /// Empties the set for reuse without touching the allocator.
    pub fn clear(&mut self) {
        self.len = 0;
        self.truncated = false;
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if at least one span was dropped for capacity.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Splices `other`'s spans in as children: each is shifted by
    /// `offset_us` and deepened by `extra_depth`.  Used to graft a shard's
    /// spans under the router's dispatch span, and the solver's phase spans
    /// under the service's solve span.
    pub fn extend_offset(&mut self, other: &SpanSet, extra_depth: u8, offset_us: u64) {
        for span in other.spans() {
            self.push(
                span.name,
                span.depth.saturating_add(extra_depth),
                span.start_us.saturating_add(offset_us),
                span.dur_us,
            );
        }
        if other.truncated {
            self.truncated = true;
        }
    }
}

/// A finished request's trace: identity, outcome, and span tree.  `Copy` so
/// journaling is a memcpy into a pre-allocated slot.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// The trace id assigned at acceptance (hex on the wire).
    pub trace_id: u64,
    /// Request outcome source token (`cold` / `exact` / `warm` / `error`).
    pub source: &'static str,
    /// Shard index the request was dispatched to; -1 when unsharded or
    /// answered locally.
    pub shard: i32,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// The span tree.
    pub spans: SpanSet,
}

/// Bounded trace storage: a ring of the most recent traces plus a worst-N
/// slow log, both pre-allocated.  [`TraceJournal::record`] never allocates.
#[derive(Debug)]
pub struct TraceJournal {
    ring: Box<[Mutex<Option<TraceRecord>>]>,
    cursor: AtomicUsize,
    /// Worst-N by `total_us`; `Vec` pre-reserved to capacity so insertion
    /// and min-replacement never allocate.
    slow: Mutex<Vec<TraceRecord>>,
    slow_cap: usize,
}

impl TraceJournal {
    /// A journal keeping the last `ring_cap` traces and the `slow_cap`
    /// slowest.
    pub fn new(ring_cap: usize, slow_cap: usize) -> Self {
        let ring_cap = ring_cap.max(1);
        let mut slow = Vec::new();
        slow.reserve_exact(slow_cap);
        TraceJournal {
            ring: (0..ring_cap).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            slow: Mutex::new(slow),
            slow_cap,
        }
    }

    /// Journals a finished trace.  Lock-bounded, allocation-free.
    pub fn record(&self, rec: TraceRecord) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.ring.len();
        *self.ring[slot].lock().unwrap() = Some(rec);
        if self.slow_cap == 0 {
            return;
        }
        let mut slow = self.slow.lock().unwrap();
        if slow.len() < self.slow_cap {
            slow.push(rec);
            return;
        }
        // Replace the fastest retained entry if this one is slower.
        if let Some(min_idx) = (0..slow.len()).min_by_key(|&i| slow[i].total_us) {
            if slow[min_idx].total_us < rec.total_us {
                slow[min_idx] = rec;
            }
        }
    }

    /// Finds a trace by id, searching the recent ring then the slow log.
    pub fn lookup(&self, trace_id: u64) -> Option<TraceRecord> {
        for slot in self.ring.iter() {
            if let Some(rec) = *slot.lock().unwrap() {
                if rec.trace_id == trace_id {
                    return Some(rec);
                }
            }
        }
        self.slow
            .lock()
            .unwrap()
            .iter()
            .find(|rec| rec.trace_id == trace_id)
            .copied()
    }

    /// The slow log, slowest first.
    pub fn snapshot_slow(&self) -> Vec<TraceRecord> {
        let mut slow = self.slow.lock().unwrap().clone();
        slow.sort_by_key(|rec| std::cmp::Reverse(rec.total_us));
        slow
    }
}

/// Trace-id generator: a per-process random-looking but collision-resistant
/// sequence (splitmix64 over a seeded counter), so ids minted independently
/// by the router and by standalone shards don't collide in practice.  Never
/// yields 0 (0 means "untraced" on the wire).
#[derive(Debug)]
pub struct TraceIdGen {
    next: AtomicU64,
}

impl TraceIdGen {
    /// A generator seeded from the clock and the process id.
    pub fn new() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seed = nanos ^ (u64::from(std::process::id()) << 32);
        TraceIdGen {
            next: AtomicU64::new(seed),
        }
    }

    /// Mints a fresh non-zero trace id.
    pub fn mint(&self) -> u64 {
        loop {
            let raw = self
                .next
                .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            // splitmix64 finalizer: consecutive counter values map to
            // well-spread ids.
            let mut z = raw;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z != 0 {
                return z;
            }
        }
    }
}

impl Default for TraceIdGen {
    fn default() -> Self {
        Self::new()
    }
}

/// A live series handle plus its identity.
#[derive(Debug)]
struct Entry {
    name: String,
    /// Rendered label body (`kind="exact"`), empty for unlabeled series.
    labels: String,
    help: &'static str,
    series: Series,
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<LatencyHistogram>),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// Renders a label slice to the exposition body form: `k1="v1",k2="v2"`.
fn label_body(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

/// Writes one exposition sample line: `name{labels} value`.
pub fn write_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Writes a `# TYPE` metadata line.
pub fn write_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Renders one histogram's exposition series: cumulative `_bucket{le=…}`
/// lines, `_sum`, and `_count`.  `buckets` are non-cumulative
/// `(upper_edge, count)` pairs in ascending edge order.
fn render_histogram_series(
    out: &mut String,
    name: &str,
    labels: &str,
    buckets: &[(u64, u64)],
    sum: u64,
    count: u64,
) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for &(le, n) in buckets {
        cumulative += n;
        let body = if labels.is_empty() {
            format!("le=\"{le}\"")
        } else {
            format!("{labels},le=\"{le}\"")
        };
        write_sample(out, &bucket_name, &body, cumulative);
    }
    let inf_body = if labels.is_empty() {
        "le=\"+Inf\"".to_string()
    } else {
        format!("{labels},le=\"+Inf\"")
    };
    write_sample(out, &bucket_name, &inf_body, count);
    write_sample(out, &format!("{name}_sum"), labels, sum);
    write_sample(out, &format!("{name}_count"), labels, count);
}

/// A registry of named, labeled metric series.  Get-or-register returns a
/// shared handle; rendering walks every entry.  Registration is locked and
/// may allocate — do it at startup or on cold paths only — while recording
/// through a returned handle is lock- and allocation-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: fn() -> Series,
    ) -> Series {
        let body = label_body(labels);
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.iter().find(|e| e.name == name && e.labels == body) {
            assert_eq!(
                entry.series.kind(),
                make().kind(),
                "metric {name} re-registered with a different kind"
            );
            return match &entry.series {
                Series::Counter(c) => Series::Counter(Arc::clone(c)),
                Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
                Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
            };
        }
        let series = make();
        let handle = match &series {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        };
        entries.push(Entry {
            name: name.to_string(),
            labels: body,
            help,
            series,
        });
        handle
    }

    /// Get-or-register a monotonically increasing counter.
    pub fn counter(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicU64> {
        match self.series(name, help, labels, || {
            Series::Counter(Arc::new(AtomicU64::new(0)))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get-or-register a gauge (a settable value).
    pub fn gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        match self.series(name, help, labels, || {
            Series::Gauge(Arc::new(AtomicU64::new(0)))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get-or-register a latency histogram.
    pub fn histogram(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyHistogram> {
        match self.series(name, help, labels, || {
            Series::Histogram(Arc::new(LatencyHistogram::new()))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders every registered series as Prometheus text exposition,
    /// grouped by metric name with `# HELP` / `# TYPE` headers.
    pub fn render(&self, out: &mut String) {
        let entries = self.entries.lock().unwrap();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            (entries[a].name.as_str(), entries[a].labels.as_str())
                .cmp(&(entries[b].name.as_str(), entries[b].labels.as_str()))
        });
        let mut last_name = "";
        for &i in &order {
            let entry = &entries[i];
            if entry.name != last_name {
                if !entry.help.is_empty() {
                    out.push_str("# HELP ");
                    out.push_str(&entry.name);
                    out.push(' ');
                    out.push_str(entry.help);
                    out.push('\n');
                }
                write_type(out, &entry.name, entry.series.kind());
                last_name = &entry.name;
            }
            match &entry.series {
                Series::Counter(c) | Series::Gauge(c) => {
                    write_sample(out, &entry.name, &entry.labels, c.load(Ordering::Relaxed));
                }
                Series::Histogram(h) => {
                    let mut buckets = Vec::new();
                    h.for_each_bucket(|le, n| buckets.push((le, n)));
                    render_histogram_series(
                        out,
                        &entry.name,
                        &entry.labels,
                        &buckets,
                        h.total_micros(),
                        h.count(),
                    );
                }
            }
        }
    }
}

/// One histogram parsed back out of an exposition: non-cumulative
/// `(upper_edge, count)` buckets in ascending order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-cumulative `(le, count)` pairs, ascending by `le`.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of observations (µs).
    pub sum: u64,
    /// Total observation count.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a [`LatencyHistogram`] holding these observations.
    pub fn to_histogram(&self) -> LatencyHistogram {
        let h = LatencyHistogram::new();
        for &(le, n) in &self.buckets {
            h.add_bucket_with_le(le, n);
        }
        h.add_total_micros(self.sum);
        h
    }

    /// Quantile over the snapshot's pooled observations.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        self.to_histogram().quantile_micros(q)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge_from(&mut self, other: &HistogramSnapshot) {
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(le, n) in &other.buckets {
            *merged.entry(le).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A parsed Prometheus-style exposition, mergeable across sources.  Keys are
/// the full series identity as rendered (`name{k="v"}` or bare `name`);
/// histogram keys drop the `le` label and the `_bucket` suffix.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter series by full key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series by full key.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram series by full key (without `le`).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Splits a series key into `(name, label_body)`.
fn split_key(key: &str) -> (&str, &str) {
    match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    }
}

/// Removes the label `le` from a label body, returning `(rest, le_value)`.
/// Label values in this system never contain commas or escaped quotes, which
/// keeps this (and the exposition parser) a plain split.
fn extract_le(labels: &str) -> (String, Option<String>) {
    let mut rest = Vec::new();
    let mut le = None;
    for part in labels.split(',') {
        if part.is_empty() {
            continue;
        }
        if let Some(value) = part.strip_prefix("le=\"") {
            le = Some(value.trim_end_matches('"').to_string());
        } else {
            rest.push(part);
        }
    }
    (rest.join(","), le)
}

impl MetricsSnapshot {
    /// Parses a text exposition (as produced by [`MetricsRegistry::render`]
    /// or [`MetricsSnapshot::render`]).  Series without a preceding `# TYPE`
    /// line are treated as counters.
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        // (key) -> cumulative (le, count) samples, in file order.
        let mut raw_buckets: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
        let mut snapshot = MetricsSnapshot::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| format!("bad TYPE line: {line}"))?;
                let kind = it.next().ok_or_else(|| format!("bad TYPE line: {line}"))?;
                types.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (key, value_str) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("bad sample line: {line}"))?;
            let (name, labels) = split_key(key);
            // Histogram sub-series?
            let hist_base = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                    .map(|base| (base, *suffix))
            });
            if let Some((base, suffix)) = hist_base {
                let (rest_labels, le) = extract_le(labels);
                let hist_key = if rest_labels.is_empty() {
                    base.to_string()
                } else {
                    format!("{base}{{{rest_labels}}}")
                };
                let value: u64 = value_str
                    .parse()
                    .map_err(|_| format!("bad value: {line}"))?;
                match suffix {
                    "_bucket" => {
                        let Some(le) = le else {
                            return Err(format!("bucket line without le: {line}"));
                        };
                        if le != "+Inf" {
                            let le: u64 =
                                le.parse().map_err(|_| format!("bad le value: {line}"))?;
                            raw_buckets.entry(hist_key).or_default().push((le, value));
                        }
                    }
                    "_sum" => snapshot.histograms.entry(hist_key).or_default().sum = value,
                    _ => snapshot.histograms.entry(hist_key).or_default().count = value,
                }
                continue;
            }
            let value: u64 = value_str
                .parse()
                .map_err(|_| format!("bad value: {line}"))?;
            match types.get(name).map(String::as_str) {
                Some("gauge") => {
                    snapshot.gauges.insert(key.to_string(), value);
                }
                _ => {
                    snapshot.counters.insert(key.to_string(), value);
                }
            }
        }
        // De-cumulate the bucket samples.
        for (key, mut cum) in raw_buckets {
            cum.sort_by_key(|&(le, _)| le);
            let entry = snapshot.histograms.entry(key).or_default();
            let mut prev = 0u64;
            entry.buckets = cum
                .into_iter()
                .map(|(le, c)| {
                    let n = c.saturating_sub(prev);
                    prev = c;
                    (le, n)
                })
                .collect();
        }
        Ok(snapshot)
    }

    /// Pools another snapshot into this one: counters and gauges sum,
    /// histograms merge bucket-wise (quantiles of the merge are quantiles of
    /// the pooled observations).
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, value) in &other.gauges {
            *self.gauges.entry(key.clone()).or_insert(0) += value;
        }
        for (key, hist) in &other.histograms {
            self.histograms
                .entry(key.clone())
                .or_default()
                .merge_from(hist);
        }
    }

    /// Looks up a counter by full key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Looks up a histogram by full key (without `le`).
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(key)
    }

    /// Sums every counter whose name part (before `{`) equals `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(key, _)| split_key(key).0 == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Renders the snapshot back to text exposition (what the router serves
    /// for its aggregated `METRICS`).
    pub fn render(&self, out: &mut String) {
        let mut last_name = "";
        for (key, value) in &self.counters {
            let (name, labels) = split_key(key);
            if name != last_name {
                write_type(out, name, "counter");
                last_name = split_key(key).0;
            }
            write_sample(out, name, labels, *value);
        }
        last_name = "";
        for (key, value) in &self.gauges {
            let (name, labels) = split_key(key);
            if name != last_name {
                write_type(out, name, "gauge");
                last_name = split_key(key).0;
            }
            write_sample(out, name, labels, *value);
        }
        last_name = "";
        for (key, hist) in &self.histograms {
            let (name, labels) = split_key(key);
            if name != last_name {
                write_type(out, name, "histogram");
                last_name = split_key(key).0;
            }
            render_histogram_series(out, name, labels, &hist.buckets, hist.sum, hist.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registry_render_parse_round_trip() {
        let registry = MetricsRegistry::new();
        let hits = registry.counter("bsp_cache_hits_total", "cache hits", &[("kind", "exact")]);
        hits.fetch_add(7, Ordering::Relaxed);
        let warm = registry.counter("bsp_cache_hits_total", "cache hits", &[("kind", "warm")]);
        warm.fetch_add(3, Ordering::Relaxed);
        let inflight = registry.gauge("bsp_inflight", "in-flight requests", &[]);
        inflight.store(2, Ordering::Relaxed);
        let lat = registry.histogram(
            "bsp_request_latency_micros",
            "request latency",
            &[("source", "exact")],
        );
        for micros in [3u64, 10, 1100, 5000] {
            lat.record(Duration::from_micros(micros));
        }

        let mut text = String::new();
        registry.render(&mut text);
        let snap = MetricsSnapshot::parse(&text).expect("parse");
        assert_eq!(
            snap.counter("bsp_cache_hits_total{kind=\"exact\"}"),
            Some(7)
        );
        assert_eq!(snap.counter_sum("bsp_cache_hits_total"), 10);
        assert_eq!(snap.gauges.get("bsp_inflight"), Some(&2));
        let hist = snap
            .histogram("bsp_request_latency_micros{source=\"exact\"}")
            .expect("histogram parsed");
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 3 + 10 + 1100 + 5000);
        // The parsed histogram answers the same quantiles as the source.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(hist.quantile_micros(q), lat.quantile_micros(q), "q={q}");
        }
    }

    #[test]
    fn registry_get_or_register_returns_same_handle() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total", "", &[("s", "1")]);
        let b = registry.counter("x_total", "", &[("s", "1")]);
        a.fetch_add(5, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 5);
        // Different labels are a different series.
        let c = registry.counter("x_total", "", &[("s", "2")]);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_merge_pools_histograms_and_sums_counters() {
        // Two "shards" record disjoint populations; the merged snapshot must
        // answer quantiles identical to a single histogram holding both.
        let make = |values: &[u64]| {
            let registry = MetricsRegistry::new();
            let h = registry.histogram("lat_micros", "", &[]);
            let c = registry.counter("req_total", "", &[]);
            for &v in values {
                h.record(Duration::from_micros(v));
                c.fetch_add(1, Ordering::Relaxed);
            }
            let mut text = String::new();
            registry.render(&mut text);
            MetricsSnapshot::parse(&text).unwrap()
        };
        let shard_a: Vec<u64> = (0..50).map(|i| i * 13 % 4000).collect();
        let shard_b: Vec<u64> = (0..70).map(|i| i * 101 % 9000).collect();
        let mut merged = make(&shard_a);
        merged.merge_from(&make(&shard_b));

        let pooled = LatencyHistogram::new();
        for &v in shard_a.iter().chain(&shard_b) {
            pooled.record(Duration::from_micros(v));
        }
        assert_eq!(merged.counter("req_total"), Some(120));
        let hist = merged.histogram("lat_micros").unwrap();
        assert_eq!(hist.count, 120);
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(hist.quantile_micros(q), pooled.quantile_micros(q), "q={q}");
        }
        // And the re-rendered merge parses back to the same state.
        let mut text = String::new();
        merged.render(&mut text);
        let reparsed = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(reparsed.histogram("lat_micros"), Some(hist));
    }

    #[test]
    fn span_set_caps_and_flags_truncation() {
        let mut set = SpanSet::new();
        for i in 0..MAX_SPANS {
            set.push("phase", 0, i as u64, 1);
        }
        assert!(!set.truncated());
        set.push("overflow", 0, 0, 1);
        assert_eq!(set.len(), MAX_SPANS);
        assert!(set.truncated());
    }

    #[test]
    fn span_extend_offsets_children() {
        let mut child = SpanSet::new();
        child.push("cache_lookup", 0, 0, 5);
        child.push("solve", 0, 5, 100);
        let mut parent = SpanSet::new();
        parent.push("dispatch", 0, 0, 120);
        parent.extend_offset(&child, 1, 10);
        let spans = parent.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].name, "cache_lookup");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].start_us, 10);
        assert_eq!(spans[2].start_us, 15);
    }

    #[test]
    fn journal_lookup_and_slow_log() {
        let journal = TraceJournal::new(4, 2);
        let make = |id: u64, total: u64| {
            let mut spans = SpanSet::new();
            spans.push("total", 0, 0, total);
            journal.record(TraceRecord {
                trace_id: id,
                source: "cold",
                shard: -1,
                total_us: total,
                spans,
            });
        };
        for (id, total) in [(1, 10), (2, 500), (3, 20), (4, 300), (5, 40), (6, 30)] {
            make(id, total);
        }
        // Ring of 4 keeps the last four (3..=6); slow log keeps worst two.
        assert!(journal.lookup(1).is_none());
        assert!(journal.lookup(6).is_some());
        let slow = journal.snapshot_slow();
        assert_eq!(
            slow.iter().map(|r| r.trace_id).collect::<Vec<_>>(),
            vec![2, 4]
        );
        // Slow entries stay findable after falling out of the ring.
        assert_eq!(journal.lookup(2).unwrap().total_us, 500);
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let gen = TraceIdGen::new();
        let a = gen.mint();
        let b = gen.mint();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
