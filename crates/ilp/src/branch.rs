//! Branch & bound over the integer variables of a [`Model`].
//!
//! The solver is an *anytime* minimizer: it can be warm-started from a known
//! feasible assignment (the "MIP start" the paper gives CBC) and respects a
//! wall-clock time limit, returning the best incumbent found so far.  This is
//! exactly the contract the scheduling pipeline relies on.

use crate::model::{Model, VarKind};
use crate::simplex::{solve_relaxation_with_bounds_until, LpStatus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a branch-&-bound solve.
#[derive(Debug, Clone)]
pub struct MipConfig {
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Maximum number of explored branch-&-bound nodes.
    pub max_nodes: usize,
    /// Relative optimality gap below which the search stops.
    pub gap_tolerance: f64,
    /// Cooperative cancellation flag, checked between branch-&-bound nodes:
    /// once set, the solve stops and returns its incumbent (the same anytime
    /// contract as the time limit).  `None` disables the check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for MipConfig {
    fn default() -> Self {
        MipConfig {
            time_limit: Duration::from_secs(10),
            max_nodes: 50_000,
            gap_tolerance: 1e-6,
            cancel: None,
        }
    }
}

impl MipConfig {
    /// A configuration with the given time limit and default node/gap settings.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        MipConfig {
            time_limit,
            ..Default::default()
        }
    }
}

/// Outcome of a branch-&-bound solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// The search tree was exhausted; the incumbent is optimal.
    Optimal,
    /// A feasible incumbent was found, but the search stopped early
    /// (time limit or node limit).
    Feasible,
    /// The problem has no feasible integer solution.
    Infeasible,
    /// The search stopped early without finding any feasible solution.
    Unknown,
}

/// Result of a branch-&-bound solve.
#[derive(Debug, Clone)]
pub struct MipResult {
    pub status: MipStatus,
    /// Objective of the incumbent (`f64::INFINITY` if none).
    pub objective: f64,
    /// Values of the incumbent, one per model variable (empty if none).
    pub values: Vec<f64>,
    /// Number of branch-&-bound nodes explored.
    pub nodes_explored: usize,
}

impl MipResult {
    /// `true` if a feasible integer solution is available.
    pub fn has_solution(&self) -> bool {
        matches!(self.status, MipStatus::Optimal | MipStatus::Feasible)
    }
}

const INT_TOL: f64 = 1e-6;

/// Solves the model by LP-based branch & bound.
///
/// `warm_start`, if provided and feasible, seeds the incumbent; the solver can
/// then only improve on it.
pub fn solve_mip(model: &Model, config: &MipConfig, warm_start: Option<&[f64]>) -> MipResult {
    let start = Instant::now();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;

    if let Some(ws) = warm_start {
        if model.is_feasible(ws, 1e-6) {
            incumbent = Some((model.objective_value(ws), ws.to_vec()));
        }
    }

    // A node is a set of bounds for every variable.
    let root: Vec<(f64, f64)> = model
        .variables()
        .iter()
        .map(|v| (v.lower, v.upper))
        .collect();
    let mut stack: Vec<Vec<(f64, f64)>> = vec![root];
    let mut nodes_explored = 0usize;
    let mut exhausted = true;

    let cancelled = |cfg: &MipConfig| -> bool {
        cfg.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    };

    while let Some(bounds) = stack.pop() {
        if start.elapsed() > config.time_limit
            || nodes_explored >= config.max_nodes
            || cancelled(config)
        {
            exhausted = false;
            break;
        }
        nodes_explored += 1;

        let relax = solve_relaxation_with_bounds_until(
            model,
            Some(&bounds),
            Some(start + config.time_limit),
        );
        match relax.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded | LpStatus::IterationLimit => {
                // Cannot bound this subtree; treat conservatively as unexplored.
                exhausted = false;
                continue;
            }
            LpStatus::Optimal => {}
        }
        if let Some((best, _)) = &incumbent {
            // Prune by bound (with relative gap tolerance).
            let cutoff = best - config.gap_tolerance * best.abs().max(1.0);
            if relax.objective >= cutoff {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut worst_frac = INT_TOL;
        for (i, v) in model.variables().iter().enumerate() {
            if v.kind != VarKind::Integer {
                continue;
            }
            let x = relax.values[i];
            let frac = (x - x.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some((i, x));
            }
        }

        match branch_var {
            None => {
                // Integer feasible: round integer variables exactly and accept.
                let mut values = relax.values.clone();
                for (i, v) in model.variables().iter().enumerate() {
                    if v.kind == VarKind::Integer {
                        values[i] = values[i].round();
                    }
                }
                let obj = model.objective_value(&values);
                let improves = incumbent.as_ref().is_none_or(|(best, _)| obj < best - 1e-9);
                if improves && model.is_feasible(&values, 1e-5) {
                    incumbent = Some((obj, values));
                }
            }
            Some((i, x)) => {
                let floor = x.floor();
                let ceil = x.ceil();
                let mut down = bounds.clone();
                down[i].1 = down[i].1.min(floor);
                let mut up = bounds;
                up[i].0 = up[i].0.max(ceil);
                // Depth-first; explore the side closer to the LP value first
                // (push it last so it is popped first).
                if x - floor < ceil - x {
                    if up[i].0 <= up[i].1 {
                        stack.push(up);
                    }
                    if down[i].0 <= down[i].1 {
                        stack.push(down);
                    }
                } else {
                    if down[i].0 <= down[i].1 {
                        stack.push(down);
                    }
                    if up[i].0 <= up[i].1 {
                        stack.push(up);
                    }
                }
            }
        }
    }

    match incumbent {
        Some((objective, values)) => MipResult {
            status: if exhausted && stack.is_empty() {
                MipStatus::Optimal
            } else {
                MipStatus::Feasible
            },
            objective,
            values,
            nodes_explored,
        },
        None => MipResult {
            status: if exhausted && stack.is_empty() {
                MipStatus::Infeasible
            } else {
                MipStatus::Unknown
            },
            objective: f64::INFINITY,
            values: Vec::new(),
            nodes_explored,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn solves_a_small_knapsack() {
        // maximize 10x0 + 13x1 + 7x2  (minimize the negation)
        // s.t. 3x0 + 4x1 + 2x2 <= 6, binaries.  Optimum: x0 = 0, x1 = 1, x2 = 1 -> 20.
        let mut m = Model::new();
        let x0 = m.add_binary("x0", -10.0);
        let x1 = m.add_binary("x1", -13.0);
        let x2 = m.add_binary("x2", -7.0);
        m.add_le("cap", vec![(x0, 3.0), (x1, 4.0), (x2, 2.0)], 6.0);
        let res = solve_mip(&m, &MipConfig::default(), None);
        assert_eq!(res.status, MipStatus::Optimal);
        assert!(
            (res.objective + 20.0).abs() < 1e-6,
            "objective {}",
            res.objective
        );
        assert_eq!(res.values[x0.index()].round() as i64, 0);
        assert_eq!(res.values[x1.index()].round() as i64, 1);
        assert_eq!(res.values[x2.index()].round() as i64, 1);
    }

    #[test]
    fn integrality_changes_the_optimum_vs_lp() {
        // minimize -(x + y) s.t. x + y <= 1.5, binaries: ILP optimum is -1.
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        let y = m.add_binary("y", -1.0);
        m.add_le("cap", vec![(x, 1.0), (y, 1.0)], 1.5);
        let res = solve_mip(&m, &MipConfig::default(), None);
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn reports_infeasible_integer_problems() {
        // x + y = 1.5 with binaries has no integer solution.
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_eq("half", vec![(x, 1.0), (y, 1.0)], 1.5);
        let res = solve_mip(&m, &MipConfig::default(), None);
        assert_eq!(res.status, MipStatus::Infeasible);
        assert!(!res.has_solution());
    }

    #[test]
    fn warm_start_provides_an_incumbent_under_zero_time() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_ge("atleast", vec![(x, 1.0), (y, 1.0)], 1.0);
        let config = MipConfig {
            time_limit: Duration::from_millis(0),
            ..Default::default()
        };
        let res = solve_mip(&m, &config, Some(&[1.0, 1.0]));
        assert!(res.has_solution());
        assert!((res.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_is_improved_when_time_allows() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_ge("atleast", vec![(x, 1.0), (y, 1.0)], 1.0);
        let res = solve_mip(&m, &MipConfig::default(), Some(&[1.0, 1.0]));
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pre_set_cancel_flag_returns_the_warm_start_incumbent() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_ge("atleast", vec![(x, 1.0), (y, 1.0)], 1.0);
        let flag = Arc::new(AtomicBool::new(true));
        let config = MipConfig {
            cancel: Some(flag),
            ..Default::default()
        };
        let res = solve_mip(&m, &config, Some(&[1.0, 1.0]));
        // No node is explored, so the (suboptimal) warm start survives.
        assert_eq!(res.status, MipStatus::Feasible);
        assert_eq!(res.nodes_explored, 0);
        assert!((res.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        m.add_le("cap", vec![(x, 1.0)], 1.0);
        let res = solve_mip(&m, &MipConfig::default(), Some(&[5.0]));
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn integer_variables_with_wider_ranges() {
        // minimize x s.t. 2x >= 7, x integer in [0, 10] -> x = 4.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0, 1.0);
        m.add_ge("floor", vec![(x, 2.0)], 7.0);
        let res = solve_mip(&m, &MipConfig::default(), None);
        assert_eq!(res.status, MipStatus::Optimal);
        assert_eq!(res.values[x.index()].round() as i64, 4);
    }

    #[test]
    fn assignment_problem_is_solved_exactly() {
        // 3x3 assignment with cost matrix; optimum picks 1+1+2 = 4... verify
        // against brute force.
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut vars = [[None; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = Some(m.add_binary(format!("x{i}{j}"), costs[i][j]));
            }
        }
        for i in 0..3 {
            m.add_eq(
                format!("row{i}"),
                (0..3).map(|j| (vars[i][j].unwrap(), 1.0)).collect(),
                1.0,
            );
            m.add_eq(
                format!("col{i}"),
                (0..3).map(|j| (vars[j][i].unwrap(), 1.0)).collect(),
                1.0,
            );
        }
        let res = solve_mip(&m, &MipConfig::default(), None);
        assert_eq!(res.status, MipStatus::Optimal);
        // Brute force over the 6 permutations.
        let mut best = f64::INFINITY;
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            best = best.min((0..3).map(|i| costs[i][p[i]]).sum());
        }
        assert!((res.objective - best).abs() < 1e-6);
    }
}
