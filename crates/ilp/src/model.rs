//! Mixed-integer linear program model builder.
//!
//! Only minimization problems are supported (the BSP scheduling formulations
//! are all minimizations).  Variables are continuous or binary/integer with
//! box bounds; constraints are linear with `≤`, `≥` or `=` comparators.

use serde::{Deserialize, Serialize};

/// Identifier of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of this variable in solution vectors.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Kind of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds (enforced by branch & bound).
    Integer,
}

/// A model variable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
    /// Coefficient in the (minimized) objective.
    pub objective: f64,
}

/// Comparator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparator {
    Le,
    Ge,
    Eq,
}

/// A linear constraint `Σ coeff · var  ⟨cmp⟩  rhs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    pub name: String,
    pub terms: Vec<(VarId, f64)>,
    pub cmp: Comparator,
    pub rhs: f64,
}

/// A mixed-integer linear minimization problem.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    /// Constant added to the objective (bookkeeping only).
    pub objective_offset: f64,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a continuous variable with the given bounds and objective coefficient.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        self.add_var(name, VarKind::Continuous, lower, upper, objective)
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Integer, 0.0, 1.0, objective)
    }

    /// Adds an integer variable with the given bounds.
    pub fn add_integer(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        self.add_var(name, VarKind::Integer, lower, upper, objective)
    }

    fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        assert!(
            lower <= upper,
            "variable bounds must satisfy lower <= upper"
        );
        assert!(lower.is_finite(), "lower bounds must be finite");
        self.vars.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
            objective,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds a linear constraint.  Terms with the same variable are summed.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        cmp: Comparator,
        rhs: f64,
    ) {
        let mut merged: std::collections::BTreeMap<VarId, f64> = std::collections::BTreeMap::new();
        for (v, c) in terms {
            *merged.entry(v).or_insert(0.0) += c;
        }
        let terms: Vec<(VarId, f64)> = merged.into_iter().filter(|&(_, c)| c != 0.0).collect();
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            cmp,
            rhs,
        });
    }

    /// Convenience: `Σ terms ≤ rhs`.
    pub fn add_le(&mut self, name: impl Into<String>, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(name, terms, Comparator::Le, rhs);
    }

    /// Convenience: `Σ terms ≥ rhs`.
    pub fn add_ge(&mut self, name: impl Into<String>, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(name, terms, Comparator::Ge, rhs);
    }

    /// Convenience: `Σ terms = rhs`.
    pub fn add_eq(&mut self, name: impl Into<String>, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(name, terms, Comparator::Eq, rhs);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind == VarKind::Integer)
            .count()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// All variables.
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value of an assignment (including the constant offset).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective_offset
            + self
                .vars
                .iter()
                .zip(values)
                .map(|(v, &x)| v.objective * x)
                .sum::<f64>()
    }

    /// Checks whether an assignment satisfies all constraints, bounds and
    /// integrality requirements within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * values[v.0]).sum();
            let ok = match c.cmp {
                Comparator::Le => lhs <= c.rhs + tol,
                Comparator::Ge => lhs >= c.rhs - tol,
                Comparator::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_model() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_continuous("y", 0.0, 10.0, 2.0);
        m.add_le("cap", vec![(x, 1.0), (y, 1.0)], 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_integer_vars(), 1);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.variable(x).name, "x");
        assert!((m.objective_value(&[1.0, 2.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new();
        let x = m.add_binary("x", 0.0);
        m.add_le("c", vec![(x, 1.0), (x, 2.0)], 4.0);
        assert_eq!(m.constraints()[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn feasibility_checks_bounds_integrality_and_constraints() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_continuous("y", 0.0, 10.0, 1.0);
        m.add_ge("min", vec![(x, 1.0), (y, 1.0)], 2.0);
        assert!(m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.5], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[1.0, 0.5], 1e-9)); // constraint violated
        assert!(!m.is_feasible(&[1.0, 11.0], 1e-9)); // bound violated
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong length
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let mut m = Model::new();
        m.add_continuous("bad", 2.0, 1.0, 0.0);
    }
}
