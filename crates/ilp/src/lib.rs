//! # micro-ilp
//!
//! A small, self-contained linear-programming / mixed-integer-programming
//! solver: a dense two-phase primal simplex for LP relaxations and an LP-based
//! branch & bound for integer variables.
//!
//! In the paper the scheduling ILP formulations are handed to the CBC solver
//! through its Python interface; this crate is the stand-in for CBC in the
//! Rust reproduction (see the substitution notes in `DESIGN.md`).  The API is
//! shaped around how the scheduling pipeline uses a solver:
//!
//! * build a [`Model`] (binary/integer/continuous variables, linear
//!   constraints, minimization objective),
//! * optionally provide a *warm start* (an already-known feasible schedule),
//! * call [`solve_mip`] with a wall-clock [`MipConfig::time_limit`],
//! * read back the best incumbent found, whether or not it is proven optimal.
//!
//! ```
//! use micro_ilp::{Model, MipConfig, solve_mip};
//!
//! // minimize x + 2y subject to x + y >= 3, x binary, y integer in [0, 5].
//! let mut model = Model::new();
//! let x = model.add_binary("x", 1.0);
//! let y = model.add_integer("y", 0.0, 5.0, 2.0);
//! model.add_ge("cover", vec![(x, 1.0), (y, 1.0)], 3.0);
//! let result = solve_mip(&model, &MipConfig::default(), None);
//! assert!(result.has_solution());
//! assert_eq!(result.values[x.index()].round() as i64, 1);
//! assert_eq!(result.values[y.index()].round() as i64, 2);
//! ```

pub mod branch;
pub mod model;
pub mod simplex;

pub use branch::{solve_mip, MipConfig, MipResult, MipStatus};
pub use model::{Comparator, Constraint, Model, VarId, VarKind, Variable};
pub use simplex::{
    solve_relaxation, solve_relaxation_with_bounds, solve_relaxation_with_bounds_until, LpSolution,
    LpStatus,
};
