//! A dense two-phase primal simplex solver for the LP relaxation of a
//! [`Model`].
//!
//! The implementation is intentionally simple and robust rather than fast:
//! Bland's anti-cycling rule, a dense tableau, and explicit artificial
//! variables.  It is sufficient for the problem sizes at which the scheduling
//! ILP formulations are applied (a few hundred to a couple of thousand
//! variables), mirroring the role CBC plays in the paper.

use crate::model::{Comparator, Model};

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
    /// The iteration limit was hit before reaching optimality.
    IterationLimit,
}

/// Result of solving the LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    /// Objective value (only meaningful for `Optimal`).
    pub objective: f64,
    /// Values of the model variables (only meaningful for `Optimal`).
    pub values: Vec<f64>,
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// Row-major coefficients, `rows × cols` (cols excludes the RHS).
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for x in self.a[row].iter_mut() {
            *x *= inv;
        }
        self.rhs[row] *= inv;
        let pivot_row = self.a[row].clone();
        let pivot_rhs = self.rhs[row];
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..self.cols {
                self.a[r][c] -= factor * pivot_row[c];
            }
            self.rhs[r] -= factor * pivot_rhs;
        }
        self.basis[row] = col;
    }

    /// Runs the simplex method on the current basis for the given objective
    /// (minimization).  `allowed[j] = false` forbids column `j` from entering
    /// the basis (used to keep artificials out during phase 2).
    fn optimize(
        &mut self,
        cost: &[f64],
        allowed: &[bool],
        max_iters: usize,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), LpStatus> {
        for iter in 0..max_iters {
            // A single pivot on a dense tableau can be expensive, so honour the
            // caller's wall-clock deadline from inside the simplex loop too
            // (checked only every few iterations to keep the overhead small).
            if iter % 16 == 0 {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return Err(LpStatus::IterationLimit);
                    }
                }
            }
            // Reduced costs r_j = c_j - Σ_i c_{B(i)} a_{ij}.
            let basic_cost: Vec<f64> = self.basis.iter().map(|&j| cost[j]).collect();
            let mut entering: Option<usize> = None;
            for j in 0..self.cols {
                if !allowed[j] || self.basis.contains(&j) {
                    continue;
                }
                let mut r = cost[j];
                for (i, row) in self.a.iter().enumerate() {
                    r -= basic_cost[i] * row[j];
                }
                if r < -1e-7 {
                    entering = Some(j); // Bland's rule: first (smallest index).
                    break;
                }
            }
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test (Bland: smallest basis index breaks ties).
            let mut leaving: Option<(usize, f64)> = None;
            for (i, row) in self.a.iter().enumerate() {
                if row[col] > EPS {
                    let ratio = self.rhs[i] / row[col];
                    match leaving {
                        None => leaving = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - EPS
                                || ((ratio - br).abs() <= EPS && self.basis[i] < self.basis[bi])
                            {
                                leaving = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            match leaving {
                None => return Err(LpStatus::Unbounded),
                Some((row, _)) => self.pivot(row, col),
            }
        }
        Err(LpStatus::IterationLimit)
    }
}

/// Solves the LP relaxation of `model` (integrality constraints dropped).
pub fn solve_relaxation(model: &Model) -> LpSolution {
    solve_relaxation_with_bounds(model, None)
}

/// Solves the LP relaxation of `model` with variable bounds overridden by
/// `bounds` (used by branch & bound to fix or restrict integer variables).
pub fn solve_relaxation_with_bounds(model: &Model, bounds: Option<&[(f64, f64)]>) -> LpSolution {
    solve_relaxation_with_bounds_until(model, bounds, None)
}

/// Like [`solve_relaxation_with_bounds`], but gives up (returning
/// [`LpStatus::IterationLimit`]) once `deadline` has passed.  Branch & bound
/// uses this so that a single expensive LP relaxation cannot blow through the
/// MIP-level time limit.
pub fn solve_relaxation_with_bounds_until(
    model: &Model,
    bounds: Option<&[(f64, f64)]>,
    deadline: Option<std::time::Instant>,
) -> LpSolution {
    let n = model.num_vars();
    let lower: Vec<f64> = (0..n)
        .map(|i| bounds.map_or(model.variables()[i].lower, |b| b[i].0))
        .collect();
    let upper: Vec<f64> = (0..n)
        .map(|i| bounds.map_or(model.variables()[i].upper, |b| b[i].1))
        .collect();
    for i in 0..n {
        if lower[i] > upper[i] + EPS {
            return LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
            };
        }
    }

    // Shifted variables x' = x - lb ≥ 0; finite upper bounds become rows.
    struct Row {
        terms: Vec<(usize, f64)>,
        cmp: Comparator,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in model.constraints() {
        let shift: f64 = c
            .terms
            .iter()
            .map(|&(v, coef)| coef * lower[v.index()])
            .sum();
        rows.push(Row {
            terms: c.terms.iter().map(|&(v, coef)| (v.index(), coef)).collect(),
            cmp: c.cmp,
            rhs: c.rhs - shift,
        });
    }
    for i in 0..n {
        if upper[i].is_finite() {
            // Also covers fixed variables (upper == lower), pinning x' to 0.
            rows.push(Row {
                terms: vec![(i, 1.0)],
                cmp: Comparator::Le,
                rhs: (upper[i] - lower[i]).max(0.0),
            });
        }
    }

    let m = rows.len();
    // Column layout: [structural n][slack/surplus per row][artificial per row as needed].
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    // Pre-normalize rows to rhs >= 0 and count columns.
    let mut norm: Vec<(Vec<(usize, f64)>, Comparator, f64)> = Vec::with_capacity(m);
    for r in rows {
        let (terms, cmp, rhs) = if r.rhs < 0.0 {
            let flipped = match r.cmp {
                Comparator::Le => Comparator::Ge,
                Comparator::Ge => Comparator::Le,
                Comparator::Eq => Comparator::Eq,
            };
            (
                r.terms.iter().map(|&(i, c)| (i, -c)).collect(),
                flipped,
                -r.rhs,
            )
        } else {
            (r.terms, r.cmp, r.rhs)
        };
        match cmp {
            Comparator::Le => num_slack += 1,
            Comparator::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Comparator::Eq => num_art += 1,
        }
        norm.push((terms, cmp, rhs));
    }

    let cols = n + num_slack + num_art;
    let mut a = vec![vec![0.0; cols]; m];
    let mut rhs_vec = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::new();
    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    for (row_i, (terms, cmp, rhs)) in norm.into_iter().enumerate() {
        for (var, coef) in terms {
            a[row_i][var] += coef;
        }
        rhs_vec[row_i] = rhs;
        match cmp {
            Comparator::Le => {
                a[row_i][slack_idx] = 1.0;
                basis[row_i] = slack_idx;
                slack_idx += 1;
            }
            Comparator::Ge => {
                a[row_i][slack_idx] = -1.0;
                slack_idx += 1;
                a[row_i][art_idx] = 1.0;
                basis[row_i] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
            Comparator::Eq => {
                a[row_i][art_idx] = 1.0;
                basis[row_i] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut tableau = Tableau {
        a,
        rhs: rhs_vec,
        basis,
        cols,
    };
    let max_iters = 200 * (m + cols) + 2000;

    // Phase 1: minimize the sum of artificial variables.
    if num_art > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for &c in &art_cols {
            phase1_cost[c] = 1.0;
        }
        let allowed = vec![true; cols];
        match tableau.optimize(&phase1_cost, &allowed, max_iters, deadline) {
            Ok(()) => {}
            Err(LpStatus::Unbounded) => {
                // Phase-1 objective is bounded below by 0; treat as numerical trouble.
                return LpSolution {
                    status: LpStatus::IterationLimit,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                };
            }
            Err(s) => {
                return LpSolution {
                    status: s,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                }
            }
        }
        let phase1_obj: f64 = tableau
            .basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| art_cols.contains(&b))
            .map(|(i, _)| tableau.rhs[i])
            .sum();
        if phase1_obj > 1e-6 {
            return LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
            };
        }
    }

    // Phase 2: original objective on shifted structural variables.
    let mut cost = vec![0.0; cols];
    for (i, v) in model.variables().iter().enumerate() {
        cost[i] = v.objective;
    }
    let mut allowed = vec![true; cols];
    for &c in &art_cols {
        allowed[c] = false;
    }
    let status = match tableau.optimize(&cost, &allowed, max_iters, deadline) {
        Ok(()) => LpStatus::Optimal,
        Err(s) => s,
    };
    if status != LpStatus::Optimal {
        return LpSolution {
            status,
            objective: f64::INFINITY,
            values: Vec::new(),
        };
    }

    // Extract values of the structural variables.
    let mut values = lower.clone();
    for (row, &b) in tableau.basis.iter().enumerate() {
        if b < n {
            values[b] = lower[b] + tableau.rhs[row].max(0.0);
        }
    }
    let objective = model.objective_value(&values);
    LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn solves_a_textbook_lp() {
        // minimize -3x - 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Optimum at (2, 6) with objective -36.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, -3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY, -5.0);
        m.add_le("c1", vec![(x, 1.0)], 4.0);
        m.add_le("c2", vec![(y, 2.0)], 12.0);
        m.add_le("c3", vec![(x, 3.0), (y, 2.0)], 18.0);
        let sol = solve_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective + 36.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_ge("impossible", vec![(x, 1.0)], 5.0);
        let sol = solve_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, -1.0);
        m.add_ge("lower", vec![(x, 1.0)], 1.0);
        let sol = solve_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn respects_equality_constraints_and_bounds() {
        // minimize x + y  s.t. x + y = 3, 0 <= x <= 1, 0 <= y <= 5.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        let y = m.add_continuous("y", 0.0, 5.0, 1.0);
        m.add_eq("sum", vec![(x, 1.0), (y, 1.0)], 3.0);
        let sol = solve_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!(sol.values[x.index()] <= 1.0 + 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds_are_handled() {
        // minimize x  with 2 <= x <= 10 and x >= 3.5.
        let mut m = Model::new();
        let x = m.add_continuous("x", 2.0, 10.0, 1.0);
        m.add_ge("floor", vec![(x, 1.0)], 3.5);
        let sol = solve_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_fix_variables() {
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        let y = m.add_binary("y", -1.0);
        m.add_le("cap", vec![(x, 1.0), (y, 1.0)], 2.0);
        // Fix x = 0 through bounds.
        let sol = solve_relaxation_with_bounds(&m, Some(&[(0.0, 0.0), (0.0, 1.0)]));
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.values[x.index()].abs() < 1e-9);
        assert!((sol.values[y.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lp_relaxation_of_binaries_can_be_fractional() {
        // minimize -(x + y) s.t. x + y <= 1.5 with binaries: LP optimum 1.5.
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        let y = m.add_binary("y", -1.0);
        m.add_le("cap", vec![(x, 1.0), (y, 1.0)], 1.5);
        let sol = solve_relaxation(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-6);
    }
}
