//! Computational DAGs with work and communication weights.
//!
//! A node `v` carries a *work weight* `w(v)` (time needed to execute it on any
//! processor) and a *communication weight* `c(v)` (amount of data another
//! processor has to receive in order to use its output).  Edges encode
//! precedence: `(u, v)` means `v` consumes the output of `u`.
//!
//! Adjacency is stored in compressed sparse row (CSR) form: one flat offset
//! array plus one packed neighbour array per direction.  The hill-climbing
//! local searches walk `successors`/`predecessors` for every candidate move,
//! so neighbour lists being contiguous (two arrays per direction instead of
//! `n` separate heap allocations) is what keeps that hot path cache-friendly.

use crate::error::DagError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Index of a node in a [`Dag`]; nodes are always `0..n`.
pub type NodeId = usize;

/// Read access to a weighted DAG, abstracting over the immutable [`Dag`] and
/// mutable views such as [`crate::QuotientDag`].
///
/// The hill-climbing state and its work-list drivers are written against this
/// trait, which is what lets the multilevel scheduler refine directly on its
/// persistent quotient graph instead of materializing a fresh [`Dag`] per
/// refinement phase.
///
/// A view may carry *inactive* nodes (`is_active` returns `false`): node ids
/// that exist in the index space `0..n` but are not part of the current graph.
/// Inactive nodes must report empty successor and predecessor lists, and no
/// active node's adjacency may reference an inactive node.
pub trait DagView {
    /// Size of the node index space (active nodes all lie in `0..n`).
    fn n(&self) -> usize;

    /// `true` if `v` is part of the current graph.
    #[inline]
    fn is_active(&self, v: NodeId) -> bool {
        let _ = v;
        true
    }

    /// Number of active nodes.
    fn num_active(&self) -> usize {
        self.n()
    }

    /// Work weight `w(v)`.
    fn work(&self, v: NodeId) -> u64;

    /// Communication weight `c(v)`.
    fn comm(&self, v: NodeId) -> u64;

    /// Direct successors of `v` (empty for inactive nodes).
    fn successors(&self, v: NodeId) -> &[NodeId];

    /// Direct predecessors of `v` (empty for inactive nodes).
    fn predecessors(&self, v: NodeId) -> &[NodeId];
}

impl DagView for Dag {
    #[inline]
    fn n(&self) -> usize {
        Dag::n(self)
    }

    #[inline]
    fn work(&self, v: NodeId) -> u64 {
        Dag::work(self, v)
    }

    #[inline]
    fn comm(&self, v: NodeId) -> u64 {
        Dag::comm(self, v)
    }

    #[inline]
    fn successors(&self, v: NodeId) -> &[NodeId] {
        Dag::successors(self, v)
    }

    #[inline]
    fn predecessors(&self, v: NodeId) -> &[NodeId] {
        Dag::predecessors(self, v)
    }
}

/// An immutable computational DAG.
///
/// Construct one through [`DagBuilder`], [`Dag::from_edges`] or
/// [`Dag::from_edge_list_unit_weights`].  All accessors are `O(1)` except
/// where noted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    work: Vec<u64>,
    comm: Vec<u64>,
    /// CSR offsets into `succ_adj`; length `n + 1`.
    succ_off: Vec<usize>,
    /// Packed successor lists, in edge insertion order per node.
    succ_adj: Vec<NodeId>,
    /// CSR offsets into `pred_adj`; length `n + 1`.
    pred_off: Vec<usize>,
    /// Packed predecessor lists, in edge insertion order per node.
    pred_adj: Vec<NodeId>,
    num_edges: usize,
}

/// Incremental builder for [`Dag`].
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    work: Vec<u64>,
    comm: Vec<u64>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given work and communication weight, returning its id.
    pub fn add_node(&mut self, work: u64, comm: u64) -> NodeId {
        self.work.push(work);
        self.comm.push(comm);
        self.work.len() - 1
    }

    /// Adds `count` nodes that all share the same weights; returns the id of the first.
    pub fn add_nodes(&mut self, count: usize, work: u64, comm: u64) -> NodeId {
        let first = self.work.len();
        for _ in 0..count {
            self.add_node(work, comm);
        }
        first
    }

    /// Adds a directed edge `from -> to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.work.len()
    }

    /// `true` if no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.work.is_empty()
    }

    /// Overwrites the work weight of an existing node.
    pub fn set_work(&mut self, node: NodeId, work: u64) {
        self.work[node] = work;
    }

    /// Overwrites the communication weight of an existing node.
    pub fn set_comm(&mut self, node: NodeId, comm: u64) {
        self.comm[node] = comm;
    }

    /// Finalizes the builder into an immutable [`Dag`].
    ///
    /// Duplicate edges are silently deduplicated; self-loops and cycles are
    /// rejected.
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.work.len();
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            if u >= n {
                return Err(DagError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(DagError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(DagError::SelfLoop { node: u });
            }
            if seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        Dag::from_edges(n, &edges, self.work, self.comm)
    }
}

impl Dag {
    /// Builds a DAG from an explicit edge list and weight vectors.
    pub fn from_edges(
        n: usize,
        edges: &[(NodeId, NodeId)],
        work: Vec<u64>,
        comm: Vec<u64>,
    ) -> Result<Self, DagError> {
        if work.len() != n {
            return Err(DagError::WeightLengthMismatch {
                expected: n,
                got: work.len(),
            });
        }
        if comm.len() != n {
            return Err(DagError::WeightLengthMismatch {
                expected: n,
                got: comm.len(),
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(DagError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(DagError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(DagError::SelfLoop { node: u });
            }
            if !seen.insert((u, v)) {
                return Err(DagError::DuplicateEdge { from: u, to: v });
            }
        }
        let num_edges = seen.len();

        // Two counting-sort passes build each CSR side; per-node neighbour
        // order is edge insertion order, as with the nested-Vec layout.
        let mut succ_off = vec![0usize; n + 1];
        let mut pred_off = vec![0usize; n + 1];
        for &(u, v) in edges {
            succ_off[u + 1] += 1;
            pred_off[v + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succ_adj = vec![0 as NodeId; num_edges];
        let mut pred_adj = vec![0 as NodeId; num_edges];
        let mut succ_cursor = succ_off.clone();
        let mut pred_cursor = pred_off.clone();
        for &(u, v) in edges {
            succ_adj[succ_cursor[u]] = v;
            succ_cursor[u] += 1;
            pred_adj[pred_cursor[v]] = u;
            pred_cursor[v] += 1;
        }

        let dag = Dag {
            work,
            comm,
            succ_off,
            succ_adj,
            pred_off,
            pred_adj,
            num_edges,
        };
        if dag.topological_order().is_none() {
            return Err(DagError::Cycle);
        }
        Ok(dag)
    }

    /// Builds a DAG with `w(v) = c(v) = 1` for all nodes, from an edge list.
    pub fn from_edge_list_unit_weights(
        n: usize,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, DagError> {
        Self::from_edges(n, edges, vec![1; n], vec![1; n])
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.work.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Work weight `w(v)`.
    #[inline]
    pub fn work(&self, v: NodeId) -> u64 {
        self.work[v]
    }

    /// Communication weight `c(v)`.
    #[inline]
    pub fn comm(&self, v: NodeId) -> u64 {
        self.comm[v]
    }

    /// All work weights.
    pub fn work_weights(&self) -> &[u64] {
        &self.work
    }

    /// All communication weights.
    pub fn comm_weights(&self) -> &[u64] {
        &self.comm
    }

    /// Direct successors (out-neighbours) of `v`.
    #[inline]
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        &self.succ_adj[self.succ_off[v]..self.succ_off[v + 1]]
    }

    /// Direct predecessors (in-neighbours) of `v`.
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        &self.pred_adj[self.pred_off[v]..self.pred_off[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.succ_off[v + 1] - self.succ_off[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.pred_off[v + 1] - self.pred_off[v]
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n()).flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// Nodes without predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.n()).filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Nodes without successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.n()).filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Sum of all work weights.
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Sum of all communication weights.
    pub fn total_comm(&self) -> u64 {
        self.comm.iter().sum()
    }

    /// Communication-to-computation ratio `Σ c(v) / Σ w(v)` (see §A.5 of the paper).
    pub fn ccr(&self) -> f64 {
        let w = self.total_work();
        if w == 0 {
            return f64::INFINITY;
        }
        self.total_comm() as f64 / w as f64
    }

    /// Kahn topological order, or `None` if the graph has a cycle.
    ///
    /// Runs in `O(n + m)`.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.n();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        let mut queue: VecDeque<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in self.successors(v) {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Position of every node in a fixed topological order.
    pub fn topological_rank(&self) -> Vec<usize> {
        let order = self
            .topological_order()
            .expect("Dag invariant: always acyclic");
        let mut rank = vec![0usize; self.n()];
        for (i, &v) in order.iter().enumerate() {
            rank[v] = i;
        }
        rank
    }

    /// Topological *level* of each node: sources have level 0, every other node
    /// has level `1 + max(level of predecessors)`.  These levels are the
    /// "wavefronts" used by the `HDagg` baseline.
    pub fn levels(&self) -> Vec<usize> {
        let order = self
            .topological_order()
            .expect("Dag invariant: always acyclic");
        let mut level = vec![0usize; self.n()];
        for &v in &order {
            for &u in self.predecessors(v) {
                level[v] = level[v].max(level[u] + 1);
            }
        }
        level
    }

    /// Length (in work weight, including both endpoints) of the longest path
    /// ending at each node.
    pub fn top_level(&self) -> Vec<u64> {
        let order = self
            .topological_order()
            .expect("Dag invariant: always acyclic");
        let mut tl = vec![0u64; self.n()];
        for &v in &order {
            let best = self
                .predecessors(v)
                .iter()
                .map(|&u| tl[u])
                .max()
                .unwrap_or(0);
            tl[v] = best + self.work[v];
        }
        tl
    }

    /// Length (in work weight, including the node itself) of the longest path
    /// starting at each node — the classical *bottom level* priority used by
    /// list schedulers such as `BL-EST`.
    pub fn bottom_level(&self) -> Vec<u64> {
        let order = self
            .topological_order()
            .expect("Dag invariant: always acyclic");
        let mut bl = vec![0u64; self.n()];
        for &v in order.iter().rev() {
            let best = self.successors(v).iter().map(|&w| bl[w]).max().unwrap_or(0);
            bl[v] = best + self.work[v];
        }
        bl
    }

    /// Work weight of the critical path (longest path) of the DAG.
    pub fn critical_path_work(&self) -> u64 {
        self.top_level().into_iter().max().unwrap_or(0)
    }

    /// `true` if there is a directed path from `u` to `v` (including `u == v`).
    ///
    /// Runs a BFS pruned by topological rank; `O(n + m)` worst case.
    pub fn has_path(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        let rank = self.topological_rank();
        self.has_path_with_rank(u, v, &rank)
    }

    /// Same as [`Dag::has_path`] but reuses a precomputed topological rank.
    pub fn has_path_with_rank(&self, u: NodeId, v: NodeId, rank: &[usize]) -> bool {
        if u == v {
            return true;
        }
        if rank[u] > rank[v] {
            return false;
        }
        let mut visited = vec![false; self.n()];
        let mut stack = vec![u];
        visited[u] = true;
        while let Some(x) = stack.pop() {
            for &y in self.successors(x) {
                if y == v {
                    return true;
                }
                if !visited[y] && rank[y] < rank[v] {
                    visited[y] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    /// Nodes of the largest weakly connected component (used when coarse-grained
    /// extraction leaves isolated fragments, cf. Appendix B.1).
    pub fn largest_weakly_connected_component(&self) -> Vec<NodeId> {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        let mut best: (usize, Vec<NodeId>) = (0, Vec::new());
        let mut next_comp = 0usize;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut nodes = Vec::new();
            let mut stack = vec![start];
            comp[start] = next_comp;
            while let Some(v) = stack.pop() {
                nodes.push(v);
                for &w in self.successors(v).iter().chain(self.predecessors(v).iter()) {
                    if comp[w] == usize::MAX {
                        comp[w] = next_comp;
                        stack.push(w);
                    }
                }
            }
            if nodes.len() > best.1.len() {
                best = (next_comp, nodes);
            }
            next_comp += 1;
        }
        let mut nodes = best.1;
        nodes.sort_unstable();
        nodes
    }

    /// The sub-DAG induced by `nodes` (which must be distinct).  Returns the
    /// sub-DAG and the mapping from new node ids to original node ids.
    pub fn induced_subdag(&self, nodes: &[NodeId]) -> (Dag, Vec<NodeId>) {
        let mut index = vec![usize::MAX; self.n()];
        for (i, &v) in nodes.iter().enumerate() {
            index[v] = i;
        }
        let mut builder = DagBuilder::new();
        for &v in nodes {
            builder.add_node(self.work[v], self.comm[v]);
        }
        for &v in nodes {
            for &w in self.successors(v) {
                if index[w] != usize::MAX {
                    builder.add_edge(index[v], index[w]);
                }
            }
        }
        (
            builder.build().expect("induced subgraph of a DAG is a DAG"),
            nodes.to_vec(),
        )
    }

    /// A human-readable one-line summary (useful in experiment logs).
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} total_work={} total_comm={} depth={}",
            self.n(),
            self.num_edges(),
            self.total_work(),
            self.total_comm(),
            self.levels().into_iter().max().map_or(0, |d| d + 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Dag::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![1, 2, 3, 4],
            vec![5, 6, 7, 8],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_reports_basic_properties() {
        let d = diamond();
        assert_eq!(d.n(), 4);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.work(2), 3);
        assert_eq!(d.comm(3), 8);
        assert_eq!(d.total_work(), 10);
        assert_eq!(d.total_comm(), 26);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
        assert_eq!(d.in_degree(3), 2);
        assert_eq!(d.out_degree(0), 2);
    }

    #[test]
    fn rejects_cycles() {
        let err = Dag::from_edge_list_unit_weights(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert_eq!(err, DagError::Cycle);
    }

    #[test]
    fn rejects_self_loops_and_bad_indices() {
        assert_eq!(
            Dag::from_edge_list_unit_weights(2, &[(0, 0)]).unwrap_err(),
            DagError::SelfLoop { node: 0 }
        );
        assert_eq!(
            Dag::from_edge_list_unit_weights(2, &[(0, 5)]).unwrap_err(),
            DagError::NodeOutOfRange { node: 5, n: 2 }
        );
    }

    #[test]
    fn rejects_duplicate_edges_in_from_edges() {
        assert_eq!(
            Dag::from_edge_list_unit_weights(2, &[(0, 1), (0, 1)]).unwrap_err(),
            DagError::DuplicateEdge { from: 0, to: 1 }
        );
    }

    #[test]
    fn builder_dedups_edges() {
        let mut b = DagBuilder::new();
        b.add_node(1, 1);
        b.add_node(1, 1);
        b.add_edge(0, 1).add_edge(0, 1);
        let d = b.build().unwrap();
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order().unwrap();
        let rank = d.topological_rank();
        for (u, v) in d.edges() {
            assert!(rank[u] < rank[v], "edge ({u},{v}) violated in {order:?}");
        }
    }

    #[test]
    fn levels_and_bottom_levels() {
        let d = diamond();
        assert_eq!(d.levels(), vec![0, 1, 1, 2]);
        // bottom level: longest path work starting at the node, inclusive.
        let bl = d.bottom_level();
        assert_eq!(bl[3], 4);
        assert_eq!(bl[1], 2 + 4);
        assert_eq!(bl[2], 3 + 4);
        assert_eq!(bl[0], 1 + 3 + 4);
        assert_eq!(d.critical_path_work(), 8);
    }

    #[test]
    fn path_queries() {
        let d = diamond();
        assert!(d.has_path(0, 3));
        assert!(d.has_path(1, 3));
        assert!(!d.has_path(1, 2));
        assert!(!d.has_path(3, 0));
        assert!(d.has_path(2, 2));
    }

    #[test]
    fn induced_subdag_keeps_inner_edges() {
        let d = diamond();
        let (sub, map) = d.induced_subdag(&[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(map, vec![0, 1, 3]);
        // edges 0->1 and 1->3 survive, 0->2->3 path does not.
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn largest_component_of_disconnected_graph() {
        let d = Dag::from_edge_list_unit_weights(5, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(d.largest_weakly_connected_component(), vec![0, 1, 2]);
    }

    #[test]
    fn ccr_matches_definition() {
        let d = diamond();
        assert!((d.ccr() - 26.0 / 10.0).abs() < 1e-12);
    }
}
